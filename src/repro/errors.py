"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class UnitError(ReproError):
    """Raised for malformed engineering-unit strings or values."""


class NetlistError(ReproError):
    """Raised for structurally invalid circuits or netlists."""


class SpiceSyntaxError(NetlistError):
    """Raised when SPICE text cannot be parsed.

    Attributes
    ----------
    line_no:
        1-based line number in the source text, when known.
    """

    def __init__(self, message: str, line_no: int | None = None):
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class GraphConstructionError(ReproError):
    """Raised when a circuit cannot be converted into a heterogeneous graph."""


class LayoutError(ReproError):
    """Raised when the layout synthesizer cannot process a circuit."""


class ModelError(ReproError):
    """Raised for model configuration or training failures."""


class ShapeError(ModelError):
    """Raised when tensor shapes are incompatible."""


class SimulationError(ReproError):
    """Raised when circuit simulation fails (singular matrix, no convergence)."""


class DatasetError(ReproError):
    """Raised for dataset assembly or split failures."""


class ApiError(ReproError):
    """Raised for malformed prediction requests (unknown model/target...)."""


class ServeError(ReproError):
    """Base class for inference-serving failures."""


class ServeOverloadedError(ServeError):
    """Raised when the serving queue is full and a request is rejected.

    Attributes
    ----------
    queue_depth:
        The configured queue capacity that was exceeded, when known.
    """

    def __init__(self, message: str, queue_depth: int | None = None):
        self.queue_depth = queue_depth
        super().__init__(message)


class ServeTimeoutError(ServeError):
    """Raised when a queued request exceeds its per-request timeout."""


class ObsError(ReproError):
    """Observability subsystem failure (metrics files, exposition)."""


class StaticCheckError(ReproError):
    """Raised for static-analysis configuration failures (bad baseline,
    unknown rule name, unparseable target file)."""


class ShapeContractError(StaticCheckError):
    """Raised when the symbolic shape checker cannot interpret a model
    (unknown layer type, malformed spec) — distinct from a shape *finding*,
    which is reported, not raised."""
