"""Command-line interface.

Subcommands::

    python -m repro dataset    --scale 0.2 --seed 0
        Print the Table IV distribution of a generated dataset.

    python -m repro train      --target CAP --conv paragraph --epochs 60
                               --scale 0.2 --seed 0 --out cap_model.npz
        Train one predictor on a generated dataset and save it.

    python -m repro predict    --model cap_model.npz --netlist in.sp
                               [--annotate out.sp]
        Parse a SPICE netlist, predict the model's target for every
        net/transistor, print a report; with ``--annotate`` also write the
        parasitic-annotated netlist (CAP models only).

    python -m repro experiment {table4,fig5,fig6,fig7,fig8,table5,layers,ingredients}
        Run one paper experiment and print its table (honours
        PARAGRAPH_BENCH_SCALE).
"""

from __future__ import annotations

import argparse
import sys

from repro.units import format_eng


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import ExperimentConfig, experiment_table4, load_bundle

    config = ExperimentConfig(dataset_seed=args.seed, dataset_scale=args.scale)
    print(experiment_table4(config, load_bundle(config)).render())
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.data import build_bundle
    from repro.models import TargetPredictor, TrainConfig

    print(f"building dataset (seed={args.seed}, scale={args.scale})...")
    bundle = build_bundle(seed=args.seed, scale=args.scale)
    config = TrainConfig(
        epochs=args.epochs,
        run_seed=args.seed,
        max_v=args.max_v,
    )
    predictor = TargetPredictor(args.conv, args.target, config)
    print(f"training {args.conv}/{args.target} for {args.epochs} epochs...")
    predictor.fit(bundle)
    metrics = predictor.evaluate(bundle.records("test"))
    print(
        f"held-out: R2={metrics['r2']:.3f} MAE={metrics['mae']:.3e} "
        f"MAPE={100 * metrics['mape']:.1f}%"
    )
    predictor.save(args.out)
    print(f"saved model to {args.out}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.circuits import read_spice, write_spice
    from repro.models import TargetPredictor
    from repro.sim import annotated_netlist

    predictor = TargetPredictor.load(args.model)
    with open(args.netlist) as handle:
        circuit = read_spice(handle, name=args.netlist)
    predictions = predictor.predict_circuit(circuit)
    unit = "F" if predictor.spec.name in ("CAP",) else ""
    print(f"{predictor.spec.name} predictions for {args.netlist}:")
    for name in sorted(predictions):
        print(f"  {name:24s} {format_eng(predictions[name], unit)}")
    if args.annotate:
        if predictor.spec.kind != "net" or predictor.spec.name != "CAP":
            print("--annotate requires a CAP model", file=sys.stderr)
            return 2
        annotated = annotated_netlist(circuit, predictions)
        with open(args.annotate, "w") as handle:
            write_spice(annotated, handle)
        print(f"wrote annotated netlist to {args.annotate}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis import experiments as exp

    config = exp.ExperimentConfig.from_env()
    bundle = exp.load_bundle(config)
    runners = {
        "table4": lambda: exp.experiment_table4(config, bundle),
        "fig5": lambda: exp.experiment_fig5(config, bundle),
        "fig6": lambda: exp.experiment_fig6(config, bundle),
        "fig7": lambda: exp.experiment_fig7(config, bundle),
        "fig8": lambda: exp.experiment_fig8(config, bundle),
        "table5": lambda: exp.experiment_table5(config, bundle),
        "layers": lambda: exp.experiment_layer_sweep(config, bundle),
        "ingredients": lambda: exp.experiment_ingredients(config, bundle),
    }
    print(runners[args.name]().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ParaGraph reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dataset = sub.add_parser("dataset", help="print Table IV for a generated dataset")
    p_dataset.add_argument("--scale", type=float, default=0.2)
    p_dataset.add_argument("--seed", type=int, default=0)
    p_dataset.set_defaults(func=_cmd_dataset)

    p_train = sub.add_parser("train", help="train and save a predictor")
    p_train.add_argument("--target", default="CAP")
    p_train.add_argument("--conv", default="paragraph",
                         choices=["paragraph", "sage", "rgcn", "gat", "gcn"])
    p_train.add_argument("--epochs", type=int, default=60)
    p_train.add_argument("--scale", type=float, default=0.2)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--max-v", type=float, default=None,
                         help="training clamp in farads (CAP models)")
    p_train.add_argument("--out", default="model.npz")
    p_train.set_defaults(func=_cmd_train)

    p_predict = sub.add_parser("predict", help="predict targets for a SPICE netlist")
    p_predict.add_argument("--model", required=True)
    p_predict.add_argument("--netlist", required=True)
    p_predict.add_argument("--annotate", default=None,
                           help="write a parasitic-annotated netlist here")
    p_predict.set_defaults(func=_cmd_predict)

    p_exp = sub.add_parser("experiment", help="run one paper experiment")
    p_exp.add_argument(
        "name",
        choices=["table4", "fig5", "fig6", "fig7", "fig8", "table5",
                 "layers", "ingredients"],
    )
    p_exp.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
