"""Command-line interface.

Subcommands::

    python -m repro dataset    --scale 0.2 --seed 0
        Print the Table IV distribution of a generated dataset.

    python -m repro train      --target CAP --conv paragraph --epochs 60
                               --scale 0.2 --seed 0 --out cap_model.npz
                               [--metrics run.jsonl] [--checkpoint-dir ckpts]
                               [--checkpoint-every 50] [--resume-from ckpt.npz]
                               [--max-retries 2] [--patience 20]
        Train one predictor on a generated dataset and save it; the
        optional runtime flags enable metrics logging, checkpoint/resume,
        divergence retries and early stopping.

    python -m repro train-all  --targets CAP,SA,RES --epochs 60
                               --out-dir models/ [--workers 4]
        Train one predictor per target (all paper targets by default) with
        shared merged-input caching (or a process pool) and save the suite.

    python -m repro predict    --model cap_model.npz --netlist in.sp
                               [--annotate out.sp]
        Parse a SPICE netlist, predict the model's target for every
        net/transistor, print a report; with ``--annotate`` also write the
        parasitic-annotated netlist (CAP models only).

    python -m repro experiment {table4,fig5,fig6,fig7,fig8,table5,layers,ingredients}
        Run one paper experiment and print its table (honours
        PARAGRAPH_BENCH_SCALE).

    python -m repro obs report trace.json
        Print the per-stage time/memory summary of a trace written with
        ``--trace`` or ``--obs-jsonl``.

Every subcommand additionally accepts ``--trace out.json`` (write a Chrome
``trace_event`` file loadable in Perfetto / chrome://tracing) and
``--obs-jsonl out.jsonl`` (append span/metric events as JSON lines); both
flags may be given before or after the subcommand name.
"""

from __future__ import annotations

import argparse
import sys

from repro.units import format_eng


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import ExperimentConfig, experiment_table4, load_bundle

    config = ExperimentConfig(dataset_seed=args.seed, dataset_scale=args.scale)
    print(experiment_table4(config, load_bundle(config)).render())
    return 0


def _runtime_from_args(args: argparse.Namespace):
    from repro.flows.runtime import RuntimeConfig

    return RuntimeConfig(
        metrics_jsonl=getattr(args, "metrics", None),
        progress_every=getattr(args, "progress_every", 0),
        max_retries=getattr(args, "max_retries", 0),
        patience=getattr(args, "patience", 0),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        checkpoint_every=getattr(args, "checkpoint_every", 0),
    )


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.data import build_bundle
    from repro.models import TargetPredictor, TrainConfig

    print(f"building dataset (seed={args.seed}, scale={args.scale})...")
    bundle = build_bundle(seed=args.seed, scale=args.scale)
    config = TrainConfig(
        epochs=args.epochs,
        run_seed=args.seed,
        max_v=args.max_v,
    )
    predictor = TargetPredictor(args.conv, args.target, config)
    print(f"training {args.conv}/{args.target} for {args.epochs} epochs...")
    predictor.fit(
        bundle, runtime=_runtime_from_args(args), resume_from=args.resume_from
    )
    metrics = predictor.evaluate(bundle.records("test"))
    print(
        f"held-out: R2={metrics['r2']:.3f} MAE={metrics['mae']:.3e} "
        f"MAPE={100 * metrics['mape']:.1f}%"
    )
    predictor.save(args.out)
    print(f"saved model to {args.out}")
    return 0


def _cmd_train_all(args: argparse.Namespace) -> int:
    from repro.data import ALL_TARGETS, build_bundle
    from repro.flows import train_all_targets
    from repro.models import TrainConfig

    if args.targets.strip().lower() == "all":
        names = [t.name for t in ALL_TARGETS]
    else:
        names = [name.strip() for name in args.targets.split(",") if name.strip()]
    print(f"building dataset (seed={args.seed}, scale={args.scale})...")
    bundle = build_bundle(seed=args.seed, scale=args.scale)
    config = TrainConfig(epochs=args.epochs, run_seed=args.seed)
    mode = (
        f"{args.workers} worker processes" if args.workers > 1
        else "shared-input cache"
    )
    print(f"training {len(names)} targets ({mode})...")
    model = train_all_targets(
        bundle,
        targets=names,
        conv=args.conv,
        config=config,
        verbose=True,
        runtime=_runtime_from_args(args),
        parallel_workers=args.workers,
    )
    model.save_dir(args.out_dir)
    print(f"saved {len(model.predictors)} models to {args.out_dir}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.circuits import read_spice, write_spice
    from repro.models import TargetPredictor
    from repro.sim import annotated_netlist

    predictor = TargetPredictor.load(args.model)
    with open(args.netlist) as handle:
        circuit = read_spice(handle, name=args.netlist)
    predictions = predictor.predict_circuit(circuit)
    unit = "F" if predictor.spec.name in ("CAP",) else ""
    print(f"{predictor.spec.name} predictions for {args.netlist}:")
    for name in sorted(predictions):
        print(f"  {name:24s} {format_eng(predictions[name], unit)}")
    if args.annotate:
        if predictor.spec.kind != "net" or predictor.spec.name != "CAP":
            print("--annotate requires a CAP model", file=sys.stderr)
            return 2
        annotated = annotated_netlist(circuit, predictions)
        with open(args.annotate, "w") as handle:
            write_spice(annotated, handle)
        print(f"wrote annotated netlist to {args.annotate}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import load_events, render_summary

    spans, metrics = load_events(args.trace_file)
    if not spans and not metrics:
        print(f"no observability events in {args.trace_file}", file=sys.stderr)
        return 2
    try:
        print(render_summary(spans, metrics))
    except BrokenPipeError:  # e.g. piped into head
        sys.stderr.close()
        return 0
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis import experiments as exp

    config = exp.ExperimentConfig.from_env()
    bundle = exp.load_bundle(config)
    runners = {
        "table4": lambda: exp.experiment_table4(config, bundle),
        "fig5": lambda: exp.experiment_fig5(config, bundle),
        "fig6": lambda: exp.experiment_fig6(config, bundle),
        "fig7": lambda: exp.experiment_fig7(config, bundle),
        "fig8": lambda: exp.experiment_fig8(config, bundle),
        "table5": lambda: exp.experiment_table5(config, bundle),
        "layers": lambda: exp.experiment_layer_sweep(config, bundle),
        "ingredients": lambda: exp.experiment_ingredients(config, bundle),
    }
    print(runners[args.name]().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ParaGraph reproduction command line"
    )
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        help="write a Chrome trace_event file of the run")
    parser.add_argument("--obs-jsonl", default=None, metavar="OUT.jsonl",
                        help="append span/metric events to this JSONL file")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_args(sub_parser: argparse.ArgumentParser) -> None:
        # SUPPRESS: without it the subparser's default (None) would
        # overwrite a value parsed from before the subcommand name.
        sub_parser.add_argument("--trace", default=argparse.SUPPRESS,
                                metavar="OUT.json",
                                help="write a Chrome trace_event file")
        sub_parser.add_argument("--obs-jsonl", default=argparse.SUPPRESS,
                                metavar="OUT.jsonl",
                                help="append span/metric events as JSONL")

    p_dataset = sub.add_parser("dataset", help="print Table IV for a generated dataset")
    p_dataset.add_argument("--scale", type=float, default=0.2)
    p_dataset.add_argument("--seed", type=int, default=0)
    add_obs_args(p_dataset)
    p_dataset.set_defaults(func=_cmd_dataset)

    def add_runtime_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--metrics", default=None,
                                help="append per-epoch metrics to this JSONL file")
        sub_parser.add_argument("--progress-every", type=int, default=0,
                                help="print a progress line every N epochs")
        sub_parser.add_argument("--max-retries", type=int, default=0,
                                help="re-seeded retries after NaN/Inf divergence")
        sub_parser.add_argument("--patience", type=int, default=0,
                                help="early-stop after N epochs without improvement")
        sub_parser.add_argument("--checkpoint-dir", default=None,
                                help="write resumable checkpoints here")
        sub_parser.add_argument("--checkpoint-every", type=int, default=0,
                                help="checkpoint every N epochs")

    p_train = sub.add_parser("train", help="train and save a predictor")
    p_train.add_argument("--target", default="CAP")
    p_train.add_argument("--conv", default="paragraph",
                         choices=["paragraph", "sage", "rgcn", "gat", "gcn"])
    p_train.add_argument("--epochs", type=int, default=60)
    p_train.add_argument("--scale", type=float, default=0.2)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--max-v", type=float, default=None,
                         help="training clamp in farads (CAP models)")
    p_train.add_argument("--out", default="model.npz")
    p_train.add_argument("--resume-from", default=None,
                         help="resume training from this checkpoint .npz")
    add_runtime_args(p_train)
    add_obs_args(p_train)
    p_train.set_defaults(func=_cmd_train)

    p_train_all = sub.add_parser(
        "train-all", help="train one predictor per target and save the suite"
    )
    p_train_all.add_argument("--targets", default="all",
                             help='comma-separated target names, or "all"')
    p_train_all.add_argument("--conv", default="paragraph",
                             choices=["paragraph", "sage", "rgcn", "gat", "gcn"])
    p_train_all.add_argument("--epochs", type=int, default=60)
    p_train_all.add_argument("--scale", type=float, default=0.2)
    p_train_all.add_argument("--seed", type=int, default=0)
    p_train_all.add_argument("--workers", type=int, default=0,
                             help="train targets in N parallel processes (>= 2)")
    p_train_all.add_argument("--out-dir", default="models",
                             help="directory for the per-target .npz files")
    add_runtime_args(p_train_all)
    add_obs_args(p_train_all)
    p_train_all.set_defaults(func=_cmd_train_all)

    p_predict = sub.add_parser("predict", help="predict targets for a SPICE netlist")
    p_predict.add_argument("--model", required=True)
    p_predict.add_argument("--netlist", required=True)
    p_predict.add_argument("--annotate", default=None,
                           help="write a parasitic-annotated netlist here")
    add_obs_args(p_predict)
    p_predict.set_defaults(func=_cmd_predict)

    p_exp = sub.add_parser("experiment", help="run one paper experiment")
    p_exp.add_argument(
        "name",
        choices=["table4", "fig5", "fig6", "fig7", "fig8", "table5",
                 "layers", "ingredients"],
    )
    add_obs_args(p_exp)
    p_exp.set_defaults(func=_cmd_experiment)

    p_obs = sub.add_parser("obs", help="inspect observability output")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_report = obs_sub.add_parser(
        "report", help="per-stage summary of a trace/JSONL file"
    )
    p_report.add_argument("trace_file",
                          help="file written by --trace or --obs-jsonl")
    p_report.set_defaults(func=_cmd_obs)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace", None)
    jsonl_out = getattr(args, "obs_jsonl", None)
    if not (trace_out or jsonl_out):
        return args.func(args)

    from repro import obs

    # When an outer controller (e.g. the pytest session hook) already owns
    # the collection lifecycle, export but leave its state untouched.
    nested = obs.is_enabled()
    if not nested:
        obs.enable(memory=True)
    try:
        return args.func(args)
    finally:
        if not nested:
            obs.disable()
        if jsonl_out:
            obs.export_jsonl(jsonl_out)
            print(f"wrote observability events to {jsonl_out}", file=sys.stderr)
        if trace_out:
            obs.export_chrome_trace(trace_out)
            print(f"wrote Chrome trace to {trace_out}", file=sys.stderr)
        if not nested:
            obs.reset()  # don't leak spans into a later in-process run


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
