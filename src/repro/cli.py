"""Command-line interface.

Subcommands::

    python -m repro dataset    --scale 0.2 --seed 0
        Print the Table IV distribution of a generated dataset.

    python -m repro train      --target CAP --conv paragraph --epochs 60
                               --scale 0.2 --seed 0 --out cap_model.npz
                               [--metrics run.jsonl] [--checkpoint-dir ckpts]
                               [--checkpoint-every 50] [--resume-from ckpt.npz]
                               [--max-retries 2] [--patience 20]
        Train one predictor on a generated dataset and save it; the
        optional runtime flags enable metrics logging, checkpoint/resume,
        divergence retries and early stopping.

    python -m repro train-all  --targets CAP,SA,RES --epochs 60
                               --out-dir models/ [--workers 4]
        Train one predictor per target (all paper targets by default) with
        shared merged-input caching (or a process pool) and save the suite.

    python -m repro predict    --model cap_model.npz --netlist in.sp
                               [--netlist more.sp ...] [--json]
                               [--annotate out.sp] [--precision float32]
                               [--backend auto]
        Parse SPICE netlists, predict every target the model offers for each
        (batched through :class:`repro.api.Engine`), print a report or a
        JSON dump; with ``--annotate`` also write the parasitic-annotated
        netlist (CAP models, single netlist only).  ``--model`` accepts a
        single ``.npz``, a multi-target directory, or an ensemble directory.

    python -m repro serve      --models models/ [--host H] [--port P]
                               [--max-batch 16] [--queue-depth 128]
                               [--workers 2] [--cache-size 256]
                               [--timeout-s T] [--precision float32]
                               [--backend auto]
        Discover saved models under ``--models`` and answer predictions over
        stdlib JSON/HTTP: ``POST /predict``, ``GET /healthz``,
        ``GET /metrics``.

    python -m repro experiment {table4,fig5,fig6,fig7,fig8,table5,layers,ingredients}
        Run one paper experiment and print its table (honours
        PARAGRAPH_BENCH_SCALE).

    python -m repro obs report trace.json
        Print the per-stage time/memory summary of a trace written with
        ``--trace`` or ``--obs-jsonl``.

    python -m repro check [paths...] [--rules r1,r2] [--shapes/--no-shapes]
                          [--project] [--changed BASE] [--fail-stale]
                          [--baseline FILE] [--no-baseline]
                          [--update-baseline] [--format json|sarif]
                          [--verbose] [--list-rules]
        Run the repo-aware static checks: the AST lint rules over
        ``src/repro`` (or explicit file paths) plus the symbolic
        shape/dtype contract checker over every shipped model config.
        ``--project`` adds the whole-program call-graph/dataflow rules;
        ``--changed BASE`` gates only on findings touching files changed
        since a git ref.  Exit 0 when clean, 1 when there are new
        findings (or stale baseline entries under ``--fail-stale``),
        2 on usage or configuration errors.

Every subcommand additionally accepts ``--trace out.json`` (write a Chrome
``trace_event`` file loadable in Perfetto / chrome://tracing) and
``--obs-jsonl out.jsonl`` (append span/metric events as JSON lines); both
flags may be given before or after the subcommand name.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.units import format_eng


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import ExperimentConfig, experiment_table4, load_bundle

    config = ExperimentConfig(dataset_seed=args.seed, dataset_scale=args.scale)
    print(experiment_table4(config, load_bundle(config)).render())
    return 0


def _runtime_from_args(args: argparse.Namespace):
    from repro.flows.runtime import RuntimeConfig

    return RuntimeConfig(
        metrics_jsonl=getattr(args, "metrics", None),
        progress_every=getattr(args, "progress_every", 0),
        max_retries=getattr(args, "max_retries", 0),
        patience=getattr(args, "patience", 0),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        checkpoint_every=getattr(args, "checkpoint_every", 0),
    )


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.data import build_bundle
    from repro.flows import TrainPlan, train
    from repro.models import TrainConfig

    print(f"building dataset (seed={args.seed}, scale={args.scale})...")
    bundle = build_bundle(seed=args.seed, scale=args.scale)
    config = TrainConfig(
        epochs=args.epochs,
        run_seed=args.seed,
        max_v=args.max_v,
    )
    plan = TrainPlan(
        targets=(args.target,),
        conv=args.conv,
        config=config,
        batching=args.batching,
        runtime=_runtime_from_args(args),
        resume_from=args.resume_from,
    )
    print(f"training {args.conv}/{args.target} for {args.epochs} epochs...")
    predictor = train(bundle, plan).model.predictor(args.target)
    metrics = predictor.evaluate(bundle.records("test"))
    print(
        f"held-out: R2={metrics['r2']:.3f} MAE={metrics['mae']:.3e} "
        f"MAPE={100 * metrics['mape']:.1f}%"
    )
    predictor.save(args.out)
    print(f"saved model to {args.out}")
    return 0


def _cmd_train_all(args: argparse.Namespace) -> int:
    from repro.data import ALL_TARGETS, build_bundle
    from repro.flows import TrainPlan, train
    from repro.models import TrainConfig

    if args.targets.strip().lower() == "all":
        names = [t.name for t in ALL_TARGETS]
    else:
        names = [name.strip() for name in args.targets.split(",") if name.strip()]
    print(f"building dataset (seed={args.seed}, scale={args.scale})...")
    bundle = build_bundle(seed=args.seed, scale=args.scale)
    config = TrainConfig(epochs=args.epochs, run_seed=args.seed)
    plan = TrainPlan(
        targets=tuple(names),
        conv=args.conv,
        config=config,
        trunk=args.trunk,
        batching=args.batching,
        runtime=_runtime_from_args(args),
        parallel_workers=args.workers,
    )
    if plan.trunk == "shared":
        mode = "shared trunk, one pass for all heads"
    elif args.workers > 1:
        mode = f"{args.workers} worker processes"
    else:
        mode = "shared-input cache"
    print(f"training {len(names)} targets ({mode})...")
    result = train(bundle, plan)
    model = result.model
    if plan.trunk == "shared":
        for name in model.target_names:
            metrics = model.evaluate(bundle.records("test"), name)
            print(f"  {name}: R2={metrics['r2']:.3f}")
        os.makedirs(args.out_dir, exist_ok=True)
        path = os.path.join(args.out_dir, "multitask.npz")
        model.save(path)
        print(f"saved multitask model to {path}")
    else:
        for name, predictor in model.predictors.items():
            metrics = predictor.evaluate(bundle.records("test"))
            print(f"  {name}: R2={metrics['r2']:.3f}")
        model.save_dir(args.out_dir)
        print(f"saved {len(model.predictors)} models to {args.out_dir}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    import json

    from repro.api.engine import coerce_request, create_engine
    from repro.circuits import write_spice
    from repro.nn import precision
    from repro.serve.registry import ModelRegistry, _entry_name
    from repro.sim import annotated_netlist

    netlists = list(args.netlist)
    if args.annotate and len(netlists) > 1:
        print("--annotate supports exactly one --netlist", file=sys.stderr)
        return 2
    registry = ModelRegistry()
    with precision.compute_dtype(args.precision):
        registry.load(_entry_name(os.path.basename(args.model)), args.model)
    with create_engine(
        registry, dtype=args.precision, backend=args.backend
    ) as engine:
        if args.annotate and "CAP" not in engine.targets_of():
            print("--annotate requires a CAP model", file=sys.stderr)
            return 2
        requests = [coerce_request(path) for path in netlists]
        results = engine.predict_batch(requests)
        if args.json:
            json.dump(
                [result.to_json_dict() for result in results],
                sys.stdout,
                indent=2,
            )
            print()
        else:
            for path, result in zip(netlists, results):
                for target in sorted(result.targets):
                    prediction = result.targets[target]
                    named = prediction.named
                    print(f"{target} predictions for {path}:")
                    for name in sorted(named):
                        print(f"  {name:24s} {format_eng(named[name], prediction.unit)}")
        if args.annotate:
            annotated = annotated_netlist(
                requests[0].resolve_circuit(), results[0].named("CAP")
            )
            with open(args.annotate, "w") as handle:
                write_spice(annotated, handle)
            print(f"wrote annotated netlist to {args.annotate}")
    return 0


def _serve_build(args: argparse.Namespace):
    """Build the (engine, server) pair for ``repro serve``.

    Split from :func:`_cmd_serve` so tests can drive the exact CLI stack
    without blocking in ``serve_forever``.
    """
    from repro.api.engine import create_engine
    from repro.serve.http import PredictionServer

    engine = create_engine(
        args.models,
        cache_size=args.cache_size,
        max_batch=args.max_batch,
        queue_depth=args.queue_depth,
        workers=args.workers,
        timeout_s=args.timeout_s,
        dtype=args.precision,
        backend=args.backend,
    )
    access_log = None
    if getattr(args, "access_log", None):
        from repro.obs.requestlog import AccessLog

        access_log = AccessLog(args.access_log)
    metrics_dir = getattr(args, "metrics_dir", None)
    if metrics_dir:
        # single-process serving still writes a metrics file, so
        # `repro obs top --dir` works against a one-worker deployment
        from repro import obs
        from repro.obs.mpmetrics import MetricsFileWriter

        obs.enable_metrics()
        obs.registry().attach_mirror(
            MetricsFileWriter(metrics_dir, worker=0, generation=0)
        )
    server = PredictionServer(
        engine,
        host=args.host,
        port=args.port,
        quiet=not args.verbose,
        metrics_dir=metrics_dir,
        access_log=access_log,
    )
    return engine, server


def _cmd_serve_pool(args: argparse.Namespace) -> int:
    """``repro serve --procs N``: pre-fork worker pool on one port."""
    from repro.serve.pool import PoolConfig, ServerPool

    config = PoolConfig(
        workers=args.procs,
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        max_batch=args.max_batch,
        queue_depth=args.queue_depth,
        threads=args.workers,
        timeout_s=args.timeout_s,
        dtype=args.precision,
        backend=args.backend,
        quiet=not args.verbose,
        metrics_dir=getattr(args, "metrics_dir", None),
        access_log=getattr(args, "access_log", None),
    )
    with ServerPool(args.models, config=config) as pool:
        names = ", ".join(pool.registry.names())
        print(
            f"serving {len(pool.registry)} model(s) [{names}] at {pool.url} "
            f"across {args.procs} workers ({pool.strategy})"
        )
        print("endpoints: POST /predict, GET /healthz, GET /metrics "
              "(?format=prom for Prometheus)")
        print(f"fleet metrics: repro obs top --dir {pool.metrics_dir}")
        print("signals: SIGHUP reloads changed artifacts, SIGTERM drains")
        try:
            pool.run_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.procs > 1:
        return _cmd_serve_pool(args)
    engine, server = _serve_build(args)
    names = ", ".join(engine.registry.names())
    print(f"serving {len(engine.registry)} model(s) [{names}] at {server.url}")
    print("endpoints: POST /predict, GET /healthz, GET /metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.shutdown()
    return 0


def _obs_top_rows(snapshots, previous: dict | None, interval_s: float):
    """Per-worker dashboard rows from fleet snapshots.

    *previous* maps pid -> last-seen ``serve.requests_total`` for rate
    deltas; None (first poll / --once) derives rps from the worker's
    uptime instead.
    """
    from repro.obs.mpmetrics import _rebuild_histogram

    rows = []
    for snap in snapshots:
        requests = snap.value("serve.requests_total")
        if previous is not None and snap.pid in previous and interval_s > 0:
            rps = max(0.0, requests - previous[snap.pid]) / interval_s
        else:
            uptime = snap.value("proc.uptime_s")
            rps = requests / uptime if uptime > 0 else 0.0
        hist_row = snap.row("serve.request_seconds", "histogram")
        quantiles = {}
        if hist_row and hist_row["count"]:
            hist = _rebuild_histogram(hist_row)
            for q, label in ((0.50, "p50_ms"), (0.95, "p95_ms"),
                             (0.99, "p99_ms")):
                quantiles[label] = round(hist.quantile(q) * 1e3, 3)
        else:
            quantiles = {"p50_ms": None, "p95_ms": None, "p99_ms": None}
        hits = snap.value("serve.graph_cache_hits_total")
        misses = snap.value("serve.graph_cache_misses_total")
        lookups = hits + misses
        rows.append({
            "worker": snap.worker,
            "pid": snap.pid,
            "generation": snap.generation,
            "alive": snap.alive,
            "requests": requests,
            "rps": round(rps, 2),
            **quantiles,
            "cache_hit_pct": (
                round(100.0 * hits / lookups, 1) if lookups else None
            ),
            "rss_kb": int(snap.value("proc.rss_kb")),
            "queue_depth": int(snap.value("serve.queue_depth")),
        })
    return rows


def _render_top_table(rows) -> str:
    from repro.analysis.tables import render_table

    def fmt(value):
        return "-" if value is None else value

    body = [
        [row["worker"], row["pid"], row["generation"],
         "up" if row["alive"] else "dead", int(row["requests"]), row["rps"],
         fmt(row["p50_ms"]), fmt(row["p95_ms"]), fmt(row["p99_ms"]),
         fmt(row["cache_hit_pct"]), row["rss_kb"], row["queue_depth"]]
        for row in rows
    ]
    return render_table(
        ["worker", "pid", "gen", "state", "reqs", "rps", "p50ms", "p95ms",
         "p99ms", "hit%", "rss_kb", "queue"],
        body,
        title="repro obs top",
    )


def _cmd_obs_top(args: argparse.Namespace) -> int:
    """Live per-worker dashboard over the pool's mmap metrics files."""
    import json as json_module
    import time

    from repro.obs.mpmetrics import load_snapshots, merge_snapshots

    snapshots = load_snapshots(args.dir)
    if args.once:
        rows = _obs_top_rows(snapshots, None, 0.0)
        if args.json:
            merged = merge_snapshots(snapshots)
            print(json_module.dumps(
                {"dir": args.dir, "workers": rows, "fleet": merged},
                default=str,
            ))
        else:
            if not rows:
                print(f"no live worker metrics files under {args.dir}",
                      file=sys.stderr)
                return 2
            print(_render_top_table(rows))
        return 0
    previous: dict | None = None
    try:
        while True:
            rows = _obs_top_rows(snapshots, previous, args.interval)
            sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
            if rows:
                print(_render_top_table(rows))
            else:
                print(f"no live worker metrics files under {args.dir}")
            print(f"polling {args.dir} every {args.interval:g}s "
                  "(ctrl-c to quit)")
            sys.stdout.flush()
            previous = {
                snap.pid: snap.value("serve.requests_total")
                for snap in snapshots
            }
            time.sleep(args.interval)
            snapshots = load_snapshots(args.dir)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import load_events, render_summary

    spans, metrics = load_events(args.trace_file)
    if not spans and not metrics:
        print(f"no observability events in {args.trace_file}", file=sys.stderr)
        return 2
    try:
        print(render_summary(spans, metrics))
    except BrokenPipeError:  # e.g. piped into head
        sys.stderr.close()
        return 0
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.errors import StaticCheckError
    from repro.staticcheck import (
        render_json,
        render_sarif,
        render_text,
        rule_names,
        run_lint,
        run_shapes,
    )
    from repro.staticcheck.baseline import write_baseline
    from repro.staticcheck.runner import CheckResult, default_baseline_path

    if args.list_rules:
        from repro.staticcheck import all_project_rules, all_rules

        for rule in all_rules():
            print(f"{rule.name:18s} [{rule.severity.value}] {rule.description}")
        for rule in all_project_rules():
            print(f"{rule.name:18s} [{rule.severity.value}] (--project) "
                  f"{rule.description}")
        print(f"{'shape-contract':18s} [error] symbolic shape/dtype "
              "propagation over shipped model configs")
        return 0

    selected = (
        [name.strip() for name in args.rules.split(",") if name.strip()]
        if args.rules
        else None
    )
    paths = args.paths or None
    if args.project and paths is not None:
        print(
            "repro check: --project analyses the whole repo; explicit "
            "paths are not supported (use --changed BASE to gate on a diff)",
            file=sys.stderr,
        )
        return 2
    lint_selected = project_selected = selected
    if args.project and selected is not None:
        from repro.staticcheck.project_rules import project_rule_names

        lint_selected = [n for n in selected if n not in project_rule_names()]
        project_selected = [n for n in selected if n in project_rule_names()]
    try:
        result = run_lint(
            paths=paths,
            rule_names=lint_selected,
            baseline_path=args.baseline,
            use_baseline=not args.no_baseline,
            compute_stale=not args.project,
        )
        if args.project:
            from repro.staticcheck import run_project

            result = run_project(
                rule_names=project_selected,
                baseline_path=args.baseline,
                use_baseline=not args.no_baseline,
                lint_result=result,
            )
    except StaticCheckError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2

    if args.changed:
        from repro.staticcheck import changed_files, filter_changed

        try:
            result = filter_changed(result, changed_files(args.changed))
        except StaticCheckError as exc:
            print(f"repro check: {exc}", file=sys.stderr)
            return 2

    if args.update_baseline:
        from repro.staticcheck.baseline import Baseline

        if paths is not None or args.changed:
            print(
                "repro check: --update-baseline requires a full-repo run "
                "(no explicit paths, no --changed)",
                file=sys.stderr,
            )
            return 2
        target = args.baseline or default_baseline_path()
        write_baseline(target, Baseline.from_findings(result.findings))
        kept = sum(1 for f in result.findings if not f.suppressed)
        print(f"wrote {kept} finding(s) to {target}")
        return 0

    if args.shapes and selected is None:
        try:
            result = result.merge(run_shapes())
        except StaticCheckError as exc:
            print(f"repro check: {exc}", file=sys.stderr)
            return 2

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, verbose=args.verbose))
    if args.fail_stale and result.stale_baseline:
        return 1
    return 0 if result.ok() else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis import experiments as exp

    config = exp.ExperimentConfig.from_env()
    bundle = exp.load_bundle(config)
    runners = {
        "table4": lambda: exp.experiment_table4(config, bundle),
        "fig5": lambda: exp.experiment_fig5(config, bundle),
        "fig6": lambda: exp.experiment_fig6(config, bundle),
        "fig7": lambda: exp.experiment_fig7(config, bundle),
        "fig8": lambda: exp.experiment_fig8(config, bundle),
        "table5": lambda: exp.experiment_table5(config, bundle),
        "layers": lambda: exp.experiment_layer_sweep(config, bundle),
        "ingredients": lambda: exp.experiment_ingredients(config, bundle),
    }
    print(runners[args.name]().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ParaGraph reproduction command line"
    )
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        help="write a Chrome trace_event file of the run")
    parser.add_argument("--obs-jsonl", default=None, metavar="OUT.jsonl",
                        help="append span/metric events to this JSONL file")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_args(sub_parser: argparse.ArgumentParser) -> None:
        # SUPPRESS: without it the subparser's default (None) would
        # overwrite a value parsed from before the subcommand name.
        sub_parser.add_argument("--trace", default=argparse.SUPPRESS,
                                metavar="OUT.json",
                                help="write a Chrome trace_event file")
        sub_parser.add_argument("--obs-jsonl", default=argparse.SUPPRESS,
                                metavar="OUT.jsonl",
                                help="append span/metric events as JSONL")

    p_dataset = sub.add_parser("dataset", help="print Table IV for a generated dataset")
    p_dataset.add_argument("--scale", type=float, default=0.2)
    p_dataset.add_argument("--seed", type=int, default=0)
    add_obs_args(p_dataset)
    p_dataset.set_defaults(func=_cmd_dataset)

    def add_runtime_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--metrics", default=None,
                                help="append per-epoch metrics to this JSONL file")
        sub_parser.add_argument("--progress-every", type=int, default=0,
                                help="print a progress line every N epochs")
        sub_parser.add_argument("--max-retries", type=int, default=0,
                                help="re-seeded retries after NaN/Inf divergence")
        sub_parser.add_argument("--patience", type=int, default=0,
                                help="early-stop after N epochs without improvement")
        sub_parser.add_argument("--checkpoint-dir", default=None,
                                help="write resumable checkpoints here")
        sub_parser.add_argument("--checkpoint-every", type=int, default=0,
                                help="checkpoint every N epochs")

    p_train = sub.add_parser("train", help="train and save a predictor")
    p_train.add_argument("--target", default="CAP")
    p_train.add_argument("--conv", default="paragraph",
                         choices=["paragraph", "sage", "rgcn", "gat", "gcn"])
    p_train.add_argument("--epochs", type=int, default=60)
    p_train.add_argument("--scale", type=float, default=0.2)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--max-v", type=float, default=None,
                         help="training clamp in farads (CAP models)")
    p_train.add_argument("--out", default="model.npz")
    p_train.add_argument("--resume-from", default=None,
                         help="resume training from this checkpoint .npz")
    p_train.add_argument("--batching", default="mega", choices=["mega", "graph"],
                         help="merged-input construction (bit-identical results)")
    add_runtime_args(p_train)
    add_obs_args(p_train)
    p_train.set_defaults(func=_cmd_train)

    p_train_all = sub.add_parser(
        "train-all", help="train one predictor per target and save the suite"
    )
    p_train_all.add_argument("--targets", default="all",
                             help='comma-separated target names, or "all"')
    p_train_all.add_argument("--conv", default="paragraph",
                             choices=["paragraph", "sage", "rgcn", "gat", "gcn"])
    p_train_all.add_argument("--epochs", type=int, default=60)
    p_train_all.add_argument("--scale", type=float, default=0.2)
    p_train_all.add_argument("--seed", type=int, default=0)
    p_train_all.add_argument("--workers", type=int, default=0,
                             help="train targets in N parallel processes (>= 2)")
    p_train_all.add_argument("--trunk", default="per_target",
                             choices=["per_target", "shared"],
                             help="independent model per target, or one shared "
                                  "trunk with per-target readout heads")
    p_train_all.add_argument("--batching", default="mega", choices=["mega", "graph"],
                             help="merged-input construction (bit-identical results)")
    p_train_all.add_argument("--out-dir", default="models",
                             help="directory for the per-target .npz files "
                                  "(or multitask.npz with --trunk shared)")
    add_runtime_args(p_train_all)
    add_obs_args(p_train_all)
    p_train_all.set_defaults(func=_cmd_train_all)

    p_predict = sub.add_parser("predict", help="predict targets for SPICE netlists")
    p_predict.add_argument("--model", required=True,
                           help="saved model: .npz file, multi-target dir, "
                                "or ensemble dir")
    p_predict.add_argument("--netlist", required=True, action="append",
                           help="SPICE netlist path (repeatable for a batch)")
    p_predict.add_argument("--json", action="store_true",
                           help="emit machine-readable JSON instead of a report")
    p_predict.add_argument("--annotate", default=None,
                           help="write a parasitic-annotated netlist here")
    p_predict.add_argument("--precision", default="float32",
                           choices=["float32", "float64"],
                           help="serving compute precision (default float32; "
                                "float64 matches training bit-for-bit)")
    p_predict.add_argument("--backend", default=None,
                           help="kernel backend: default, fused, auto, or "
                                "numba when installed (default: "
                                "REPRO_BACKEND or 'default')")
    add_obs_args(p_predict)
    p_predict.set_defaults(func=_cmd_predict)

    p_serve = sub.add_parser(
        "serve", help="serve saved models over JSON/HTTP (stdlib only)"
    )
    p_serve.add_argument("--models", required=True,
                         help="saved model artifact or directory of artifacts")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="TCP port (0 binds an ephemeral port)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="micro-batching executor threads per process")
    p_serve.add_argument("--procs", type=int, default=1,
                         help="worker processes; >1 forks a shared-memory "
                              "pool behind one port")
    p_serve.add_argument("--max-batch", type=int, default=16,
                         help="max requests merged into one forward pass")
    p_serve.add_argument("--queue-depth", type=int, default=128,
                         help="queued requests before 429 backpressure")
    p_serve.add_argument("--cache-size", type=int, default=256,
                         help="graph/feature cache entries")
    p_serve.add_argument("--timeout-s", type=float, default=None,
                         help="per-request deadline while queued")
    p_serve.add_argument("--precision", default="float32",
                         choices=["float32", "float64"],
                         help="serving compute precision (default float32; "
                              "float64 matches training bit-for-bit)")
    p_serve.add_argument("--backend", default=None,
                         help="kernel backend: default, fused, auto, or "
                              "numba when installed (default: "
                              "REPRO_BACKEND or 'default')")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")
    p_serve.add_argument("--metrics-dir", default=None, metavar="DIR",
                         help="directory for per-worker mmap metrics files "
                              "(pools auto-create one when omitted)")
    p_serve.add_argument("--access-log", default=None, metavar="FILE",
                         help="append one JSON line per request here "
                              "(tail-sampled span detail on slow/error)")
    add_obs_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_exp = sub.add_parser("experiment", help="run one paper experiment")
    p_exp.add_argument(
        "name",
        choices=["table4", "fig5", "fig6", "fig7", "fig8", "table5",
                 "layers", "ingredients"],
    )
    add_obs_args(p_exp)
    p_exp.set_defaults(func=_cmd_experiment)

    p_check = sub.add_parser(
        "check", help="run the static lint rules and shape-contract checker"
    )
    p_check.add_argument("paths", nargs="*",
                         help="specific files to lint (default: all of "
                              "src/repro)")
    p_check.add_argument("--rules", default=None, metavar="R1,R2",
                         help="comma-separated lint rule names (implies "
                              "--no-shapes); see --list-rules")
    p_check.add_argument("--shapes", dest="shapes", action="store_true",
                         default=True,
                         help="run the symbolic shape/dtype checker (default)")
    p_check.add_argument("--no-shapes", dest="shapes", action="store_false",
                         help="skip the shape/dtype checker")
    p_check.add_argument("--baseline", default=None, metavar="FILE",
                         help="baseline file (default: "
                              "<repo>/staticcheck-baseline.json)")
    p_check.add_argument("--no-baseline", action="store_true",
                         help="report grandfathered findings too")
    p_check.add_argument("--project", action="store_true",
                         help="also run the whole-program rules (call "
                              "graph + dataflow: lock-order, fork-safety, "
                              "resource-lifecycle, precision-taint)")
    p_check.add_argument("--changed", default=None, metavar="BASE",
                         help="only report findings touching files changed "
                              "since this git ref (diff-aware CI gate)")
    p_check.add_argument("--fail-stale", action="store_true",
                         help="exit non-zero when baseline entries no "
                              "longer match any finding (baseline may "
                              "only shrink)")
    p_check.add_argument("--update-baseline", action="store_true",
                         help="rewrite the baseline from the current findings")
    p_check.add_argument("--format", choices=["text", "json", "sarif"],
                         default="text")
    p_check.add_argument("--verbose", action="store_true",
                         help="also list suppressed and baselined findings")
    p_check.add_argument("--list-rules", action="store_true",
                         help="print the rule catalogue and exit")
    p_check.set_defaults(func=_cmd_check)

    p_obs = sub.add_parser("obs", help="inspect observability output")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_report = obs_sub.add_parser(
        "report", help="per-stage summary of a trace/JSONL file"
    )
    p_report.add_argument("trace_file",
                          help="file written by --trace or --obs-jsonl")
    p_report.set_defaults(func=_cmd_obs)
    p_top = obs_sub.add_parser(
        "top", help="live per-worker serving dashboard (fleet metrics)"
    )
    p_top.add_argument("--dir", required=True,
                       help="pool metrics directory (printed by "
                            "`repro serve --procs N`)")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="poll interval in seconds")
    p_top.add_argument("--once", action="store_true",
                       help="print one snapshot and exit")
    p_top.add_argument("--json", action="store_true",
                       help="with --once: machine-readable JSON")
    p_top.set_defaults(func=_cmd_obs_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace", None)
    jsonl_out = getattr(args, "obs_jsonl", None)
    if not (trace_out or jsonl_out):
        return args.func(args)

    from repro import obs

    # When an outer controller (e.g. the pytest session hook) already owns
    # the collection lifecycle, export but leave its state untouched.
    nested = obs.is_enabled()
    if not nested:
        obs.enable(memory=True)
    try:
        return args.func(args)
    finally:
        if not nested:
            obs.disable()
        if jsonl_out:
            obs.export_jsonl(jsonl_out)
            print(f"wrote observability events to {jsonl_out}", file=sys.stderr)
        if trace_out:
            obs.export_chrome_trace(trace_out)
            print(f"wrote Chrome trace to {trace_out}", file=sys.stderr)
        if not nested:
            obs.reset()  # don't leak spans into a later in-process run


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
