"""Circuit netlists: device taxonomy, netlist model, SPICE I/O, generators."""

from repro.circuits.devices import (
    BJT,
    CAPACITOR,
    DEVICE_SPECS,
    DEVICE_TYPES,
    DIODE,
    NET,
    NMOS,
    NODE_TYPES,
    PMOS,
    RESISTOR,
    TRANSISTOR,
    TRANSISTOR_THICKGATE,
    DeviceSpec,
    is_mos,
    spec_for,
    terminal_edge_types,
)
from repro.circuits.netlist import Circuit, Instance, Net, is_supply_name
from repro.circuits.spice import read_spice, write_spice
from repro.circuits.validate import validate_circuit

__all__ = [
    "BJT",
    "CAPACITOR",
    "DEVICE_SPECS",
    "DEVICE_TYPES",
    "DIODE",
    "NET",
    "NMOS",
    "NODE_TYPES",
    "PMOS",
    "RESISTOR",
    "TRANSISTOR",
    "TRANSISTOR_THICKGATE",
    "DeviceSpec",
    "is_mos",
    "spec_for",
    "terminal_edge_types",
    "Circuit",
    "Instance",
    "Net",
    "is_supply_name",
    "read_spice",
    "write_spice",
    "validate_circuit",
]
