"""SPICE-subset netlist reader and writer.

Supports the element cards the dataset uses — ``M`` (MOSFET), ``R``, ``C``,
``D``, ``Q`` (BJT) — plus ``.subckt``/``.ends`` definitions and ``X``
subcircuit instantiations (flattened on read), comments, and ``+``
continuation lines.  Values accept engineering suffixes (``16n``, ``4.5f``).

Model-name conventions map SPICE models to the device taxonomy:

========  ==============================  ======
model     device type                     TYPE
========  ==============================  ======
nch       transistor                      +1
pch       transistor                      -1
nch_hv    transistor_thickgate            +1
pch_hv    transistor_thickgate            -1
dio       diode
npn/pnp   bjt
========  ==============================  ======
"""

from __future__ import annotations

import io
import re
from typing import Iterable, TextIO

from repro.circuits import devices as dev
from repro.circuits.netlist import Circuit
from repro.errors import SpiceSyntaxError
from repro.units import format_eng, parse_value

#: SPICE model name -> (device type, TYPE parameter or None).
MODEL_MAP: dict[str, tuple[str, float | None]] = {
    "nch": (dev.TRANSISTOR, dev.NMOS),
    "pch": (dev.TRANSISTOR, dev.PMOS),
    "nch_hv": (dev.TRANSISTOR_THICKGATE, dev.NMOS),
    "pch_hv": (dev.TRANSISTOR_THICKGATE, dev.PMOS),
    "dio": (dev.DIODE, None),
    "npn": (dev.BJT, None),
    "pnp": (dev.BJT, None),
}

_MOS_MODELS = {
    (dev.TRANSISTOR, dev.NMOS): "nch",
    (dev.TRANSISTOR, dev.PMOS): "pch",
    (dev.TRANSISTOR_THICKGATE, dev.NMOS): "nch_hv",
    (dev.TRANSISTOR_THICKGATE, dev.PMOS): "pch_hv",
}

_PARAM_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)=(\S+)$")


def _join_continuations(text: str) -> list[tuple[int, str]]:
    """Strip comments, join ``+`` continuations; return (line_no, card) pairs."""
    cards: list[tuple[int, str]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not cards:
                raise SpiceSyntaxError("continuation line with nothing to continue", line_no)
            prev_no, prev = cards[-1]
            cards[-1] = (prev_no, f"{prev} {stripped[1:].strip()}")
        else:
            cards.append((line_no, stripped))
    return cards


def _split_params(tokens: list[str]) -> tuple[list[str], dict[str, float]]:
    """Split card tokens into positional tokens and key=value parameters."""
    positional: list[str] = []
    params: dict[str, float] = {}
    for token in tokens:
        match = _PARAM_RE.match(token)
        if match:
            params[match.group(1).upper()] = parse_value(match.group(2))
        else:
            positional.append(token)
    return positional, params


class SpiceReader:
    """Parses SPICE text into flat :class:`Circuit` objects."""

    def __init__(self):
        self.subckts: dict[str, Circuit] = {}

    def parse(self, text: str, name: str = "top") -> Circuit:
        """Parse SPICE *text*; top-level cards land in a circuit called *name*.

        Subcircuit instantiations (``X`` cards) are flattened immediately,
        so the result is always a flat netlist.
        """
        top = Circuit(name)
        current = top
        stack: list[Circuit] = []
        for line_no, card in _join_continuations(text):
            lower = card.lower()
            if lower.startswith(".subckt"):
                tokens = card.split()
                if len(tokens) < 2:
                    raise SpiceSyntaxError(".subckt needs a name", line_no)
                sub = Circuit(tokens[1], ports=tokens[2:])
                stack.append(current)
                current = sub
            elif lower.startswith(".ends"):
                if not stack:
                    raise SpiceSyntaxError(".ends without .subckt", line_no)
                self.subckts[current.name] = current
                current = stack.pop()
            elif lower.startswith(".end"):
                break
            elif lower.startswith("."):
                continue  # tolerate .option/.include-style cards
            else:
                self._parse_element(current, card, line_no)
        if stack:
            raise SpiceSyntaxError(f"unterminated .subckt {current.name!r}")
        return top

    # ------------------------------------------------------------------
    def _parse_element(self, circuit: Circuit, card: str, line_no: int) -> None:
        tokens = card.split()
        letter = tokens[0][0].upper()
        # The full card token (letter included) is the instance name, so
        # M1/R1/C1 never collide and writer->reader round trips are stable.
        inst_name = tokens[0]
        if len(inst_name) < 2:
            raise SpiceSyntaxError(f"element card {tokens[0]!r} has no name", line_no)
        rest, params = _split_params(tokens[1:])
        handler = {
            "M": self._mosfet,
            "R": self._resistor,
            "C": self._capacitor,
            "D": self._diode,
            "Q": self._bjt,
            "X": self._subckt_call,
        }.get(letter)
        if handler is None:
            raise SpiceSyntaxError(f"unsupported element letter {letter!r}", line_no)
        handler(circuit, inst_name, rest, params, line_no)

    def _lookup_model(self, model: str, line_no: int) -> tuple[str, float | None]:
        try:
            return MODEL_MAP[model.lower()]
        except KeyError:
            raise SpiceSyntaxError(f"unknown model {model!r}", line_no) from None

    def _mosfet(self, circuit, name, rest, params, line_no):
        if len(rest) != 5:
            raise SpiceSyntaxError(
                f"MOSFET {name!r} needs 4 nets + model, got {rest}", line_no
            )
        d, g, s, b, model = rest
        device_type, polarity = self._lookup_model(model, line_no)
        if not dev.is_mos(device_type):
            raise SpiceSyntaxError(f"model {model!r} is not a MOSFET", line_no)
        params = dict(params)
        params.setdefault("TYPE", polarity)
        circuit.add_instance(
            name, device_type, {"drain": d, "gate": g, "source": s, "bulk": b}, params
        )

    def _resistor(self, circuit, name, rest, params, line_no):
        if len(rest) < 2:
            raise SpiceSyntaxError(f"resistor {name!r} needs 2 nets", line_no)
        p, n = rest[0], rest[1]
        params = dict(params)
        if len(rest) >= 3:
            params.setdefault("R", parse_value(rest[2]))
        circuit.add_instance(name, dev.RESISTOR, {"p": p, "n": n}, params)

    def _capacitor(self, circuit, name, rest, params, line_no):
        if len(rest) < 2:
            raise SpiceSyntaxError(f"capacitor {name!r} needs 2 nets", line_no)
        p, n = rest[0], rest[1]
        params = dict(params)
        if len(rest) >= 3:
            params.setdefault("C", parse_value(rest[2]))
        circuit.add_instance(name, dev.CAPACITOR, {"p": p, "n": n}, params)

    def _diode(self, circuit, name, rest, params, line_no):
        if len(rest) != 3:
            raise SpiceSyntaxError(f"diode {name!r} needs 2 nets + model", line_no)
        p, n, model = rest
        device_type, _ = self._lookup_model(model, line_no)
        if device_type != dev.DIODE:
            raise SpiceSyntaxError(f"model {model!r} is not a diode", line_no)
        circuit.add_instance(name, dev.DIODE, {"p": p, "n": n}, dict(params))

    def _bjt(self, circuit, name, rest, params, line_no):
        if len(rest) != 4:
            raise SpiceSyntaxError(f"BJT {name!r} needs 3 nets + model", line_no)
        c, b, e, model = rest
        device_type, _ = self._lookup_model(model, line_no)
        if device_type != dev.BJT:
            raise SpiceSyntaxError(f"model {model!r} is not a BJT", line_no)
        params = dict(params)
        params.setdefault("POLARITY", 1.0 if model.lower() == "npn" else -1.0)
        circuit.add_instance(name, dev.BJT, {"c": c, "b": b, "e": e}, params)

    def _subckt_call(self, circuit, name, rest, params, line_no):
        if not rest:
            raise SpiceSyntaxError(f"X card {name!r} needs a subcircuit name", line_no)
        sub_name = rest[-1]
        nets = rest[:-1]
        if sub_name not in self.subckts:
            raise SpiceSyntaxError(f"undefined subcircuit {sub_name!r}", line_no)
        sub = self.subckts[sub_name]
        if len(nets) != len(sub.ports):
            raise SpiceSyntaxError(
                f"X card {name!r}: {len(nets)} nets for {len(sub.ports)} ports",
                line_no,
            )
        circuit.embed(sub, name, dict(zip(sub.ports, nets)))


def read_spice(source: str | TextIO, name: str = "top") -> Circuit:
    """Parse SPICE text (or a file object) into a flat :class:`Circuit`."""
    text = source.read() if hasattr(source, "read") else source
    return SpiceReader().parse(text, name=name)


def _format_params(params: dict[str, float], skip: Iterable[str] = ()) -> str:
    skip = set(skip)
    parts = []
    for key in sorted(params):
        if key in skip:
            continue
        parts.append(f"{key}={format_eng(params[key], digits=6)}")
    return " ".join(parts)


def _card_name(name: str, letter: str) -> str:
    """Return the element-card token for an instance name.

    Names that already start with the right letter are kept verbatim (so a
    writer->reader round trip preserves them); others get the letter
    prepended, as SPICE requires.
    """
    if name[:1].upper() == letter:
        return name
    return f"{letter}{name}"


def write_spice(circuit: Circuit, out: TextIO | None = None) -> str:
    """Serialise a flat circuit to SPICE text (inverse of :func:`read_spice`).

    Instance names that begin with their element letter (``M``/``R``/``C``/
    ``D``/``Q``, any case) survive a round trip verbatim; other names gain
    the letter prefix on write.
    """
    buffer = out or io.StringIO()
    buffer.write(f"* circuit {circuit.name}\n")
    for inst in circuit.instances():
        if dev.is_mos(inst.device_type):
            polarity = inst.param("TYPE", dev.NMOS)
            model = _MOS_MODELS[(inst.device_type, polarity)]
            nets = " ".join(
                inst.conns[t] for t in ("drain", "gate", "source", "bulk")
            )
            tail = _format_params(inst.params, skip={"TYPE"})
            card = f"{_card_name(inst.name, 'M')} {nets} {model} {tail}"
            buffer.write(card.rstrip() + "\n")
        elif inst.device_type == dev.RESISTOR:
            value = format_eng(inst.param("R", 1e3), digits=6)
            tail = _format_params(inst.params, skip={"R"})
            card = (
                f"{_card_name(inst.name, 'R')} {inst.conns['p']} "
                f"{inst.conns['n']} {value} {tail}"
            )
            buffer.write(card.rstrip() + "\n")
        elif inst.device_type == dev.CAPACITOR:
            value = format_eng(inst.param("C", 1e-15), digits=6)
            tail = _format_params(inst.params, skip={"C"})
            card = (
                f"{_card_name(inst.name, 'C')} {inst.conns['p']} "
                f"{inst.conns['n']} {value} {tail}"
            )
            buffer.write(card.rstrip() + "\n")
        elif inst.device_type == dev.DIODE:
            tail = _format_params(inst.params)
            card = (
                f"{_card_name(inst.name, 'D')} {inst.conns['p']} "
                f"{inst.conns['n']} dio {tail}"
            )
            buffer.write(card.rstrip() + "\n")
        elif inst.device_type == dev.BJT:
            model = "npn" if inst.param("POLARITY", 1.0) > 0 else "pnp"
            nets = " ".join(inst.conns[t] for t in ("c", "b", "e"))
            tail = _format_params(inst.params, skip={"POLARITY"})
            card = f"{_card_name(inst.name, 'Q')} {nets} {model} {tail}"
            buffer.write(card.rstrip() + "\n")
    buffer.write(".end\n")
    if out is None:
        return buffer.getvalue()
    return ""
