"""Device registry: types, terminals and schematic features.

This module is the single source of truth for the device taxonomy of paper
Tables I and II:

* node types ``{transistor, transistor_thickgate, resistor, capacitor,
  diode, bjt, net}``,
* terminal names per device (which become the heterogeneous edge types),
* the schematic input features per device type (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetlistError

# Canonical device-type names (graph node types, except NET which is its own
# node type added during graph construction).
TRANSISTOR = "transistor"
TRANSISTOR_THICKGATE = "transistor_thickgate"
RESISTOR = "resistor"
CAPACITOR = "capacitor"
DIODE = "diode"
BJT = "bjt"
NET = "net"

#: Device types in canonical report order (matches paper Table IV columns).
DEVICE_TYPES = (
    TRANSISTOR,
    TRANSISTOR_THICKGATE,
    RESISTOR,
    CAPACITOR,
    BJT,
    DIODE,
)

#: All graph node types (devices + nets).
NODE_TYPES = (*DEVICE_TYPES, NET)


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a device type.

    Attributes
    ----------
    name:
        Canonical type name (one of :data:`DEVICE_TYPES`).
    terminals:
        Ordered terminal names; these become edge types
        (``net -> transistor_gate`` etc.).
    features:
        Schematic feature names from paper Table II, in feature-vector order.
    default_params:
        Defaults applied when an instance omits a parameter.
    spice_letter:
        Leading letter of the SPICE element card (``M``, ``R``, ``C`` ...).
    """

    name: str
    terminals: tuple[str, ...]
    features: tuple[str, ...]
    default_params: dict[str, float] = field(default_factory=dict)
    spice_letter: str = "X"

    def feature_vector(self, params: dict[str, float]) -> list[float]:
        """Extract this device's Table-II feature vector from *params*."""
        merged = {**self.default_params, **params}
        try:
            return [float(merged[name]) for name in self.features]
        except KeyError as exc:
            raise NetlistError(
                f"device type {self.name!r} missing feature {exc.args[0]!r}"
            ) from None


#: Registry of all device specs, keyed by canonical type name.
DEVICE_SPECS: dict[str, DeviceSpec] = {
    TRANSISTOR: DeviceSpec(
        name=TRANSISTOR,
        terminals=("drain", "gate", "source", "bulk"),
        features=("L", "NF", "NFIN", "MULTI"),
        default_params={"L": 16e-9, "NF": 1.0, "NFIN": 2.0, "MULTI": 1.0},
        spice_letter="M",
    ),
    TRANSISTOR_THICKGATE: DeviceSpec(
        name=TRANSISTOR_THICKGATE,
        terminals=("drain", "gate", "source", "bulk"),
        features=("L", "NF", "NFIN", "MULTI"),
        default_params={"L": 150e-9, "NF": 1.0, "NFIN": 2.0, "MULTI": 1.0},
        spice_letter="M",
    ),
    RESISTOR: DeviceSpec(
        name=RESISTOR,
        terminals=("p", "n"),
        features=("L",),
        default_params={"L": 1e-6},
        spice_letter="R",
    ),
    CAPACITOR: DeviceSpec(
        name=CAPACITOR,
        terminals=("p", "n"),
        features=("MULTI",),
        default_params={"MULTI": 1.0},
        spice_letter="C",
    ),
    DIODE: DeviceSpec(
        name=DIODE,
        terminals=("p", "n"),
        features=("NF",),
        default_params={"NF": 1.0},
        spice_letter="D",
    ),
    BJT: DeviceSpec(
        name=BJT,
        terminals=("c", "b", "e"),
        features=("ONE",),
        default_params={"ONE": 1.0},
        spice_letter="Q",
    ),
}

#: Transistor polarity parameter value conventions ("TYPE": +1 NMOS, -1 PMOS).
NMOS, PMOS = 1.0, -1.0


def spec_for(device_type: str) -> DeviceSpec:
    """Look up the :class:`DeviceSpec` for a canonical type name."""
    try:
        return DEVICE_SPECS[device_type]
    except KeyError:
        raise NetlistError(
            f"unknown device type {device_type!r}; known: {sorted(DEVICE_SPECS)}"
        ) from None


def is_mos(device_type: str) -> bool:
    """True for thin- or thick-gate MOSFETs."""
    return device_type in (TRANSISTOR, TRANSISTOR_THICKGATE)


def terminal_edge_types(device_type: str) -> list[str]:
    """Edge-type labels contributed by a device type (``transistor_gate`` ...)."""
    spec = spec_for(device_type)
    return [f"{spec.name}_{terminal}" for terminal in spec.terminals]
