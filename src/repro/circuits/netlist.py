"""Circuit netlist data model.

A :class:`Circuit` is a flat schematic: named nets plus device instances
whose terminals connect to nets.  Hierarchy is supported through
:meth:`Circuit.embed`, which flattens a child circuit into the parent with
prefixed names — the form every downstream consumer (graph builder, layout
synthesizer, simulator) works on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.circuits.devices import DEVICE_TYPES, spec_for
from repro.errors import NetlistError

#: Net-name patterns treated as power/ground rails (paper §II-B drops them
#: from the graph: "Connections to supply and ground nets are ignored").
_SUPPLY_RE = re.compile(
    r"^(?:0|(?:[ad]?(?:vdd|vss|vcc|vee)|gnd|vpwr|vgnd|vddio|vbat)[a-z0-9_]*)$",
    re.IGNORECASE,
)


def is_supply_name(net_name: str) -> bool:
    """True when *net_name* looks like a supply/ground rail.

    The heuristic mirrors industrial naming conventions; composed circuits
    built by :mod:`repro.circuits.generators` always use matching names.
    """
    local = net_name.rsplit("/", 1)[-1]
    return bool(_SUPPLY_RE.match(local))


@dataclass
class Net:
    """A single electrical net."""

    name: str

    @property
    def is_supply(self) -> bool:
        return is_supply_name(self.name)


@dataclass
class Instance:
    """A device instance.

    Attributes
    ----------
    name:
        Unique instance name inside the circuit.
    device_type:
        Canonical type name from :mod:`repro.circuits.devices`.
    conns:
        Mapping ``terminal -> net name``; must cover the device's terminals.
    params:
        Device parameters (``L``, ``NF``, ``NFIN``, ``MULTI``, ``TYPE``...).
    """

    name: str
    device_type: str
    conns: dict[str, str]
    params: dict[str, float] = field(default_factory=dict)

    def param(self, name: str, default: float | None = None) -> float:
        """Return a parameter with spec defaults applied."""
        if name in self.params:
            return float(self.params[name])
        spec = spec_for(self.device_type)
        if name in spec.default_params:
            return float(spec.default_params[name])
        if default is not None:
            return float(default)
        raise NetlistError(f"instance {self.name!r} has no parameter {name!r}")

    def net_of(self, terminal: str) -> str:
        """Return the net name connected to *terminal*."""
        try:
            return self.conns[terminal]
        except KeyError:
            raise NetlistError(
                f"instance {self.name!r} has no terminal {terminal!r}"
            ) from None


class Circuit:
    """A flat schematic netlist.

    Parameters
    ----------
    name:
        Circuit name, used in reports and as a hierarchy prefix.
    ports:
        Optional ordered list of externally visible net names, used when this
        circuit is embedded into a parent.
    """

    def __init__(self, name: str, ports: Iterable[str] = ()):
        self.name = name
        self.ports: list[str] = list(ports)
        self._nets: dict[str, Net] = {}
        self._instances: dict[str, Instance] = {}
        for port in self.ports:
            self.add_net(port)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_net(self, name: str) -> Net:
        """Add (or return an existing) net."""
        if name not in self._nets:
            self._nets[name] = Net(name)
        return self._nets[name]

    def add_instance(
        self,
        name: str,
        device_type: str,
        conns: dict[str, str],
        params: dict[str, float] | None = None,
    ) -> Instance:
        """Add a device instance, creating referenced nets as needed.

        Raises
        ------
        NetlistError
            On duplicate instance names or missing terminals.
        """
        if name in self._instances:
            raise NetlistError(f"duplicate instance name {name!r} in {self.name!r}")
        spec = spec_for(device_type)
        missing = [t for t in spec.terminals if t not in conns]
        if missing:
            raise NetlistError(
                f"instance {name!r} of type {device_type!r} missing terminals {missing}"
            )
        extra = [t for t in conns if t not in spec.terminals]
        if extra:
            raise NetlistError(
                f"instance {name!r} of type {device_type!r} has unknown terminals {extra}"
            )
        for net_name in conns.values():
            self.add_net(net_name)
        inst = Instance(name, device_type, dict(conns), dict(params or {}))
        self._instances[name] = inst
        return inst

    def embed(
        self,
        child: "Circuit",
        prefix: str,
        port_map: dict[str, str],
    ) -> None:
        """Flatten *child* into this circuit.

        Child ports are connected per *port_map* (child port -> parent net);
        internal child nets and instance names are prefixed with
        ``prefix + "/"``.

        Raises
        ------
        NetlistError
            If *port_map* misses a child port or names a non-port net.
        """
        missing = [p for p in child.ports if p not in port_map]
        if missing:
            raise NetlistError(
                f"embedding {child.name!r}: unmapped ports {missing}"
            )
        unknown = [p for p in port_map if p not in child.ports]
        if unknown:
            raise NetlistError(
                f"embedding {child.name!r}: {unknown} are not ports"
            )

        def map_net(net_name: str) -> str:
            if net_name in port_map:
                return port_map[net_name]
            # Supply rails keep their global identity across hierarchy.
            if is_supply_name(net_name):
                return net_name
            return f"{prefix}/{net_name}"

        for net in child.nets():
            self.add_net(map_net(net.name))
        for inst in child.instances():
            self.add_instance(
                f"{prefix}/{inst.name}",
                inst.device_type,
                {t: map_net(n) for t, n in inst.conns.items()},
                dict(inst.params),
            )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def nets(self) -> Iterator[Net]:
        """Iterate nets in insertion order."""
        return iter(self._nets.values())

    def net(self, name: str) -> Net:
        try:
            return self._nets[name]
        except KeyError:
            raise NetlistError(f"no net {name!r} in circuit {self.name!r}") from None

    def has_net(self, name: str) -> bool:
        return name in self._nets

    def instances(self) -> Iterator[Instance]:
        """Iterate instances in insertion order."""
        return iter(self._instances.values())

    def instance(self, name: str) -> Instance:
        try:
            return self._instances[name]
        except KeyError:
            raise NetlistError(
                f"no instance {name!r} in circuit {self.name!r}"
            ) from None

    @property
    def num_nets(self) -> int:
        return len(self._nets)

    @property
    def num_instances(self) -> int:
        return len(self._instances)

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    def instances_on_net(self, net_name: str) -> list[tuple[Instance, str]]:
        """Return ``(instance, terminal)`` pairs attached to a net."""
        hits = []
        for inst in self._instances.values():
            for terminal, net in inst.conns.items():
                if net == net_name:
                    hits.append((inst, terminal))
        return hits

    def fanout(self, net_name: str) -> int:
        """Number of device terminals attached to a net (Table II feature N)."""
        return len(self.instances_on_net(net_name))

    def signal_nets(self) -> list[Net]:
        """Nets excluding supply/ground rails."""
        return [net for net in self._nets.values() if not net.is_supply]

    def device_counts(self) -> dict[str, int]:
        """Instance count per device type (zero-filled, Table IV shape)."""
        counts = {device_type: 0 for device_type in DEVICE_TYPES}
        for inst in self._instances.values():
            counts[inst.device_type] += 1
        return counts

    def stats_row(self) -> dict[str, int]:
        """One Table IV row: ``#net`` plus per-device-type counts."""
        row = {"net": len(self.signal_nets())}
        row.update(self.device_counts())
        return row

    def copy(self, name: str | None = None) -> "Circuit":
        """Deep-copy the circuit (fresh Net/Instance objects)."""
        dup = Circuit(name or self.name, self.ports)
        for net in self.nets():
            dup.add_net(net.name)
        for inst in self.instances():
            dup.add_instance(
                inst.name, inst.device_type, dict(inst.conns), dict(inst.params)
            )
        return dup

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, nets={self.num_nets}, "
            f"instances={self.num_instances})"
        )
