"""Primitive cell generators: inverters, gates, transmission gates.

Every generator returns a self-contained :class:`~repro.circuits.netlist.Circuit`
with signal ports; supply rails are the global nets ``vdd``/``vss`` which keep
their identity when the cell is embedded into a larger design.

Sizing arguments follow FinFET conventions: ``nfin`` (fins per finger),
``nf`` (fingers), ``length`` (gate length in metres), ``multi`` (copies).
"""

from __future__ import annotations

from repro.circuits import devices as dev
from repro.circuits.netlist import Circuit

#: Default thin-gate length for the synthetic sub-10nm process.
DEFAULT_L = 16e-9
#: Default thick-gate length.
DEFAULT_L_THICK = 150e-9


def _mos_params(
    polarity: float,
    nfin: float,
    nf: float = 1.0,
    length: float = DEFAULT_L,
    multi: float = 1.0,
) -> dict[str, float]:
    return {
        "TYPE": polarity,
        "NFIN": float(nfin),
        "NF": float(nf),
        "L": float(length),
        "MULTI": float(multi),
    }


def nmos(**kwargs) -> dict[str, float]:
    """Parameter dict for an NMOS (convenience for generator code)."""
    return _mos_params(dev.NMOS, **kwargs)


def pmos(**kwargs) -> dict[str, float]:
    """Parameter dict for a PMOS."""
    return _mos_params(dev.PMOS, **kwargs)


def inverter(
    nfin_n: float = 2,
    nfin_p: float = 4,
    nf: float = 1,
    length: float = DEFAULT_L,
    name: str = "inv",
) -> Circuit:
    """CMOS inverter.  Ports: ``a`` (input), ``y`` (output)."""
    c = Circuit(name, ports=["a", "y"])
    c.add_instance(
        "mp",
        dev.TRANSISTOR,
        {"drain": "y", "gate": "a", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, nfin_p, nf, length),
    )
    c.add_instance(
        "mn",
        dev.TRANSISTOR,
        {"drain": "y", "gate": "a", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_n, nf, length),
    )
    return c


def nand2(
    nfin_n: float = 4,
    nfin_p: float = 4,
    nf: float = 1,
    length: float = DEFAULT_L,
    name: str = "nand2",
) -> Circuit:
    """2-input NAND.  Ports: ``a``, ``b``, ``y``.

    The series NMOS stack creates a diffusion-sharing (MTS) pair, which the
    layout synthesizer turns into asymmetric source/drain areas — exactly the
    structure ParaGraph has to learn.
    """
    c = Circuit(name, ports=["a", "b", "y"])
    c.add_instance(
        "mpa", dev.TRANSISTOR,
        {"drain": "y", "gate": "a", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, nfin_p, nf, length),
    )
    c.add_instance(
        "mpb", dev.TRANSISTOR,
        {"drain": "y", "gate": "b", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, nfin_p, nf, length),
    )
    c.add_instance(
        "mna", dev.TRANSISTOR,
        {"drain": "y", "gate": "a", "source": "mid", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_n, nf, length),
    )
    c.add_instance(
        "mnb", dev.TRANSISTOR,
        {"drain": "mid", "gate": "b", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_n, nf, length),
    )
    return c


def nor2(
    nfin_n: float = 2,
    nfin_p: float = 8,
    nf: float = 1,
    length: float = DEFAULT_L,
    name: str = "nor2",
) -> Circuit:
    """2-input NOR.  Ports: ``a``, ``b``, ``y`` (series PMOS stack)."""
    c = Circuit(name, ports=["a", "b", "y"])
    c.add_instance(
        "mpa", dev.TRANSISTOR,
        {"drain": "mid", "gate": "a", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, nfin_p, nf, length),
    )
    c.add_instance(
        "mpb", dev.TRANSISTOR,
        {"drain": "y", "gate": "b", "source": "mid", "bulk": "vdd"},
        _mos_params(dev.PMOS, nfin_p, nf, length),
    )
    c.add_instance(
        "mna", dev.TRANSISTOR,
        {"drain": "y", "gate": "a", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_n, nf, length),
    )
    c.add_instance(
        "mnb", dev.TRANSISTOR,
        {"drain": "y", "gate": "b", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_n, nf, length),
    )
    return c


def transmission_gate(
    nfin: float = 2, nf: float = 1, length: float = DEFAULT_L, name: str = "tgate"
) -> Circuit:
    """CMOS transmission gate.  Ports: ``a``, ``b``, ``en``, ``enb``."""
    c = Circuit(name, ports=["a", "b", "en", "enb"])
    c.add_instance(
        "mn", dev.TRANSISTOR,
        {"drain": "a", "gate": "en", "source": "b", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin, nf, length),
    )
    c.add_instance(
        "mp", dev.TRANSISTOR,
        {"drain": "a", "gate": "enb", "source": "b", "bulk": "vdd"},
        _mos_params(dev.PMOS, nfin, nf, length),
    )
    return c


def buffer(
    nfin_first: float = 2,
    stage_ratio: float = 3.0,
    stages: int = 2,
    length: float = DEFAULT_L,
    name: str = "buf",
) -> Circuit:
    """Tapered buffer of *stages* inverters.  Ports: ``a``, ``y``."""
    if stages < 1:
        raise ValueError("buffer needs at least one stage")
    c = Circuit(name, ports=["a", "y"])
    node = "a"
    for i in range(stages):
        out = "y" if i == stages - 1 else f"n{i}"
        nfin = nfin_first * stage_ratio**i
        cell = inverter(nfin_n=round(nfin), nfin_p=round(2 * nfin), length=length)
        c.embed(cell, f"s{i}", {"a": node, "y": out})
        node = out
    return c


def latch_cell(
    nfin: float = 2, length: float = DEFAULT_L, name: str = "latch"
) -> Circuit:
    """Cross-coupled inverter pair (storage element).  Ports: ``q``, ``qb``."""
    c = Circuit(name, ports=["q", "qb"])
    c.embed(inverter(nfin, 2 * nfin, length=length), "fwd", {"a": "q", "y": "qb"})
    c.embed(inverter(nfin, 2 * nfin, length=length), "bwd", {"a": "qb", "y": "q"})
    return c
