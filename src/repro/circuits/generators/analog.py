"""Analog block generators: mirrors, pairs, op-amps, regulators, references.

These blocks provide the recurring analog structures the paper's Figure 1
motivates: the same op-amp topology reused in regulation and amplification
roles, current mirrors with many outputs, comparators, bandgaps.  All are
plain flat netlists with explicit device sizing.
"""

from __future__ import annotations

from repro.circuits import devices as dev
from repro.circuits.generators.primitives import (
    DEFAULT_L,
    DEFAULT_L_THICK,
    _mos_params,
    inverter,
)
from repro.circuits.netlist import Circuit


def current_mirror(
    n_outputs: int = 2,
    nfin: float = 4,
    nf: float = 2,
    ratios: list[float] | None = None,
    polarity: float = dev.NMOS,
    length: float = 4 * DEFAULT_L,
    name: str = "cmirror",
) -> Circuit:
    """N-output current mirror.  Ports: ``iin``, ``iout0..``.

    All gates share one net (high-fanout net for the CAP model); outputs can
    be ratioed via *ratios* (NFIN multipliers).
    """
    if n_outputs < 1:
        raise ValueError("current mirror needs at least one output")
    ratios = ratios or [1.0] * n_outputs
    if len(ratios) != n_outputs:
        raise ValueError("ratios length must equal n_outputs")
    rail = "vss" if polarity == dev.NMOS else "vdd"
    ports = ["iin"] + [f"iout{i}" for i in range(n_outputs)]
    c = Circuit(name, ports=ports)
    c.add_instance(
        "mdiode", dev.TRANSISTOR,
        {"drain": "iin", "gate": "iin", "source": rail, "bulk": rail},
        _mos_params(polarity, nfin, nf, length),
    )
    for i, ratio in enumerate(ratios):
        c.add_instance(
            f"mout{i}", dev.TRANSISTOR,
            {"drain": f"iout{i}", "gate": "iin", "source": rail, "bulk": rail},
            _mos_params(polarity, max(1, round(nfin * ratio)), nf, length),
        )
    return c


def diff_pair(
    nfin: float = 8,
    nf: float = 2,
    tail_nfin: float = 8,
    length: float = 2 * DEFAULT_L,
    name: str = "diffpair",
) -> Circuit:
    """NMOS differential pair with tail device.

    Ports: ``inp``, ``inn``, ``outp``, ``outn``, ``bias``.
    """
    c = Circuit(name, ports=["inp", "inn", "outp", "outn", "bias"])
    c.add_instance(
        "m1", dev.TRANSISTOR,
        {"drain": "outn", "gate": "inp", "source": "tail", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin, nf, length),
    )
    c.add_instance(
        "m2", dev.TRANSISTOR,
        {"drain": "outp", "gate": "inn", "source": "tail", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin, nf, length),
    )
    c.add_instance(
        "mtail", dev.TRANSISTOR,
        {"drain": "tail", "gate": "bias", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, tail_nfin, nf, 4 * DEFAULT_L),
    )
    return c


def ota_5t(
    nfin_in: float = 8,
    nfin_load: float = 4,
    nfin_tail: float = 8,
    nf: float = 2,
    name: str = "ota5t",
) -> Circuit:
    """Five-transistor OTA (Figure 1's op-amp).  Ports: ``inp``, ``inn``, ``out``, ``bias``."""
    c = Circuit(name, ports=["inp", "inn", "out", "bias"])
    c.add_instance(
        "min_p", dev.TRANSISTOR,
        {"drain": "x", "gate": "inp", "source": "tail", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_in, nf, 2 * DEFAULT_L),
    )
    c.add_instance(
        "min_n", dev.TRANSISTOR,
        {"drain": "out", "gate": "inn", "source": "tail", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_in, nf, 2 * DEFAULT_L),
    )
    c.add_instance(
        "mld_a", dev.TRANSISTOR,
        {"drain": "x", "gate": "x", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, nfin_load, nf, 2 * DEFAULT_L),
    )
    c.add_instance(
        "mld_b", dev.TRANSISTOR,
        {"drain": "out", "gate": "x", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, nfin_load, nf, 2 * DEFAULT_L),
    )
    c.add_instance(
        "mtail", dev.TRANSISTOR,
        {"drain": "tail", "gate": "bias", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_tail, nf, 4 * DEFAULT_L),
    )
    return c


def two_stage_opamp(
    nfin_in: float = 8,
    nfin_out: float = 16,
    nf: float = 2,
    comp_cap_multi: float = 4,
    name: str = "opamp2",
) -> Circuit:
    """Two-stage Miller-compensated op-amp.

    Ports: ``inp``, ``inn``, ``out``, ``bias``.  Includes the compensation
    capacitor and zero-nulling resistor (passive devices for the dataset).
    """
    c = Circuit(name, ports=["inp", "inn", "out", "bias"])
    c.embed(
        ota_5t(nfin_in=nfin_in, nfin_load=nfin_in // 2 or 1, nf=nf),
        "stg1",
        {"inp": "inp", "inn": "inn", "out": "s1out", "bias": "bias"},
    )
    c.add_instance(
        "mout_p", dev.TRANSISTOR,
        {"drain": "out", "gate": "s1out", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, nfin_out, nf, DEFAULT_L),
    )
    c.add_instance(
        "mout_n", dev.TRANSISTOR,
        {"drain": "out", "gate": "bias", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_out // 2 or 1, nf, 2 * DEFAULT_L),
    )
    c.add_instance(
        "rz", dev.RESISTOR, {"p": "s1out", "n": "cz"},
        {"L": 2e-6, "R": 2e3},
    )
    c.add_instance(
        "cc", dev.CAPACITOR, {"p": "cz", "n": "out"},
        {"MULTI": comp_cap_multi, "C": comp_cap_multi * 25e-15},
    )
    return c


def strongarm_comparator(
    nfin_in: float = 8, nfin_latch: float = 4, nf: float = 1, name: str = "comp"
) -> Circuit:
    """StrongARM latched comparator.

    Ports: ``inp``, ``inn``, ``clk``, ``outp``, ``outn``.
    """
    c = Circuit(name, ports=["inp", "inn", "clk", "outp", "outn"])
    c.add_instance(
        "mtail", dev.TRANSISTOR,
        {"drain": "tail", "gate": "clk", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_in, nf),
    )
    c.add_instance(
        "min_p", dev.TRANSISTOR,
        {"drain": "dn", "gate": "inp", "source": "tail", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_in, nf),
    )
    c.add_instance(
        "min_n", dev.TRANSISTOR,
        {"drain": "dp", "gate": "inn", "source": "tail", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_in, nf),
    )
    # cross-coupled latch
    c.add_instance(
        "mxn_p", dev.TRANSISTOR,
        {"drain": "outp", "gate": "outn", "source": "dp", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_latch, nf),
    )
    c.add_instance(
        "mxn_n", dev.TRANSISTOR,
        {"drain": "outn", "gate": "outp", "source": "dn", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_latch, nf),
    )
    c.add_instance(
        "mxp_p", dev.TRANSISTOR,
        {"drain": "outp", "gate": "outn", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, nfin_latch, nf),
    )
    c.add_instance(
        "mxp_n", dev.TRANSISTOR,
        {"drain": "outn", "gate": "outp", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, nfin_latch, nf),
    )
    # reset devices
    for node, inst in (("outp", "mrst_a"), ("outn", "mrst_b"), ("dp", "mrst_c"), ("dn", "mrst_d")):
        c.add_instance(
            inst, dev.TRANSISTOR,
            {"drain": node, "gate": "clk", "source": "vdd", "bulk": "vdd"},
            _mos_params(dev.PMOS, 2, 1),
        )
    return c


def bandgap_reference(n_ratio: int = 8, name: str = "bandgap") -> Circuit:
    """BJT-based bandgap reference with op-amp loop.

    Ports: ``vref``, ``bias``.  Exercises BJTs and resistors in the dataset.
    """
    c = Circuit(name, ports=["vref", "bias"])
    c.embed(
        ota_5t(nfin_in=4, nfin_load=2, nfin_tail=4),
        "amp",
        {"inp": "va", "inn": "vb", "out": "vctl", "bias": "bias"},
    )
    for i, node in enumerate(("va", "vb", "vref")):
        c.add_instance(
            f"mp{i}", dev.TRANSISTOR,
            {"drain": node, "gate": "vctl", "source": "vdd", "bulk": "vdd"},
            _mos_params(dev.PMOS, 4, 2, 4 * DEFAULT_L),
        )
    c.add_instance("q1", dev.BJT, {"c": "vss", "b": "vss", "e": "va"}, {"POLARITY": -1.0})
    for i in range(n_ratio):
        c.add_instance(
            f"q2_{i}", dev.BJT, {"c": "vss", "b": "vss", "e": "vbe2"}, {"POLARITY": -1.0}
        )
    c.add_instance("r1", dev.RESISTOR, {"p": "vb", "n": "vbe2"}, {"L": 5e-6, "R": 20e3})
    c.add_instance("r2", dev.RESISTOR, {"p": "vref", "n": "vtap"}, {"L": 8e-6, "R": 80e3})
    c.add_instance("r3", dev.RESISTOR, {"p": "vtap", "n": "vss"}, {"L": 8e-6, "R": 80e3})
    c.add_instance("q3", dev.BJT, {"c": "vss", "b": "vss", "e": "vtap"}, {"POLARITY": -1.0})
    return c


def ldo_regulator(
    pass_nfin: float = 64, nf: float = 4, load_cap_multi: float = 8, name: str = "ldo"
) -> Circuit:
    """LDO: error amplifier + thick-gate pass device + feedback divider.

    Ports: ``vref``, ``vreg``, ``bias``.  The wide pass device and its large
    gate net produce the biggest parasitics in the dataset, mirroring the
    paper's observation that large-cap nets are floorplan-dominated.
    """
    c = Circuit(name, ports=["vref", "vreg", "bias"])
    c.embed(
        ota_5t(nfin_in=6, nfin_load=3, nfin_tail=6),
        "err",
        {"inp": "vref", "inn": "fb", "out": "gdrv", "bias": "bias"},
    )
    c.add_instance(
        "mpass", dev.TRANSISTOR_THICKGATE,
        {"drain": "vreg", "gate": "gdrv", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, pass_nfin, nf, DEFAULT_L_THICK),
    )
    c.add_instance("rfb1", dev.RESISTOR, {"p": "vreg", "n": "fb"}, {"L": 10e-6, "R": 100e3})
    c.add_instance("rfb2", dev.RESISTOR, {"p": "fb", "n": "vss"}, {"L": 10e-6, "R": 100e3})
    c.add_instance(
        "cload", dev.CAPACITOR, {"p": "vreg", "n": "vss"},
        {"MULTI": load_cap_multi, "C": load_cap_multi * 100e-15},
    )
    return c


def rc_filter(stages: int = 2, name: str = "rcfilt") -> Circuit:
    """RC low-pass ladder.  Ports: ``in``, ``out``."""
    if stages < 1:
        raise ValueError("rc_filter needs at least one stage")
    c = Circuit(name, ports=["in", "out"])
    node = "in"
    for i in range(stages):
        out = "out" if i == stages - 1 else f"n{i}"
        c.add_instance(
            f"r{i}", dev.RESISTOR, {"p": node, "n": out}, {"L": 4e-6, "R": 10e3}
        )
        c.add_instance(
            f"c{i}", dev.CAPACITOR, {"p": out, "n": "vss"}, {"MULTI": 2, "C": 50e-15}
        )
        node = out
    return c


def source_follower(nfin: float = 8, nf: float = 2, name: str = "srcfol") -> Circuit:
    """NMOS source follower with current-source load.  Ports: ``in``, ``out``, ``bias``."""
    c = Circuit(name, ports=["in", "out", "bias"])
    c.add_instance(
        "mfol", dev.TRANSISTOR,
        {"drain": "vdd", "gate": "in", "source": "out", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin, nf, 2 * DEFAULT_L),
    )
    c.add_instance(
        "mload", dev.TRANSISTOR,
        {"drain": "out", "gate": "bias", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin // 2 or 1, nf, 4 * DEFAULT_L),
    )
    return c


def folded_cascode_ota(
    nfin_in: float = 8,
    nfin_cascode: float = 4,
    nf: float = 2,
    name: str = "foldedcas",
) -> Circuit:
    """Folded-cascode OTA (single-ended output).

    Ports: ``inp``, ``inn``, ``out``, ``bias``, ``biasc``.  Adds deep series
    stacks (cascodes) — rich MTS structure for the layout targets.
    """
    c = Circuit(name, ports=["inp", "inn", "out", "bias", "biasc"])
    # input pair
    c.add_instance(
        "min_p", dev.TRANSISTOR,
        {"drain": "fp", "gate": "inp", "source": "tail", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_in, nf, 2 * DEFAULT_L),
    )
    c.add_instance(
        "min_n", dev.TRANSISTOR,
        {"drain": "fn", "gate": "inn", "source": "tail", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_in, nf, 2 * DEFAULT_L),
    )
    c.add_instance(
        "mtail", dev.TRANSISTOR,
        {"drain": "tail", "gate": "bias", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_in, nf, 4 * DEFAULT_L),
    )
    # folding current sources + PMOS cascodes
    for node, suffix in (("fp", "a"), ("fn", "b")):
        c.add_instance(
            f"msrc_{suffix}", dev.TRANSISTOR,
            {"drain": node, "gate": "bias", "source": "vdd", "bulk": "vdd"},
            _mos_params(dev.PMOS, 2 * nfin_cascode, nf, 4 * DEFAULT_L),
        )
    out_x = {"a": "x", "b": "out"}
    for suffix, fold in (("a", "fp"), ("b", "fn")):
        c.add_instance(
            f"mcas_{suffix}", dev.TRANSISTOR,
            {"drain": out_x[suffix], "gate": "biasc", "source": fold, "bulk": "vdd"},
            _mos_params(dev.PMOS, nfin_cascode, nf, 2 * DEFAULT_L),
        )
    # NMOS cascode mirror load
    c.add_instance(
        "mld_casa", dev.TRANSISTOR,
        {"drain": "x", "gate": "biasc", "source": "la", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_cascode, nf, 2 * DEFAULT_L),
    )
    c.add_instance(
        "mld_casb", dev.TRANSISTOR,
        {"drain": "out", "gate": "biasc", "source": "lb", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_cascode, nf, 2 * DEFAULT_L),
    )
    c.add_instance(
        "mld_a", dev.TRANSISTOR,
        {"drain": "la", "gate": "x", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_cascode, nf, 2 * DEFAULT_L),
    )
    c.add_instance(
        "mld_b", dev.TRANSISTOR,
        {"drain": "lb", "gate": "x", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin_cascode, nf, 2 * DEFAULT_L),
    )
    return c


def current_starved_vco(
    stages: int = 5, nfin: float = 2, name: str = "vco"
) -> Circuit:
    """Current-starved ring VCO.  Ports: ``vctl``, ``out``.

    Raises
    ------
    ValueError
        If *stages* is even or < 3.
    """
    if stages < 3 or stages % 2 == 0:
        raise ValueError("VCO ring needs an odd stage count >= 3")
    c = Circuit(name, ports=["vctl", "out"])
    c.add_instance(
        "mbias_n", dev.TRANSISTOR,
        {"drain": "nbias", "gate": "vctl", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, 2 * nfin, 1, 4 * DEFAULT_L),
    )
    c.add_instance(
        "mbias_p", dev.TRANSISTOR,
        {"drain": "nbias", "gate": "nbias", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, 2 * nfin, 1, 4 * DEFAULT_L),
    )
    node = "ring0"
    for i in range(stages):
        nxt = "ring0" if i == stages - 1 else f"ring{i + 1}"
        c.add_instance(
            f"mst_p{i}", dev.TRANSISTOR,
            {"drain": f"sp{i}", "gate": "nbias", "source": "vdd", "bulk": "vdd"},
            _mos_params(dev.PMOS, nfin, 1, 2 * DEFAULT_L),
        )
        c.add_instance(
            f"minv_p{i}", dev.TRANSISTOR,
            {"drain": nxt, "gate": node, "source": f"sp{i}", "bulk": "vdd"},
            _mos_params(dev.PMOS, 2 * nfin, 1),
        )
        c.add_instance(
            f"minv_n{i}", dev.TRANSISTOR,
            {"drain": nxt, "gate": node, "source": f"sn{i}", "bulk": "vss"},
            _mos_params(dev.NMOS, nfin, 1),
        )
        c.add_instance(
            f"mst_n{i}", dev.TRANSISTOR,
            {"drain": f"sn{i}", "gate": "vctl", "source": "vss", "bulk": "vss"},
            _mos_params(dev.NMOS, nfin, 1, 2 * DEFAULT_L),
        )
        node = nxt
    c.embed(inverter(nfin, 2 * nfin), "obuf", {"a": "ring0", "y": "out"})
    return c


def bias_network(n_branches: int = 3, name: str = "biasnet") -> Circuit:
    """Beta-multiplier style bias generator with mirrored branches.

    Ports: ``bias0..biasN-1``.
    """
    ports = [f"bias{i}" for i in range(n_branches)]
    c = Circuit(name, ports=ports)
    c.add_instance(
        "mref_p", dev.TRANSISTOR,
        {"drain": "nref", "gate": "pref", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, 4, 2, 4 * DEFAULT_L),
    )
    c.add_instance(
        "mref_n", dev.TRANSISTOR,
        {"drain": "nref", "gate": "nref", "source": "rsrc", "bulk": "vss"},
        _mos_params(dev.NMOS, 8, 2, 4 * DEFAULT_L),
    )
    c.add_instance("rsrc", dev.RESISTOR, {"p": "rsrc", "n": "vss"}, {"L": 6e-6, "R": 50e3})
    c.add_instance(
        "mmir_p", dev.TRANSISTOR,
        {"drain": "pref", "gate": "pref", "source": "vdd", "bulk": "vdd"},
        _mos_params(dev.PMOS, 4, 2, 4 * DEFAULT_L),
    )
    c.add_instance(
        "mmir_n", dev.TRANSISTOR,
        {"drain": "pref", "gate": "nref", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, 8, 2, 4 * DEFAULT_L),
    )
    for i in range(n_branches):
        c.add_instance(
            f"mbr{i}", dev.TRANSISTOR,
            {"drain": f"bias{i}", "gate": "nref", "source": "vss", "bulk": "vss"},
            _mos_params(dev.NMOS, 4 + 2 * i, 2, 4 * DEFAULT_L),
        )
        c.add_instance(
            f"mdio{i}", dev.TRANSISTOR,
            {"drain": f"bias{i}", "gate": f"bias{i}", "source": "vdd", "bulk": "vdd"},
            _mos_params(dev.PMOS, 4, 2, 4 * DEFAULT_L),
        )
    return c
