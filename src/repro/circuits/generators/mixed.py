"""Mixed-signal and IO block generators: level shifters, IO cells, DACs.

These blocks exercise the thick-gate transistor population (paper Table IV's
``tran_th`` column) and diodes.
"""

from __future__ import annotations

from repro.circuits import devices as dev
from repro.circuits.generators.primitives import DEFAULT_L_THICK, _mos_params, inverter
from repro.circuits.generators.analog import strongarm_comparator
from repro.circuits.netlist import Circuit


def level_shifter(nfin: float = 4, name: str = "lvlshift") -> Circuit:
    """Cross-coupled thin-to-thick-gate level shifter.  Ports: ``in``, ``out``."""
    c = Circuit(name, ports=["in", "out"])
    c.embed(inverter(nfin_n=2, nfin_p=4), "invin", {"a": "in", "y": "inb"})
    c.add_instance(
        "mxp_a", dev.TRANSISTOR_THICKGATE,
        {"drain": "xa", "gate": "out", "source": "vddio", "bulk": "vddio"},
        _mos_params(dev.PMOS, nfin, 1, DEFAULT_L_THICK),
    )
    c.add_instance(
        "mxp_b", dev.TRANSISTOR_THICKGATE,
        {"drain": "out", "gate": "xa", "source": "vddio", "bulk": "vddio"},
        _mos_params(dev.PMOS, nfin, 1, DEFAULT_L_THICK),
    )
    c.add_instance(
        "mxn_a", dev.TRANSISTOR_THICKGATE,
        {"drain": "xa", "gate": "in", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, 2 * nfin, 1, DEFAULT_L_THICK),
    )
    c.add_instance(
        "mxn_b", dev.TRANSISTOR_THICKGATE,
        {"drain": "out", "gate": "inb", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, 2 * nfin, 1, DEFAULT_L_THICK),
    )
    return c


def io_driver(drive_nfin: float = 32, nf: float = 4, name: str = "iodrv") -> Circuit:
    """Thick-gate pad driver with predriver and ESD diodes.

    Ports: ``d``, ``pad``, ``en``.
    """
    c = Circuit(name, ports=["d", "pad", "en"])
    c.embed(level_shifter(), "ls", {"in": "d", "out": "dhv"})
    c.embed(level_shifter(), "lsen", {"in": "en", "out": "enhv"})
    # predriver NAND/NOR in the thick-gate domain
    c.add_instance(
        "mpre_p", dev.TRANSISTOR_THICKGATE,
        {"drain": "gp", "gate": "dhv", "source": "vddio", "bulk": "vddio"},
        _mos_params(dev.PMOS, 8, 2, DEFAULT_L_THICK),
    )
    c.add_instance(
        "mpre_n", dev.TRANSISTOR_THICKGATE,
        {"drain": "gp", "gate": "enhv", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, 8, 2, DEFAULT_L_THICK),
    )
    c.add_instance(
        "mpre2_p", dev.TRANSISTOR_THICKGATE,
        {"drain": "gn", "gate": "enhv", "source": "vddio", "bulk": "vddio"},
        _mos_params(dev.PMOS, 8, 2, DEFAULT_L_THICK),
    )
    c.add_instance(
        "mpre2_n", dev.TRANSISTOR_THICKGATE,
        {"drain": "gn", "gate": "dhv", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, 8, 2, DEFAULT_L_THICK),
    )
    # output stage
    c.add_instance(
        "mdrv_p", dev.TRANSISTOR_THICKGATE,
        {"drain": "pad", "gate": "gp", "source": "vddio", "bulk": "vddio"},
        _mos_params(dev.PMOS, drive_nfin, nf, DEFAULT_L_THICK),
    )
    c.add_instance(
        "mdrv_n", dev.TRANSISTOR_THICKGATE,
        {"drain": "pad", "gate": "gn", "source": "vss", "bulk": "vss"},
        _mos_params(dev.NMOS, drive_nfin, nf, DEFAULT_L_THICK),
    )
    # ESD protection diodes and pad structure capacitance
    c.add_instance("desd_hi", dev.DIODE, {"p": "pad", "n": "vddio"}, {"NF": 8})
    c.add_instance("desd_lo", dev.DIODE, {"p": "vss", "n": "pad"}, {"NF": 8})
    c.add_instance(
        "cpad", dev.CAPACITOR, {"p": "pad", "n": "vss"}, {"MULTI": 4, "C": 600e-15}
    )
    return c


def r2r_dac(bits: int = 4, name: str = "r2rdac") -> Circuit:
    """R-2R ladder DAC with transmission-gate-free switch inverters.

    Ports: ``b0..``, ``out``.
    """
    if bits < 1:
        raise ValueError("r2r_dac needs at least 1 bit")
    ports = [f"b{i}" for i in range(bits)] + ["out"]
    c = Circuit(name, ports=ports)
    node = "out"
    for i in reversed(range(bits)):
        c.embed(inverter(nfin_n=4, nfin_p=8), f"sw{i}", {"a": f"b{i}", "y": f"d{i}"})
        c.add_instance(
            f"r2_{i}", dev.RESISTOR, {"p": f"d{i}", "n": node}, {"L": 4e-6, "R": 20e3}
        )
        if i > 0:
            nxt = f"lad{i}"
            c.add_instance(
                f"r1_{i}", dev.RESISTOR, {"p": node, "n": nxt}, {"L": 2e-6, "R": 10e3}
            )
            node = nxt
        else:
            c.add_instance(
                "rterm", dev.RESISTOR, {"p": node, "n": "vss"}, {"L": 4e-6, "R": 20e3}
            )
    return c


def charge_pump(stages: int = 3, name: str = "chpump") -> Circuit:
    """Dickson charge pump: diode-connected thick-gate devices + flying caps.

    Ports: ``clk``, ``clkb``, ``vout``.
    """
    if stages < 1:
        raise ValueError("charge_pump needs at least one stage")
    c = Circuit(name, ports=["clk", "clkb", "vout"])
    node = "vdd"
    for i in range(stages):
        out = "vout" if i == stages - 1 else f"p{i}"
        c.add_instance(
            f"mdio{i}", dev.TRANSISTOR_THICKGATE,
            {"drain": out, "gate": node, "source": node, "bulk": "vss"},
            _mos_params(dev.NMOS, 8, 2, DEFAULT_L_THICK),
        )
        phase = "clk" if i % 2 == 0 else "clkb"
        c.add_instance(
            f"cfly{i}", dev.CAPACITOR, {"p": out, "n": phase}, {"MULTI": 4, "C": 200e-15}
        )
        node = out
    c.add_instance("cout", dev.CAPACITOR, {"p": "vout", "n": "vss"}, {"MULTI": 8, "C": 400e-15})
    return c


def flash_adc_slice(bits: int = 2, name: str = "flashadc") -> Circuit:
    """Tiny flash-ADC slice: resistor ladder + comparator bank.

    Ports: ``vin``, ``clk``, ``code0..``.
    """
    n_comp = 2**bits - 1
    ports = ["vin", "clk"] + [f"code{i}" for i in range(n_comp)]
    c = Circuit(name, ports=ports)
    node = "vdd"
    for i in range(n_comp + 1):
        out = "vss" if i == n_comp else f"ref{i}"
        c.add_instance(
            f"rl{i}", dev.RESISTOR, {"p": node, "n": out}, {"L": 3e-6, "R": 5e3}
        )
        node = out
    for i in range(n_comp):
        c.embed(
            strongarm_comparator(),
            f"cmp{i}",
            {
                "inp": "vin",
                "inn": f"ref{i}",
                "clk": "clk",
                "outp": f"code{i}",
                "outn": f"codeb{i}",
            },
        )
    return c
