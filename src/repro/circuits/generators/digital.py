"""Digital block generators: chains, oscillators, arrays, trees.

These create the large transistor-count circuits of the dataset (the paper's
t4/t5/t10-style rows are dominated by digital content).
"""

from __future__ import annotations

from repro.circuits import devices as dev
from repro.circuits.generators.primitives import (
    DEFAULT_L,
    _mos_params,
    inverter,
    latch_cell,
    nand2,
    nor2,
    transmission_gate,
)
from repro.circuits.netlist import Circuit


def inverter_chain(
    stages: int = 8,
    nfin_n: float = 2,
    nfin_p: float = 4,
    taper: float = 1.0,
    name: str = "invchain",
) -> Circuit:
    """Chain of inverters, optionally tapered.  Ports: ``in``, ``out``."""
    if stages < 1:
        raise ValueError("inverter_chain needs at least one stage")
    c = Circuit(name, ports=["in", "out"])
    node = "in"
    for i in range(stages):
        out = "out" if i == stages - 1 else f"n{i}"
        scale = taper**i
        cell = inverter(
            nfin_n=max(1, round(nfin_n * scale)),
            nfin_p=max(1, round(nfin_p * scale)),
        )
        c.embed(cell, f"i{i}", {"a": node, "y": out})
        node = out
    return c


def ring_oscillator(
    stages: int = 5, nfin_n: float = 2, nfin_p: float = 4, name: str = "ringosc"
) -> Circuit:
    """Odd-stage ring oscillator with an enable NAND.  Ports: ``en``, ``out``.

    Raises
    ------
    ValueError
        If *stages* is even (the ring would latch up).
    """
    if stages < 3 or stages % 2 == 0:
        raise ValueError("ring oscillator needs an odd stage count >= 3")
    c = Circuit(name, ports=["en", "out"])
    c.embed(nand2(nfin_n=2 * nfin_n, nfin_p=nfin_p), "g0", {"a": "en", "b": "fb", "y": "n0"})
    node = "n0"
    for i in range(1, stages):
        out = "fb" if i == stages - 1 else f"n{i}"
        c.embed(inverter(nfin_n, nfin_p), f"g{i}", {"a": node, "y": out})
        node = out
    c.embed(inverter(nfin_n, nfin_p), "gout", {"a": "fb", "y": "out"})
    return c


def sram_cell(nfin: float = 1, name: str = "sram6t") -> Circuit:
    """6T SRAM bit cell.  Ports: ``bl``, ``blb``, ``wl``."""
    c = Circuit(name, ports=["bl", "blb", "wl"])
    c.embed(latch_cell(nfin=nfin), "core", {"q": "q", "qb": "qb"})
    c.add_instance(
        "mpass_a", dev.TRANSISTOR,
        {"drain": "bl", "gate": "wl", "source": "q", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin, 1, DEFAULT_L),
    )
    c.add_instance(
        "mpass_b", dev.TRANSISTOR,
        {"drain": "blb", "gate": "wl", "source": "qb", "bulk": "vss"},
        _mos_params(dev.NMOS, nfin, 1, DEFAULT_L),
    )
    return c


def sram_array(rows: int = 4, cols: int = 4, name: str = "sramarr") -> Circuit:
    """rows x cols SRAM array with shared word/bit lines.

    Ports: ``wl0..``, ``bl0..``, ``blb0..``.  Bit lines are the high-fanout
    nets whose capacitance scales with *rows* — a structure/target correlation
    the CAP model should learn.
    """
    ports = (
        [f"wl{r}" for r in range(rows)]
        + [f"bl{k}" for k in range(cols)]
        + [f"blb{k}" for k in range(cols)]
    )
    c = Circuit(name, ports=ports)
    for r in range(rows):
        for k in range(cols):
            c.embed(
                sram_cell(),
                f"bit_{r}_{k}",
                {"bl": f"bl{k}", "blb": f"blb{k}", "wl": f"wl{r}"},
            )
    return c


def nand_tree(depth: int = 3, name: str = "nandtree") -> Circuit:
    """Balanced binary NAND reduction tree with 2**depth inputs.

    Ports: ``in0..``, ``out``.
    """
    if depth < 1:
        raise ValueError("nand_tree needs depth >= 1")
    n_inputs = 2**depth
    ports = [f"in{i}" for i in range(n_inputs)] + ["out"]
    c = Circuit(name, ports=ports)
    level = [f"in{i}" for i in range(n_inputs)]
    for d in range(depth):
        next_level = []
        for j in range(0, len(level), 2):
            out = "out" if d == depth - 1 and j == 0 else f"t{d}_{j // 2}"
            gate = nand2() if d % 2 == 0 else nor2()
            c.embed(gate, f"g{d}_{j // 2}", {"a": level[j], "b": level[j + 1], "y": out})
            next_level.append(out)
        level = next_level
    return c


def mux_tree(depth: int = 2, name: str = "muxtree") -> Circuit:
    """Transmission-gate mux tree selecting one of 2**depth inputs.

    Ports: ``in0..``, ``sel0..``, ``selb0..``, ``out``.
    """
    if depth < 1:
        raise ValueError("mux_tree needs depth >= 1")
    n_inputs = 2**depth
    ports = (
        [f"in{i}" for i in range(n_inputs)]
        + [f"sel{d}" for d in range(depth)]
        + [f"selb{d}" for d in range(depth)]
        + ["out"]
    )
    c = Circuit(name, ports=ports)
    level = [f"in{i}" for i in range(n_inputs)]
    for d in range(depth):
        next_level = []
        for j in range(0, len(level), 2):
            out = "out" if d == depth - 1 else f"m{d}_{j // 2}"
            c.embed(
                transmission_gate(),
                f"tg{d}_{j}a",
                {"a": level[j], "b": out, "en": f"selb{d}", "enb": f"sel{d}"},
            )
            c.embed(
                transmission_gate(),
                f"tg{d}_{j}b",
                {"a": level[j + 1], "b": out, "en": f"sel{d}", "enb": f"selb{d}"},
            )
            next_level.append(out)
        level = next_level
    return c


def delay_line(
    taps: int = 4, stage_pairs: int = 2, name: str = "delayline"
) -> Circuit:
    """Inverter delay line with tapped outputs.

    Ports: ``in``, ``tap0..tapN-1``.  Each tap sits *stage_pairs* inverter
    pairs after the previous one.
    """
    if taps < 1 or stage_pairs < 1:
        raise ValueError("delay_line needs taps >= 1 and stage_pairs >= 1")
    ports = ["in"] + [f"tap{i}" for i in range(taps)]
    c = Circuit(name, ports=ports)
    node = "in"
    index = 0
    for tap in range(taps):
        for pair in range(stage_pairs):
            mid = f"d{index}"
            out = f"tap{tap}" if pair == stage_pairs - 1 else f"d{index + 1}"
            c.embed(inverter(), f"ia{index}", {"a": node, "y": mid})
            c.embed(inverter(), f"ib{index}", {"a": mid, "y": out})
            node = out
            index += 2
    return c


def shift_register(bits: int = 4, name: str = "shiftreg") -> Circuit:
    """Transmission-gate master-slave shift register.

    Ports: ``d``, ``clk``, ``clkb``, ``q0..qN-1``.
    """
    if bits < 1:
        raise ValueError("shift_register needs at least one bit")
    ports = ["d", "clk", "clkb"] + [f"q{i}" for i in range(bits)]
    c = Circuit(name, ports=ports)
    node = "d"
    for i in range(bits):
        master = f"m{i}"
        slave = f"q{i}"
        c.embed(
            transmission_gate(),
            f"tgm{i}",
            {"a": node, "b": f"mi{i}", "en": "clk", "enb": "clkb"},
        )
        c.embed(inverter(), f"invm{i}", {"a": f"mi{i}", "y": master})
        c.embed(
            transmission_gate(),
            f"tgs{i}",
            {"a": master, "b": f"si{i}", "en": "clkb", "enb": "clk"},
        )
        c.embed(inverter(), f"invs{i}", {"a": f"si{i}", "y": slave})
        node = slave
    return c


def clock_tree(fanout: int = 2, depth: int = 2, name: str = "clktree") -> Circuit:
    """Buffered clock distribution tree.  Ports: ``clk``, ``leaf0..``.

    Each level multiplies the branch count by *fanout*; leaves are ports so a
    parent circuit can hang loads on them.
    """
    if fanout < 1 or depth < 1:
        raise ValueError("clock_tree needs fanout >= 1 and depth >= 1")
    n_leaves = fanout**depth
    ports = ["clk"] + [f"leaf{i}" for i in range(n_leaves)]
    c = Circuit(name, ports=ports)
    level = ["clk"]
    for d in range(depth):
        next_level = []
        for parent_idx, parent in enumerate(level):
            for f in range(fanout):
                idx = parent_idx * fanout + f
                is_leaf = d == depth - 1
                out = f"leaf{idx}" if is_leaf else f"b{d}_{idx}"
                cell = inverter(nfin_n=2 * (depth - d), nfin_p=4 * (depth - d))
                c.embed(cell, f"buf{d}_{idx}", {"a": parent, "y": out})
                next_level.append(out)
        level = next_level
    return c
