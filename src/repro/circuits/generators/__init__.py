"""Parametric schematic generators and the dataset composer."""

from repro.circuits.generators import analog, chip, digital, mixed, primitives
from repro.circuits.generators.chip import (
    BLOCK_FAMILIES,
    TEST_RECIPES,
    TRAIN_RECIPES,
    ChipRecipe,
    build_dataset,
    compose_chip,
    table4_rows,
)

__all__ = [
    "analog",
    "chip",
    "digital",
    "mixed",
    "primitives",
    "BLOCK_FAMILIES",
    "TEST_RECIPES",
    "TRAIN_RECIPES",
    "ChipRecipe",
    "build_dataset",
    "compose_chip",
    "table4_rows",
]
