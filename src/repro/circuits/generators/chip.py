"""Dataset composer: assembles Table IV-shaped circuits from generator blocks.

The paper trains on 18 industrial circuits (t1-t18) and tests on 4 (e1-e4),
with the device/net distribution of Table IV.  This module builds an analogous
dataset from the block generators, scaled down so that pure-Python training is
practical, while preserving the qualitative row shapes:

* tiny analog-only rows (t1),
* thick-gate-dominated rows with passives (t2, t3, t11, t17),
* large digital rows (t4, t5, t10, t13, t16),
* thick-gate-only rows (t8, t9),
* BJT-carrying rows (t7, t11, t15, t17).

Test circuits (e1-e4) draw from a *disjoint* parameterization ("variant B")
of the block families — mirroring the paper's designer-recommended split in
which test circuits are "completely different than those in the training set".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.circuits import devices as dev
from repro.circuits.generators import analog, digital, mixed
from repro.circuits.generators.primitives import DEFAULT_L_THICK, _mos_params
from repro.circuits.netlist import Circuit
from repro.rng import SeedSequenceNamer

BlockFactory = Callable[[np.random.Generator, bool], Circuit]


def _thick_inverter_chain(rng: np.random.Generator, test_variant: bool) -> Circuit:
    """Chain of thick-gate inverters (t8/t9-style content)."""
    stages = int(rng.integers(3, 7)) if not test_variant else int(rng.integers(7, 11))
    c = Circuit("thickchain", ports=["in", "out"])
    node = "in"
    for i in range(stages):
        out = "out" if i == stages - 1 else f"n{i}"
        nfin = int(rng.integers(2, 8))
        c.add_instance(
            f"mp{i}", dev.TRANSISTOR_THICKGATE,
            {"drain": out, "gate": node, "source": "vddio", "bulk": "vddio"},
            _mos_params(dev.PMOS, 2 * nfin, 1, DEFAULT_L_THICK),
        )
        c.add_instance(
            f"mn{i}", dev.TRANSISTOR_THICKGATE,
            {"drain": out, "gate": node, "source": "vss", "bulk": "vss"},
            _mos_params(dev.NMOS, nfin, 1, DEFAULT_L_THICK),
        )
        node = out
    return c


def _opamp(rng: np.random.Generator, test_variant: bool) -> Circuit:
    if test_variant:
        return analog.two_stage_opamp(
            nfin_in=int(rng.integers(10, 16)),
            nfin_out=int(rng.integers(20, 32)),
            nf=int(rng.integers(1, 3)),
            comp_cap_multi=int(rng.integers(2, 5)),
        )
    return analog.two_stage_opamp(
        nfin_in=int(rng.integers(4, 10)),
        nfin_out=int(rng.integers(8, 20)),
        nf=int(rng.integers(1, 4)),
        comp_cap_multi=int(rng.integers(2, 8)),
    )


def _ota(rng: np.random.Generator, test_variant: bool) -> Circuit:
    lo, hi = (10, 18) if test_variant else (3, 10)
    return analog.ota_5t(
        nfin_in=int(rng.integers(lo, hi)),
        nfin_load=int(rng.integers(2, 8)),
        nfin_tail=int(rng.integers(lo, hi)),
        nf=int(rng.integers(1, 4)),
    )


def _mirror(rng: np.random.Generator, test_variant: bool) -> Circuit:
    n_out = int(rng.integers(4, 8)) if test_variant else int(rng.integers(1, 5))
    return analog.current_mirror(
        n_outputs=n_out,
        nfin=int(rng.integers(2, 10)),
        nf=int(rng.integers(1, 4)),
        polarity=dev.NMOS if rng.random() < 0.5 else dev.PMOS,
    )


def _diffpair(rng: np.random.Generator, test_variant: bool) -> Circuit:
    lo, hi = (10, 20) if test_variant else (4, 12)
    return analog.diff_pair(nfin=int(rng.integers(lo, hi)), nf=int(rng.integers(1, 4)))


def _comparator(rng: np.random.Generator, test_variant: bool) -> Circuit:
    lo, hi = (10, 16) if test_variant else (4, 10)
    return analog.strongarm_comparator(
        nfin_in=int(rng.integers(lo, hi)), nfin_latch=int(rng.integers(2, 8))
    )


def _biasnet(rng: np.random.Generator, test_variant: bool) -> Circuit:
    branches = int(rng.integers(4, 7)) if test_variant else int(rng.integers(2, 5))
    return analog.bias_network(n_branches=branches)


def _ldo(rng: np.random.Generator, test_variant: bool) -> Circuit:
    lo, hi = (80, 128) if test_variant else (32, 80)
    return analog.ldo_regulator(
        pass_nfin=int(rng.integers(lo, hi)),
        nf=int(rng.integers(2, 6)),
        load_cap_multi=int(rng.integers(4, 12)),
    )


def _bandgap(rng: np.random.Generator, test_variant: bool) -> Circuit:
    return analog.bandgap_reference(n_ratio=int(rng.integers(4, 12)))


def _rcfilter(rng: np.random.Generator, test_variant: bool) -> Circuit:
    stages = int(rng.integers(3, 6)) if test_variant else int(rng.integers(1, 4))
    return analog.rc_filter(stages=stages)


def _srcfol(rng: np.random.Generator, test_variant: bool) -> Circuit:
    return analog.source_follower(nfin=int(rng.integers(4, 16)), nf=int(rng.integers(1, 4)))


def _invchain(rng: np.random.Generator, test_variant: bool) -> Circuit:
    if test_variant:
        return digital.inverter_chain(
            stages=int(rng.integers(10, 16)),
            nfin_n=int(rng.integers(1, 3)),
            nfin_p=int(rng.integers(2, 6)),
            taper=float(rng.choice([1.0, 1.3])),
        )
    return digital.inverter_chain(
        stages=int(rng.integers(3, 10)),
        nfin_n=int(rng.integers(1, 4)),
        nfin_p=int(rng.integers(2, 8)),
        taper=float(rng.choice([1.0, 1.5, 2.0])),
    )


def _ringosc(rng: np.random.Generator, test_variant: bool) -> Circuit:
    stages = int(rng.choice([9, 11, 13])) if test_variant else int(rng.choice([3, 5, 7]))
    return digital.ring_oscillator(stages=stages)


def _sram(rng: np.random.Generator, test_variant: bool) -> Circuit:
    if test_variant:
        return digital.sram_array(rows=int(rng.integers(5, 8)), cols=int(rng.integers(2, 4)))
    return digital.sram_array(rows=int(rng.integers(2, 5)), cols=int(rng.integers(2, 5)))


def _nandtree(rng: np.random.Generator, test_variant: bool) -> Circuit:
    depth = int(rng.integers(3, 5)) if test_variant else int(rng.integers(1, 4))
    return digital.nand_tree(depth=depth)


def _muxtree(rng: np.random.Generator, test_variant: bool) -> Circuit:
    return digital.mux_tree(depth=int(rng.integers(1, 4)))


def _clktree(rng: np.random.Generator, test_variant: bool) -> Circuit:
    if test_variant:
        return digital.clock_tree(fanout=3, depth=2)
    return digital.clock_tree(fanout=2, depth=int(rng.integers(1, 4)))


def _lvlshift(rng: np.random.Generator, test_variant: bool) -> Circuit:
    lo, hi = (6, 12) if test_variant else (2, 7)
    return mixed.level_shifter(nfin=int(rng.integers(lo, hi)))


def _iodrv(rng: np.random.Generator, test_variant: bool) -> Circuit:
    lo, hi = (40, 64) if test_variant else (16, 40)
    return mixed.io_driver(drive_nfin=int(rng.integers(lo, hi)), nf=int(rng.integers(2, 6)))


def _dac(rng: np.random.Generator, test_variant: bool) -> Circuit:
    return mixed.r2r_dac(bits=int(rng.integers(2, 6)))


def _chpump(rng: np.random.Generator, test_variant: bool) -> Circuit:
    return mixed.charge_pump(stages=int(rng.integers(2, 5)))


def _flashadc(rng: np.random.Generator, test_variant: bool) -> Circuit:
    return mixed.flash_adc_slice(bits=2)


#: Family name -> factory.  ``test_variant=True`` draws from disjoint ranges.
BLOCK_FAMILIES: dict[str, BlockFactory] = {
    "opamp": _opamp,
    "ota": _ota,
    "mirror": _mirror,
    "diffpair": _diffpair,
    "comparator": _comparator,
    "biasnet": _biasnet,
    "ldo": _ldo,
    "bandgap": _bandgap,
    "rcfilter": _rcfilter,
    "srcfol": _srcfol,
    "invchain": _invchain,
    "ringosc": _ringosc,
    "sram": _sram,
    "nandtree": _nandtree,
    "muxtree": _muxtree,
    "clktree": _clktree,
    "lvlshift": _lvlshift,
    "iodrv": _iodrv,
    "dac": _dac,
    "chpump": _chpump,
    "flashadc": _flashadc,
    "thickchain": _thick_inverter_chain,
}

#: Family groups used by recipes.
ANALOG = ("opamp", "ota", "mirror", "diffpair", "comparator", "biasnet", "srcfol")
DIGITAL = ("invchain", "ringosc", "sram", "nandtree", "clktree")
DIGITAL_TEST = ("invchain", "ringosc", "nandtree", "muxtree", "sram")
THICK = ("lvlshift", "iodrv", "chpump", "thickchain")
PASSIVE = ("rcfilter", "dac")


@dataclass(frozen=True)
class ChipRecipe:
    """Recipe for one dataset circuit.

    Attributes
    ----------
    name:
        Circuit name (paper row id: ``t1`` ... ``e4``).
    blocks:
        ``(family, count)`` pairs; counts are multiplied by the dataset scale
        and rounded up (so every family stays represented at small scales).
    test_variant:
        Draw block parameters from the held-out variant ranges.
    """

    name: str
    blocks: tuple[tuple[str, int], ...]
    test_variant: bool = False


def _recipe(name: str, test_variant: bool = False, **families: int) -> ChipRecipe:
    return ChipRecipe(name, tuple(families.items()), test_variant)


#: Training recipes t1-t18 and test recipes e1-e4, shaped after Table IV.
TRAIN_RECIPES: tuple[ChipRecipe, ...] = (
    _recipe("t1", ota=2, diffpair=1, mirror=1),                      # tiny analog
    _recipe("t2", thickchain=4, lvlshift=3, rcfilter=2, invchain=2, chpump=1),
    _recipe("t3", iodrv=3, thickchain=4, rcfilter=3, dac=1, invchain=2),
    _recipe("t4", invchain=10, sram=4, nandtree=4, clktree=3, iodrv=3,
            opamp=2, rcfilter=2),                                     # largest mixed
    _recipe("t5", invchain=8, sram=3, nandtree=3, lvlshift=2, rcfilter=1, opamp=1),
    _recipe("t6", invchain=8, nandtree=3, clktree=2, lvlshift=2, rcfilter=1),
    _recipe("t7", invchain=5, nandtree=2, bandgap=2, lvlshift=1, rcfilter=1),
    _recipe("t8", thickchain=5, rcfilter=1),                          # thick-gate only
    _recipe("t9", thickchain=5, chpump=1),
    _recipe("t10", invchain=8, sram=3, nandtree=3),                   # pure digital
    _recipe("t11", iodrv=4, thickchain=4, bandgap=2, rcfilter=1, ota=1),
    _recipe("t12", invchain=4, ringosc=2),
    _recipe("t13", invchain=7, nandtree=3, clktree=2, ringosc=1),
    _recipe("t14", lvlshift=2, dac=1, chpump=1),                      # small thick+passives
    _recipe("t15", invchain=5, iodrv=3, thickchain=3, bandgap=2, opamp=2, sram=1),
    _recipe("t16", invchain=5, nandtree=2, sram=2),
    _recipe("t17", thickchain=4, iodrv=3, bandgap=3, rcfilter=2, ota=1),
    _recipe("t18", invchain=5, nandtree=2, dac=1, flashadc=1, ldo=1),
)

TEST_RECIPES: tuple[ChipRecipe, ...] = (
    _recipe("e1", test_variant=True, invchain=6, nandtree=3, muxtree=2, ringosc=1),
    _recipe("e2", test_variant=True, lvlshift=2, iodrv=1, dac=1),
    _recipe("e3", test_variant=True, invchain=4, muxtree=2, sram=1),
    _recipe("e4", test_variant=True, invchain=4, sram=2, nandtree=2),
)


@dataclass
class ComposedChip:
    """A built dataset circuit plus its provenance."""

    circuit: Circuit
    recipe: ChipRecipe
    block_names: list[str] = field(default_factory=list)


def compose_chip(
    recipe: ChipRecipe,
    seed: int = 0,
    scale: float = 1.0,
    share_probability: float = 0.3,
) -> ComposedChip:
    """Build one circuit from a recipe.

    Blocks are instantiated with randomized parameters and wired together:
    each block port connects to a shared interconnect net with probability
    *share_probability* (creating realistic cross-block fanout) and to a fresh
    net otherwise.

    Parameters
    ----------
    scale:
        Multiplier on block counts (fractional allowed; at least one block
        per family is kept).
    """
    namer = SeedSequenceNamer(seed, "chip", recipe.name)
    wiring_rng = namer.stream("wiring")
    chip = Circuit(recipe.name)
    pool: list[str] = []
    block_index = 0
    for family, count in recipe.blocks:
        factory = BLOCK_FAMILIES[family]
        n_blocks = max(1, round(count * scale))
        for k in range(n_blocks):
            block = factory(namer.stream(family, k), recipe.test_variant)
            port_map: dict[str, str] = {}
            for port in block.ports:
                if pool and wiring_rng.random() < share_probability:
                    port_map[port] = str(wiring_rng.choice(pool))
                else:
                    net_name = f"w{block_index}_{port}"
                    port_map[port] = net_name
                    if wiring_rng.random() < 0.5:
                        pool.append(net_name)
            chip.embed(block, f"u{block_index}_{family}", port_map)
            block_index += 1
    composed = ComposedChip(chip, recipe)
    composed.block_names = [f"{family}x{count}" for family, count in recipe.blocks]
    return composed


def build_dataset(
    seed: int = 0, scale: float = 1.0
) -> tuple[dict[str, Circuit], dict[str, Circuit]]:
    """Build the full train/test circuit dataset.

    Returns ``(train, test)`` dicts keyed by circuit name (t1..t18, e1..e4).
    """
    train = {
        recipe.name: compose_chip(recipe, seed=seed, scale=scale).circuit
        for recipe in TRAIN_RECIPES
    }
    test = {
        recipe.name: compose_chip(recipe, seed=seed, scale=scale).circuit
        for recipe in TEST_RECIPES
    }
    return train, test


def table4_rows(circuits: dict[str, Circuit]) -> list[dict[str, int | str]]:
    """Device/net distribution rows in paper Table IV format."""
    rows = []
    for name, circuit in circuits.items():
        row: dict[str, int | str] = {"circuit": name}
        row.update(circuit.stats_row())
        rows.append(row)
    return rows
