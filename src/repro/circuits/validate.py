"""Structural validation of circuits before graph construction or layout."""

from __future__ import annotations

from repro.circuits import devices as dev
from repro.circuits.netlist import Circuit
from repro.errors import NetlistError


def validate_circuit(circuit: Circuit, require_signal_nets: bool = True) -> None:
    """Check structural invariants; raise :class:`NetlistError` on violation.

    Checks:

    * every instance terminal refers to an existing net,
    * MOSFETs declare a TYPE polarity of +-1,
    * feature parameters are positive where physical (L, NF, NFIN, MULTI),
    * at least one non-supply net exists (required for parasitic targets),
    * no floating signal nets (fanout 0).
    """
    problems: list[str] = []
    fanout: dict[str, int] = {net.name: 0 for net in circuit.nets()}

    for inst in circuit.instances():
        spec = dev.spec_for(inst.device_type)
        for terminal in spec.terminals:
            net_name = inst.conns.get(terminal)
            if net_name is None:
                problems.append(f"{inst.name}: terminal {terminal} unconnected")
                continue
            if not circuit.has_net(net_name):
                problems.append(f"{inst.name}: terminal {terminal} -> unknown net {net_name}")
                continue
            fanout[net_name] += 1
        if dev.is_mos(inst.device_type):
            polarity = inst.param("TYPE", 0.0)
            if polarity not in (dev.NMOS, dev.PMOS):
                problems.append(f"{inst.name}: MOSFET TYPE must be +-1, got {polarity}")
        for feature in spec.features:
            try:
                value = inst.param(feature)
            except NetlistError:
                problems.append(f"{inst.name}: missing feature parameter {feature}")
                continue
            if value <= 0:
                problems.append(f"{inst.name}: feature {feature}={value} must be positive")

    for net in circuit.nets():
        if not net.is_supply and fanout.get(net.name, 0) == 0:
            problems.append(f"net {net.name}: floating (fanout 0)")

    if require_signal_nets and not circuit.signal_nets():
        problems.append("circuit has no signal nets")

    if problems:
        preview = "; ".join(problems[:8])
        more = f" (+{len(problems) - 8} more)" if len(problems) > 8 else ""
        raise NetlistError(f"invalid circuit {circuit.name!r}: {preview}{more}")
