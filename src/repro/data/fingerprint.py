"""Content fingerprints for circuits and fitted feature scalers.

Both the serving :class:`~repro.serve.cache.GraphCache` and the training
:class:`~repro.flows.runtime.MergedInputsCache` need to recognise "the same
data" across object identities: a netlist parsed twice must hit the same
cache entry, and a merged training batch must never be served to a
differently-composed record set.  These helpers hash *content* — circuit
connectivity and device parameters, scaler statistics — not ``id()``.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuits.netlist import Circuit
    from repro.data.dataset import CircuitRecord
    from repro.data.normalize import FeatureScaler


def circuit_fingerprint(circuit: "Circuit") -> str:
    """Stable content hash of a circuit (name, nets, instances, params).

    Two circuits that serialise identically — e.g. the same netlist parsed
    twice — share a fingerprint; any change to connectivity or device
    parameters changes it.
    """
    hasher = hashlib.sha256()
    hasher.update(circuit.name.encode())
    hasher.update(b"|ports|")
    for port in circuit.ports:
        hasher.update(port.encode() + b";")
    hasher.update(b"|nets|")
    for net in sorted(net.name for net in circuit.nets()):
        hasher.update(net.encode() + b";")
    hasher.update(b"|instances|")
    for name in sorted(inst.name for inst in circuit.instances()):
        inst = circuit.instance(name)
        hasher.update(f"{inst.name}:{inst.device_type}".encode())
        for terminal in sorted(inst.conns):
            hasher.update(f"|{terminal}={inst.conns[terminal]}".encode())
        for param in sorted(inst.params):
            hasher.update(f"|{param}={inst.params[param]!r}".encode())
        hasher.update(b";")
    return hasher.hexdigest()


def scaler_fingerprint(scaler: "FeatureScaler") -> str:
    """Content hash of a fitted feature scaler (memoised on the object)."""
    cached = getattr(scaler, "_content_fingerprint", None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    for type_name in sorted(scaler.means):
        hasher.update(type_name.encode())
        hasher.update(scaler.means[type_name].tobytes())
        hasher.update(scaler.stds[type_name].tobytes())
    digest = hasher.hexdigest()
    try:
        scaler._content_fingerprint = digest
    except AttributeError:  # exotic scaler without a __dict__: recompute
        pass
    return digest


def record_fingerprint(record: "CircuitRecord") -> str:
    """Circuit content hash of a dataset record (memoised on the record)."""
    cached = getattr(record, "_content_fingerprint", None)
    if cached is not None:
        return cached
    digest = circuit_fingerprint(record.circuit)
    record._content_fingerprint = digest
    return digest
