"""Dataset assembly: circuits -> graphs -> layouts -> target arrays.

`build_bundle` is the one-stop entry point used by examples, tests and
benchmarks.  It composes the Table IV-shaped circuit set, synthesizes layout
ground truth for every circuit, converts schematics into heterogeneous
graphs, and fits the feature scaler on the training split only (no test
leakage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.generators.chip import build_dataset, table4_rows
from repro.circuits.netlist import Circuit
from repro.data.normalize import FeatureScaler
from repro.data.targets import TargetSpec
from repro.errors import DatasetError
from repro.graph.builder import build_graph
from repro.graph.hetero import HeteroGraph
from repro.layout.synthesizer import LayoutResult, synthesize_layout
from repro.layout.tech import DEFAULT_TECH, Technology


@dataclass
class CircuitRecord:
    """One dataset circuit with its graph and layout ground truth."""

    name: str
    circuit: Circuit
    graph: HeteroGraph
    layout: LayoutResult

    def target_arrays(self, spec: TargetSpec) -> tuple[np.ndarray, np.ndarray]:
        """(node_ids, ground_truth_values) for a target on this circuit."""
        ids = spec.node_ids(self.graph)
        return ids, spec.values(self.graph, self.layout)


@dataclass
class DatasetBundle:
    """The full train/test dataset with a fitted feature scaler."""

    train: dict[str, CircuitRecord]
    test: dict[str, CircuitRecord]
    scaler: FeatureScaler
    seed: int
    scale: float

    def records(self, split: str) -> list[CircuitRecord]:
        """Records of one split ('train' or 'test'), in name order."""
        try:
            table = {"train": self.train, "test": self.test}[split]
        except KeyError:
            raise DatasetError(f"unknown split {split!r}") from None
        return [table[name] for name in sorted(table)]

    def table4(self) -> list[dict[str, int | str]]:
        """Paper Table IV rows for both splits (t* then e*)."""
        ordered = {rec.name: rec.circuit for rec in self.records("train")}
        ordered.update({rec.name: rec.circuit for rec in self.records("test")})
        return table4_rows(ordered)

    def pooled_target(
        self, split: str, spec: TargetSpec
    ) -> tuple[list[CircuitRecord], list[np.ndarray], list[np.ndarray]]:
        """Per-record node ids and values for a target across a split."""
        records = self.records(split)
        ids, values = [], []
        for record in records:
            node_ids, vals = record.target_arrays(spec)
            ids.append(node_ids)
            values.append(vals)
        return records, ids, values


def build_bundle(
    seed: int = 0,
    scale: float = 1.0,
    layout_seed: int | None = None,
    tech: Technology = DEFAULT_TECH,
) -> DatasetBundle:
    """Build circuits, layouts and graphs for the whole dataset.

    Parameters
    ----------
    seed:
        Master seed for circuit composition (and layout, unless overridden).
    scale:
        Dataset size multiplier (1.0 ~ 4k devices total).
    layout_seed:
        Separate seed for layout-uncertainty noise; defaults to *seed*.
    """
    layout_seed = seed if layout_seed is None else layout_seed
    train_circuits, test_circuits = build_dataset(seed=seed, scale=scale)

    def make_records(circuits: dict[str, Circuit]) -> dict[str, CircuitRecord]:
        records = {}
        for name, circuit in circuits.items():
            records[name] = CircuitRecord(
                name=name,
                circuit=circuit,
                graph=build_graph(circuit),
                layout=synthesize_layout(circuit, seed=layout_seed, tech=tech),
            )
        return records

    train = make_records(train_circuits)
    test = make_records(test_circuits)
    scaler = FeatureScaler().fit([rec.graph for rec in train.values()])
    return DatasetBundle(train=train, test=test, scaler=scaler, seed=seed, scale=scale)
