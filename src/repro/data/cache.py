"""Dataset caching: persist a built bundle to disk and reload it.

Bundle construction is cheap at small scales but grows with
``dataset_scale``; caching also pins the exact dataset used by a paper run
for later inspection.  Circuits are stored as SPICE text, targets and
feature-scaler state as ``.npz`` arrays.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.circuits.spice import read_spice, write_spice
from repro.data.dataset import CircuitRecord, DatasetBundle
from repro.data.normalize import FeatureScaler
from repro.errors import DatasetError
from repro.graph.builder import build_graph
from repro.layout.synthesizer import DeviceTargets, LayoutResult


def _save_record(directory: str, record: CircuitRecord) -> None:
    spice_text = write_spice(record.circuit)
    with open(os.path.join(directory, f"{record.name}.sp"), "w") as handle:
        handle.write(spice_text)
    # The SPICE writer prepends element letters to names that lack them;
    # store device targets under the post-roundtrip names so the reloaded
    # circuit's instances match.  Writer and reader preserve order 1:1.
    reparsed = read_spice(spice_text, name=record.name)
    rename = {
        original.name: twin.name
        for original, twin in zip(record.circuit.instances(), reparsed.instances())
    }
    layout = record.layout
    device_names = sorted(rename[n] for n in layout.device_params)
    inverse = {rename[n]: n for n in layout.device_params}
    arrays: dict[str, np.ndarray] = {
        "net_names": np.array(sorted(layout.net_caps), dtype=object),
        "net_caps": np.array([layout.net_caps[n] for n in sorted(layout.net_caps)]),
        "net_res": np.array(
            [layout.net_res.get(n, 0.0) for n in sorted(layout.net_caps)]
        ),
        "device_names": np.array(device_names, dtype=object),
        "device_values": np.array(
            [
                list(layout.device_params[inverse[n]].as_dict().values())
                for n in device_names
            ]
        ).reshape(len(layout.device_params), -1),
    }
    np.savez(
        os.path.join(directory, f"{record.name}.targets.npz"),
        **arrays,
        allow_pickle=True,
    )


def _load_record(directory: str, name: str) -> CircuitRecord:
    with open(os.path.join(directory, f"{name}.sp")) as handle:
        circuit = read_spice(handle, name=name)
    with np.load(
        os.path.join(directory, f"{name}.targets.npz"), allow_pickle=True
    ) as archive:
        net_names = [str(n) for n in archive["net_names"]]
        net_caps = dict(zip(net_names, archive["net_caps"].tolist()))
        net_res = dict(zip(net_names, archive["net_res"].tolist()))
        device_names = [str(n) for n in archive["device_names"]]
        device_params = {}
        for row, device in enumerate(device_names):
            values = archive["device_values"][row]
            device_params[device] = DeviceTargets(
                lde=list(values[:8]),
                sa=float(values[8]),
                da=float(values[9]),
                sp=float(values[10]),
                dp=float(values[11]),
            )
    layout = LayoutResult(
        circuit_name=name,
        net_caps=net_caps,
        device_params=device_params,
        placement=None,  # geometry provenance is not persisted
        net_res=net_res,
    )
    return CircuitRecord(
        name=name, circuit=circuit, graph=build_graph(circuit), layout=layout
    )


def save_bundle(bundle: DatasetBundle, directory: str | os.PathLike) -> None:
    """Persist a bundle to *directory* (created if needed)."""
    directory = str(directory)
    for split in ("train", "test"):
        split_dir = os.path.join(directory, split)
        os.makedirs(split_dir, exist_ok=True)
        for record in bundle.records(split):
            _save_record(split_dir, record)
    scaler_arrays = {}
    for type_name, mean in bundle.scaler.means.items():
        scaler_arrays[f"mean/{type_name}"] = mean
        scaler_arrays[f"std/{type_name}"] = bundle.scaler.stds[type_name]
    np.savez(os.path.join(directory, "scaler.npz"), **scaler_arrays)
    with open(os.path.join(directory, "meta.json"), "w") as handle:
        json.dump({"seed": bundle.seed, "scale": bundle.scale}, handle)


def load_bundle_from_cache(directory: str | os.PathLike) -> DatasetBundle:
    """Reload a bundle saved by :func:`save_bundle`.

    Raises
    ------
    DatasetError
        If the directory does not look like a saved bundle.
    """
    directory = str(directory)
    meta_path = os.path.join(directory, "meta.json")
    if not os.path.exists(meta_path):
        raise DatasetError(f"{directory!r} is not a saved dataset bundle")
    with open(meta_path) as handle:
        meta = json.load(handle)

    def load_split(split: str) -> dict[str, CircuitRecord]:
        split_dir = os.path.join(directory, split)
        records = {}
        for entry in sorted(os.listdir(split_dir)):
            if entry.endswith(".sp"):
                name = entry[:-3]
                records[name] = _load_record(split_dir, name)
        return records

    scaler = FeatureScaler()
    with np.load(os.path.join(directory, "scaler.npz")) as archive:
        for key in archive.files:
            kind, type_name = key.split("/", 1)
            if kind == "mean":
                scaler.means[type_name] = archive[key]
            else:
                scaler.stds[type_name] = archive[key]

    return DatasetBundle(
        train=load_split("train"),
        test=load_split("test"),
        scaler=scaler,
        seed=int(meta["seed"]),
        scale=float(meta["scale"]),
    )
