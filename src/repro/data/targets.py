"""Prediction-target definitions (paper Table I).

A :class:`TargetSpec` names a target, says which node type carries it, and
extracts the per-node ground-truth vector from a graph + layout pair.  One
independent model is trained per target, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits import devices as dev
from repro.errors import DatasetError
from repro.graph.hetero import HeteroGraph
from repro.layout.lde import NUM_LDE
from repro.layout.synthesizer import LayoutResult

#: Node types that carry device-parameter targets (thin + thick MOSFETs).
MOS_NODE_TYPES = (dev.TRANSISTOR, dev.TRANSISTOR_THICKGATE)


@dataclass(frozen=True)
class TargetSpec:
    """One prediction target.

    Attributes
    ----------
    name:
        ``CAP``, ``LDE1``..``LDE8``, ``SA``, ``DA``, ``SP``, ``DP``.
    kind:
        ``"net"`` or ``"device"`` — which node population is predicted.
    """

    name: str
    kind: str

    def node_ids(self, graph: HeteroGraph) -> np.ndarray:
        """Global node ids of the population carrying this target."""
        if self.kind == "net":
            return graph.nodes_of_type.get(dev.NET, np.empty(0, dtype=np.int64))
        ids = [
            graph.nodes_of_type[t]
            for t in MOS_NODE_TYPES
            if t in graph.nodes_of_type
        ]
        if not ids:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(ids))

    def values(self, graph: HeteroGraph, layout: LayoutResult) -> np.ndarray:
        """Ground-truth values aligned with :meth:`node_ids`."""
        ids = self.node_ids(graph)
        out = np.empty(len(ids), dtype=np.float64)  # staticcheck: ignore[precision-policy] -- ground truth is extracted from layout in SI units, float64-canonical at the dataset boundary
        for k, node_id in enumerate(ids):
            name = graph.node_name_of[node_id]
            if self.kind == "net":
                out[k] = (
                    layout.res_of(name) if self.name == "RES" else layout.cap_of(name)
                )
            else:
                try:
                    out[k] = layout.device_params[name].value(self.name)
                except KeyError:
                    raise DatasetError(
                        f"no layout targets for device {name!r}"
                    ) from None
        return out


#: The net-parasitics target.
CAP_TARGET = TargetSpec("CAP", "net")

#: Net trace resistance — the paper's stated future work, included here as
#: an extension target (not part of the paper's 13-target comparison).
RES_TARGET = TargetSpec("RES", "net")

#: The twelve device-parameter targets (LDE1..8, SA, DA, SP, DP).
DEVICE_TARGETS = tuple(
    TargetSpec(f"LDE{i}", "device") for i in range(1, NUM_LDE + 1)
) + tuple(TargetSpec(name, "device") for name in ("SA", "DA", "SP", "DP"))

#: All paper targets in canonical reporting order (CAP first, as in Fig. 6).
ALL_TARGETS = (CAP_TARGET, *DEVICE_TARGETS)

_BY_NAME = {spec.name: spec for spec in (*ALL_TARGETS, RES_TARGET)}


def target_by_name(name: str) -> TargetSpec:
    """Look up a target spec by name.

    Raises
    ------
    DatasetError
        For unknown target names.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise DatasetError(
            f"unknown target {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
