"""Dataset assembly, target definitions, and feature/target scaling."""

from repro.data.dataset import CircuitRecord, DatasetBundle, build_bundle
from repro.data.normalize import FeatureScaler, TargetScaler, scaler_from_std
from repro.data.targets import (
    ALL_TARGETS,
    CAP_TARGET,
    DEVICE_TARGETS,
    MOS_NODE_TYPES,
    RES_TARGET,
    TargetSpec,
    target_by_name,
)

__all__ = [
    "CircuitRecord",
    "DatasetBundle",
    "build_bundle",
    "FeatureScaler",
    "TargetScaler",
    "scaler_from_std",
    "ALL_TARGETS",
    "CAP_TARGET",
    "DEVICE_TARGETS",
    "MOS_NODE_TYPES",
    "RES_TARGET",
    "TargetSpec",
    "target_by_name",
]
