"""Feature and target scaling.

Raw Table II features mix metres (~1e-8) and counts (~1..16); models need a
common scale.  :class:`FeatureScaler` applies per-node-type log-standard
scaling fitted on the training graphs.  :class:`TargetScaler` normalises
target values by a fixed scale (the ensemble's ``max_v`` for CAP models, the
training standard deviation for device parameters), keeping training *linear*
in the target — faithfully reproducing the paper's setup in which small
capacitances drown in the error of a full-range model (their Fig. 5a).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.graph.hetero import HeteroGraph

_LOG_EPS = 1e-12


@dataclass
class FeatureScaler:
    """Per-node-type log-standardisation fitted on training graphs."""

    means: dict[str, np.ndarray] = field(default_factory=dict)
    stds: dict[str, np.ndarray] = field(default_factory=dict)

    def fit(self, graphs: list[HeteroGraph]) -> "FeatureScaler":
        """Fit means/stds per node type over all graphs' raw features."""
        stacked: dict[str, list[np.ndarray]] = {}
        for graph in graphs:
            for type_name, feats in graph.features.items():
                stacked.setdefault(type_name, []).append(feats)
        if not stacked:
            raise DatasetError("no graphs to fit FeatureScaler on")
        for type_name, pieces in stacked.items():
            logged = np.log(np.concatenate(pieces, axis=0) + _LOG_EPS)
            self.means[type_name] = logged.mean(axis=0)
            std = logged.std(axis=0)
            self.stds[type_name] = np.where(std < 1e-9, 1.0, std)
        return self

    def transform(self, graph: HeteroGraph) -> dict[str, np.ndarray]:
        """Scaled feature matrices per node type.

        Node types unseen at fit time fall back to plain log features —
        these are on a different scale from the standardised training
        features, so a :class:`UserWarning` is emitted to flag the
        train/predict mismatch.
        """
        out: dict[str, np.ndarray] = {}
        for type_name, feats in graph.features.items():
            logged = np.log(feats + _LOG_EPS)
            mean = self.means.get(type_name)
            if mean is None:
                warnings.warn(
                    f"node type {type_name!r} was not seen when fitting "
                    "FeatureScaler; falling back to unstandardised log "
                    "features, which are on a different scale than the "
                    "training inputs",
                    stacklevel=2,
                )
                out[type_name] = logged
            else:
                out[type_name] = (logged - mean) / self.stds[type_name]
        return out


@dataclass
class TargetScaler:
    """Linear normalisation of a target by a fixed scale.

    ``transform`` maps farads/metres to O(1) training values; ``inverse``
    maps predictions back.
    """

    scale: float

    def __post_init__(self):
        if self.scale <= 0:
            raise DatasetError(f"target scale must be positive, got {self.scale}")

    def transform(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64) / self.scale  # staticcheck: ignore[precision-policy] -- target values are SI-unit physical quantities, float64-canonical at the dataset boundary

    def inverse(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64) * self.scale  # staticcheck: ignore[precision-policy] -- target values are SI-unit physical quantities, float64-canonical at the dataset boundary


@dataclass
class LogTargetScaler:
    """Log-space normalisation: ``transform(y) = log(y / scale)``.

    Used for device-parameter targets, whose values span orders of magnitude
    (areas scale with NF x NFIN x MULTI): a log-space MSE penalises relative
    error, keeping small devices accurate.  ``scale`` is typically the
    geometric mean of the training values so transformed targets are
    centred near zero.
    """

    scale: float
    floor: float = 1e-30

    def __post_init__(self):
        if self.scale <= 0:
            raise DatasetError(f"target scale must be positive, got {self.scale}")

    def transform(self, values: np.ndarray) -> np.ndarray:
        values = np.maximum(np.asarray(values, dtype=np.float64), self.floor)  # staticcheck: ignore[precision-policy] -- target values are SI-unit physical quantities, float64-canonical at the dataset boundary
        return np.log(values / self.scale)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        return self.scale * np.exp(np.asarray(values, dtype=np.float64))  # staticcheck: ignore[precision-policy] -- target values are SI-unit physical quantities, float64-canonical at the dataset boundary


def log_scaler_from_values(values: np.ndarray) -> LogTargetScaler:
    """Log scaler anchored at the geometric mean of *values*."""
    values = np.asarray(values, dtype=np.float64)  # staticcheck: ignore[precision-policy] -- target values are SI-unit physical quantities, float64-canonical at the dataset boundary
    if values.size == 0:
        raise DatasetError("cannot derive a target scale from no values")
    positive = np.maximum(values, 1e-30)
    return LogTargetScaler(float(np.exp(np.log(positive).mean())))


def scaler_from_std(values: np.ndarray) -> TargetScaler:
    """Target scaler using the std of training values (device parameters)."""
    values = np.asarray(values, dtype=np.float64)  # staticcheck: ignore[precision-policy] -- target values are SI-unit physical quantities, float64-canonical at the dataset boundary
    if values.size == 0:
        raise DatasetError("cannot derive a target scale from no values")
    std = float(values.std())
    if std <= 0:
        std = float(np.abs(values).max()) or 1.0
    return TargetScaler(std)
