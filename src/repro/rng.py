"""Deterministic random-number streams.

Every stochastic component in the library (dataset generation, layout noise,
weight initialisation, training shuffles) draws from a named substream derived
from a single master seed, so builds are reproducible bit-for-bit and
independent of the order in which subsystems consume randomness.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, *names: str | int) -> int:
    """Derive a stable 63-bit seed from a master seed and a name path.

    The derivation hashes the printable path so that adding a new consumer
    never perturbs existing streams.
    """
    payload = ":".join([str(master_seed), *map(str, names)]).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


def stream(master_seed: int, *names: str | int) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator` for a name path.

    >>> stream(7, "layout", "noise").standard_normal(2).shape
    (2,)
    """
    return np.random.default_rng(derive_seed(master_seed, *names))


class SeedSequenceNamer:
    """Convenience wrapper that remembers a master seed and a path prefix.

    Example
    -------
    >>> rng = SeedSequenceNamer(42, "dataset")
    >>> gen = rng.stream("circuit", 3)
    """

    def __init__(self, master_seed: int, *prefix: str | int):
        self.master_seed = int(master_seed)
        self.prefix = tuple(prefix)

    def stream(self, *names: str | int) -> np.random.Generator:
        """Return the generator for ``prefix + names``."""
        return stream(self.master_seed, *self.prefix, *names)

    def child(self, *names: str | int) -> "SeedSequenceNamer":
        """Return a namer scoped one level deeper."""
        return SeedSequenceNamer(self.master_seed, *self.prefix, *names)

    def seed(self, *names: str | int) -> int:
        """Return the derived integer seed for ``prefix + names``."""
        return derive_seed(self.master_seed, *self.prefix, *names)
