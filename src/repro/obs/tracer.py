"""Hierarchical span tracer: wall-clock, CPU and memory per pipeline stage.

A *span* is one timed region of the pipeline (``graph.build``, ``sim.ac``,
``train.epoch``...).  Spans nest: entering a span while another is open on
the same thread records a parent/child relationship, so a trace reconstructs
the call structure of a whole run (dataset build -> layout synthesis ->
training epochs -> checkpoints).

Design constraints, in priority order:

* **Zero overhead when disabled.**  ``Tracer.span`` returns a shared no-op
  context manager after a single flag check; no dict, no timestamps, no
  locks.  Hot paths can therefore call it unconditionally.
* **Thread safety.**  The active-span stack is thread-local (nesting is a
  per-thread notion); finished spans append to one list under a lock.
* **Honest memory numbers.**  ``cpu`` is per-thread CPU time
  (``time.thread_time``).  ``rss_kb`` is the process peak RSS at span end
  (a monotonic high-water mark, not a per-span delta).  ``mem_delta`` is
  the net ``tracemalloc`` allocation delta across the span and is only
  recorded when the tracer was enabled with ``memory=True``.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from dataclasses import dataclass, field

from repro.obs.requestlog import current_request_id

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (0 where the resource module is missing)."""
    if resource is None:  # pragma: no cover
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclass
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: int | None
    name: str
    thread_id: int
    thread_name: str
    t_wall: float  # epoch seconds at span start
    duration: float  # wall-clock seconds
    cpu: float  # thread CPU seconds
    rss_kb: int  # process peak RSS at span end, KiB
    mem_delta: int | None  # tracemalloc net allocation delta, bytes
    depth: int
    attrs: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "thread": self.thread_id,
            "thread_name": self.thread_name,
            "t_wall": self.t_wall,
            "duration": self.duration,
            "cpu": self.cpu,
            "rss_kb": self.rss_kb,
            "mem_delta": self.mem_delta,
            "depth": self.depth,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """A live span; becomes a :class:`SpanRecord` on exit."""

    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id", "depth",
        "_t0", "_cpu0", "_wall", "_mem0",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "_ActiveSpan":
        """Attach extra attributes to the span while it is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        tracer = self.tracer
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        if "request_id" not in self.attrs:
            rid = current_request_id()
            if rid is not None:
                self.attrs["request_id"] = rid
        with tracer._lock:
            self.span_id = tracer._next_id
            tracer._next_id += 1
        stack.append(self)
        self._wall = time.time()  # staticcheck: ignore[determinism] -- span timestamps are intentionally wall-clock
        self._mem0 = (
            tracemalloc.get_traced_memory()[0] if tracer._memory else None
        )
        self._cpu0 = time.thread_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._t0
        cpu = time.thread_time() - self._cpu0
        tracer = self.tracer
        mem_delta = (
            tracemalloc.get_traced_memory()[0] - self._mem0
            if self._mem0 is not None
            else None
        )
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        thread = threading.current_thread()
        record = SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            t_wall=self._wall,
            duration=duration,
            cpu=cpu,
            rss_kb=_peak_rss_kb(),
            mem_delta=mem_delta,
            depth=self.depth,
            attrs=self.attrs,
        )
        with tracer._lock:
            tracer._spans.append(record)
        return False


class Tracer:
    """Collects spans for one process; usually the module singleton."""

    def __init__(self) -> None:
        self._enabled = False
        self._memory = False
        self._started_tracemalloc = False
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._next_id = 1
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, memory: bool = False) -> None:
        """Start collecting spans; ``memory=True`` adds tracemalloc deltas."""
        self._memory = memory
        if memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._enabled = True

    def disable(self) -> None:
        """Stop collecting (already-recorded spans are kept)."""
        self._enabled = False
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False
        self._memory = False

    def reset(self) -> None:
        """Drop every recorded span and restart span numbering."""
        with self._lock:
            self._spans = []
            self._next_id = 1

    def reinit_after_fork(self) -> None:
        """Make this tracer safe in a freshly forked child.

        The child inherits the parent's lock (possibly held by a parent
        thread that does not exist here — instant deadlock) and the
        forking thread's ``threading.local`` slot (the parent's *active
        span stack* — child spans would nest under parent spans).  Both
        are replaced wholesale.  Only call while the child is still
        single-threaded.
        """
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """Context manager timing one region; no-op while disabled."""
        if not self._enabled:
            return NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def spans(self) -> list[SpanRecord]:
        """Snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)
