"""``repro.obs`` — pipeline-wide tracing, metrics and profiling.

The observability substrate for the whole package: a hierarchical span
tracer (wall/CPU/memory per stage, nested, thread-safe), a metrics
registry (counters/gauges/histograms), and exporters (JSONL event log,
Chrome ``trace_event`` JSON for Perfetto, aggregated summary tables).

Everything is **off by default and free when off**: instrumented code calls
:func:`span`/:func:`inc`/... unconditionally, and while disabled each call
is a single flag check returning immediately.  Enable collection explicitly
(``obs.enable()``), via the CLI (``--trace out.json`` / ``--obs-jsonl``),
or via the ``REPRO_TRACE`` / ``REPRO_OBS_JSONL`` environment variables
(honoured by the pytest session hook, which is how CI captures artifacts).

Typical use::

    from repro import obs

    obs.enable(memory=True)
    with obs.span("graph.build", circuit=c.name):
        ...
    obs.inc("graphs_built_total")
    obs.export_chrome_trace("trace.json")
    print(obs.summary())
"""

from __future__ import annotations

import functools
import os

from repro.obs.callback import ObsTrainCallback
from repro.obs.export import (
    chrome_trace_events,
    load_events,
    render_summary,
    summarize_spans,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.requestlog import (
    AccessLog,
    current_request_id,
    new_request_id,
    request_context,
)
from repro.obs.tracer import NULL_SPAN, SpanRecord, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "ObsTrainCallback", "SpanRecord", "Tracer", "DEFAULT_BUCKETS",
    "AccessLog", "current_request_id", "new_request_id", "request_context",
    "enable", "disable", "is_enabled", "reset", "reinit_after_fork",
    "span", "traced",
    "enable_metrics", "disable_metrics", "metrics_enabled",
    "inc", "set_gauge", "observe", "tracer", "registry",
    "export_jsonl", "export_chrome_trace", "summary",
    "chrome_trace_events", "load_events", "render_summary",
    "summarize_spans", "write_chrome_trace", "write_jsonl",
]

_TRACER = Tracer()
_REGISTRY = MetricsRegistry()
_METRICS_ONLY = False


def tracer() -> Tracer:
    """The process-wide tracer singleton."""
    return _TRACER


def registry() -> MetricsRegistry:
    """The process-wide metrics registry singleton."""
    return _REGISTRY


def enable(memory: bool = False) -> None:
    """Turn span and metric collection on.

    ``memory=True`` additionally starts ``tracemalloc`` and records a net
    allocation delta per span (slower; leave off for timing-only runs).
    """
    _TRACER.enable(memory=memory)


def disable() -> None:
    """Turn collection off (recorded spans/metrics are kept until reset)."""
    _TRACER.disable()


def is_enabled() -> bool:
    return _TRACER.enabled


def enable_metrics() -> None:
    """Turn on metric collection without span collection.

    Long-running serving workers want counters/gauges/histograms (bounded
    state, streamed to their mmap metrics file) but must not accumulate an
    unbounded span list; this enables exactly the former.  Full
    :func:`enable` supersedes it while active.
    """
    global _METRICS_ONLY
    _METRICS_ONLY = True


def disable_metrics() -> None:
    """Undo :func:`enable_metrics` (full ``enable()`` state is untouched)."""
    global _METRICS_ONLY
    _METRICS_ONLY = False


def metrics_enabled() -> bool:
    """True when metric calls record (full enable or metrics-only mode)."""
    return _TRACER._enabled or _METRICS_ONLY


def reset() -> None:
    """Drop all recorded spans and metrics."""
    _TRACER.reset()
    _REGISTRY.reset()


def reinit_after_fork() -> None:
    """Make the obs singletons safe in a freshly forked child process.

    The parent may fork while other threads hold the tracer or registry
    locks — those threads do not exist in the child, so an inherited
    held lock deadlocks forever; the tracer's ``threading.local`` slot
    likewise carries the parent's active span stack, and an inherited
    metrics mirror would double-write the parent's mmap file.  Call this
    first thing on the child path, while it is still single-threaded
    (``repro.serve.pool`` does).
    """
    _TRACER.reinit_after_fork()
    _REGISTRY.reinit_after_fork()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def span(name: str, **attrs):
    """Time a region: ``with obs.span("sim.ac", bench=name): ...``.

    Returns a shared no-op context manager while collection is disabled.
    """
    if not _TRACER._enabled:
        return NULL_SPAN
    return _TRACER.span(name, **attrs)


def traced(name: str | None = None, **attrs):
    """Decorator form of :func:`span`; defaults to the function's name."""

    def decorate(func):
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not _TRACER._enabled:
                return func(*args, **kwargs)
            with _TRACER.span(span_name, **attrs):
                return func(*args, **kwargs)

        return wrapper

    return decorate


# ----------------------------------------------------------------------
# Metrics (gated so hot paths stay free when off; serving workers flip
# metrics-only mode via enable_metrics() to keep span state bounded)
# ----------------------------------------------------------------------
def inc(name: str, n: float = 1.0, **labels) -> None:
    """Bump a counter (no-op while collection is disabled)."""
    if _TRACER._enabled or _METRICS_ONLY:
        _REGISTRY.inc(name, n, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    """Set a gauge (no-op while collection is disabled)."""
    if _TRACER._enabled or _METRICS_ONLY:
        _REGISTRY.set(name, value, **labels)


def observe(
    name: str, value: float, buckets: tuple = DEFAULT_BUCKETS, **labels
) -> None:
    """Record a histogram observation (no-op while collection is disabled)."""
    if _TRACER._enabled or _METRICS_ONLY:
        _REGISTRY.observe(name, value, buckets=buckets, **labels)


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def export_jsonl(path: str | os.PathLike) -> str:
    """Write the collected spans + metrics snapshot as JSONL."""
    return write_jsonl(path, _TRACER, _REGISTRY)


def export_chrome_trace(path: str | os.PathLike) -> str:
    """Write a Perfetto/``chrome://tracing``-loadable trace file."""
    return write_chrome_trace(path, _TRACER, _REGISTRY)


def summary() -> str:
    """Rendered per-stage time/memory table for the collected spans."""
    return render_summary(
        [span.as_row() for span in _TRACER.spans()], _REGISTRY.snapshot()
    )
