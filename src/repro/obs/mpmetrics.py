"""mmap-backed multiprocess metrics: per-worker files + a fleet merge.

A pre-fork :class:`~repro.serve.pool.ServerPool` runs one metrics registry
per worker process, so any single worker's ``/metrics`` answer used to
describe 1/N of the fleet.  This module makes every worker's registry
observable from any process:

* **Writer** — each worker attaches a :class:`MetricsFileWriter` as the
  mirror of its :class:`~repro.obs.metrics.MetricsRegistry`.  Every
  counter bump / gauge set / histogram observation is copied into a
  fixed-slot mmap file named ``worker-<pid>-gen<generation>.mpm`` under a
  shared directory.  Writes go through a file-wide seqlock (sequence
  number bumped to odd before, even after), so a reader can detect and
  retry torn reads; every value is an aligned 8-byte field, so even a
  torn read never yields a half-written number.
* **Reader** — :func:`read_metrics_file` parses one file (seqlock retry
  with a bounded best-effort fallback, which is what makes a worker
  crash *mid-write* non-fatal: the file stays readable).
  :func:`load_snapshots` scans a directory, drops files whose pid is
  dead or whose weight ``generation`` is stale, and
  :func:`merge_snapshots` folds the survivors into one fleet view:
  counters and histogram buckets are **summed**, gauges resolve
  **last-write** (by write timestamp) or **max**.
* **Reaping** — :func:`reap_stale` unlinks files left behind by dead
  workers (the pool calls it from ``poll()`` after a respawn), so a
  SIGKILL-ed worker's final counts are retired exactly once and never
  double-counted against its replacement.

The file format is versioned and self-describing; no locks are shared
across processes (single writer per file, lock-free readers).
"""

from __future__ import annotations

import json
import math
import os
import struct
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ObsError
from repro.obs.metrics import Counter, Gauge, Histogram

MAGIC = b"RPMM"
VERSION = 1

#: Fixed header layout (offsets into the file).
_OFF_MAGIC = 0  # 4s
_OFF_VERSION = 4  # u32
_OFF_PID = 8  # u32
_OFF_WORKER = 12  # u32
_OFF_GENERATION = 16  # u32
_OFF_CAPACITY = 20  # u32
_OFF_CREATED = 24  # f64, epoch seconds
_OFF_SEQ = 32  # u64 seqlock (odd = write in progress)
_OFF_USED = 40  # u32 slots allocated
HEADER_SIZE = 64

#: Per-slot layout: metadata region then a fixed value region.
_META_BYTES = 184  # JSON [kind, name, labels, buckets] payload budget
_SLOT_META = 192  # kind u8, pad u8, meta_len u16, pad u32, meta bytes
_SLOT_VALUES = 240
SLOT_SIZE = _SLOT_META + _SLOT_VALUES
MAX_BUCKETS = 24
DEFAULT_CAPACITY = 512

_KIND_COUNTER = 1
_KIND_GAUGE = 2
_KIND_HISTOGRAM = 3
_KIND_NAMES = {
    _KIND_COUNTER: "counter",
    _KIND_GAUGE: "gauge",
    _KIND_HISTOGRAM: "histogram",
}

_FILE_SUFFIX = ".mpm"


def metrics_file_name(pid: int, generation: int) -> str:
    return f"worker-{pid}-gen{generation}{_FILE_SUFFIX}"


def file_size(capacity: int) -> int:
    return HEADER_SIZE + capacity * SLOT_SIZE


def pid_alive(pid: int) -> bool:
    """True when *pid* names a live process we could signal."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another uid
        return True
    return True


def _metric_key(metric) -> tuple:
    labels = tuple(sorted(metric.labels.items()))
    if isinstance(metric, Histogram):
        return ("histogram", metric.name, labels, tuple(metric.buckets))
    kind = "counter" if isinstance(metric, Counter) else "gauge"
    return (kind, metric.name, labels)


class MetricsFileWriter:
    """Single-writer mmap mirror of one process's metrics registry.

    Attach via :meth:`repro.obs.metrics.MetricsRegistry.attach_mirror`;
    the registry then calls :meth:`write` (under its own lock, so there
    is exactly one writer) after every mutation.  Failures are absorbed
    and counted in :attr:`dropped` — telemetry must never take down the
    serving path.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        worker: int = 0,
        generation: int = 0,
        capacity: int = DEFAULT_CAPACITY,
        pid: int | None = None,
    ):
        if capacity < 1:
            raise ObsError("metrics file capacity must be >= 1")
        self.directory = os.fspath(directory)
        self.worker = int(worker)
        self.generation = int(generation)
        self.capacity = int(capacity)
        self.pid = os.getpid() if pid is None else int(pid)
        self.path = os.path.join(
            self.directory, metrics_file_name(self.pid, self.generation)
        )
        self.dropped = 0  # metrics we could not mirror (full/oversized meta)
        self._lock = threading.Lock()
        self._slots: dict[tuple, int] = {}
        self._seq = 0
        self._closed = False

        os.makedirs(self.directory, exist_ok=True)
        size = file_size(self.capacity)
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR | os.O_TRUNC, 0o644)
        try:
            os.ftruncate(fd, size)
            import mmap

            self._mmap = mmap.mmap(fd, size)
        finally:
            os.close(fd)
        header = bytearray(HEADER_SIZE)
        struct.pack_into("<4s", header, _OFF_MAGIC, MAGIC)
        struct.pack_into("<I", header, _OFF_VERSION, VERSION)
        struct.pack_into("<I", header, _OFF_PID, self.pid)
        struct.pack_into("<I", header, _OFF_WORKER, self.worker)
        struct.pack_into("<I", header, _OFF_GENERATION, self.generation)
        struct.pack_into("<I", header, _OFF_CAPACITY, self.capacity)
        struct.pack_into(
            "<d", header, _OFF_CREATED,
            time.time(),  # staticcheck: ignore[determinism] -- telemetry timestamps are intentionally wall-clock
        )
        struct.pack_into("<Q", header, _OFF_SEQ, 0)
        struct.pack_into("<I", header, _OFF_USED, 0)
        self._mmap[:HEADER_SIZE] = bytes(header)

    # ------------------------------------------------------------------
    def write(self, metric) -> None:
        """Mirror one metric's current state into the file (never raises)."""
        try:
            with self._lock:
                if self._closed:
                    return
                key = _metric_key(metric)
                slot = self._slots.get(key)
                if slot is None:
                    slot = self._allocate(key, metric)
                    if slot is None:
                        self.dropped += 1
                        return
                    self._slots[key] = slot
                self._begin_write()
                self._pack_values(slot, metric)
                self._end_write()
        except Exception:  # pragma: no cover - defensive mirror boundary
            self.dropped += 1

    # -- seqlock -------------------------------------------------------
    def _begin_write(self) -> None:
        self._seq += 1  # odd: write in progress
        struct.pack_into("<Q", self._mmap, _OFF_SEQ, self._seq)

    def _end_write(self) -> None:
        self._seq += 1  # even: consistent
        struct.pack_into("<Q", self._mmap, _OFF_SEQ, self._seq)

    # -- slots ---------------------------------------------------------
    def _allocate(self, key: tuple, metric) -> int | None:
        used = len(self._slots)
        if used >= self.capacity:
            return None
        if isinstance(metric, Histogram):
            if len(metric.buckets) > MAX_BUCKETS:
                return None
            kind = _KIND_HISTOGRAM
            buckets = [
                b if math.isfinite(b) else None for b in metric.buckets
            ]
        else:
            kind = (
                _KIND_COUNTER if isinstance(metric, Counter) else _KIND_GAUGE
            )
            buckets = None
        meta = json.dumps(
            [metric.name, sorted(metric.labels.items()), buckets],
            separators=(",", ":"),
        ).encode()
        if len(meta) > _META_BYTES:
            return None
        offset = HEADER_SIZE + used * SLOT_SIZE
        self._begin_write()
        struct.pack_into("<BBHI", self._mmap, offset, kind, 0, len(meta), 0)
        self._mmap[offset + 8:offset + 8 + len(meta)] = meta
        struct.pack_into("<I", self._mmap, _OFF_USED, used + 1)
        self._end_write()
        return used

    def _pack_values(self, slot: int, metric) -> None:
        offset = HEADER_SIZE + slot * SLOT_SIZE + _SLOT_META
        m = self._mmap
        now = time.time()  # staticcheck: ignore[determinism] -- last-write resolution across workers needs wall-clock
        if isinstance(metric, Histogram):
            struct.pack_into(
                "<Qddd", m, offset,
                metric.count, metric.total, metric.min, metric.max,
            )
            struct.pack_into(
                f"<{len(metric.counts)}Q", m, offset + 32, *metric.counts
            )
        else:
            struct.pack_into("<dd", m, offset, float(metric.value), now)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._mmap.flush()

    def close(self, *, unlink: bool = False) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._mmap.flush()
            finally:
                self._mmap.close()
        if unlink:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self) -> "MetricsFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Reader side
# ----------------------------------------------------------------------
@dataclass
class WorkerSnapshot:
    """One worker metrics file, decoded."""

    path: str
    pid: int
    worker: int
    generation: int
    created_ts: float
    seq: int
    alive: bool
    torn: bool  # best-effort read after seqlock retries ran out
    rows: list = field(default_factory=list)

    def row(self, name: str, kind: str | None = None) -> dict | None:
        """First row matching *name* (and *kind*), or None."""
        for row in self.rows:
            if row["name"] == name and (kind is None or row["kind"] == kind):
                return row
        return None

    def value(self, name: str, default: float = 0.0) -> float:
        row = self.row(name)
        if row is None or "value" not in row:
            return default
        return row["value"]


def _parse_header(data: bytes, path: str) -> dict:
    if len(data) < HEADER_SIZE:
        raise ObsError(f"{path}: truncated metrics file header")
    magic, = struct.unpack_from("<4s", data, _OFF_MAGIC)
    if magic != MAGIC:
        raise ObsError(f"{path}: not a metrics file (bad magic {magic!r})")
    version, = struct.unpack_from("<I", data, _OFF_VERSION)
    if version != VERSION:
        raise ObsError(f"{path}: unsupported metrics file version {version}")
    pid, worker, generation, capacity = struct.unpack_from(
        "<IIII", data, _OFF_PID
    )
    created, = struct.unpack_from("<d", data, _OFF_CREATED)
    seq, = struct.unpack_from("<Q", data, _OFF_SEQ)
    used, = struct.unpack_from("<I", data, _OFF_USED)
    return {
        "pid": pid,
        "worker": worker,
        "generation": generation,
        "capacity": capacity,
        "created_ts": created,
        "seq": seq,
        "used": min(used, capacity),
    }


def _parse_slots(data: bytes, used: int) -> list[dict]:
    rows: list[dict] = []
    for slot in range(used):
        offset = HEADER_SIZE + slot * SLOT_SIZE
        if offset + SLOT_SIZE > len(data):
            break
        kind, _pad, meta_len, _pad2 = struct.unpack_from("<BBHI", data, offset)
        name_of = _KIND_NAMES.get(kind)
        if name_of is None or meta_len > _META_BYTES:
            continue
        try:
            name, label_items, buckets = json.loads(
                data[offset + 8:offset + 8 + meta_len].decode()
            )
        except (ValueError, UnicodeDecodeError):
            continue  # torn/garbled slot metadata: skip just this slot
        labels = dict(label_items)
        voff = offset + _SLOT_META
        row: dict = {
            "type": "metric", "kind": name_of, "name": name, "labels": labels,
        }
        if kind == _KIND_HISTOGRAM:
            count, total, vmin, vmax = struct.unpack_from("<Qddd", data, voff)
            n = len(buckets)
            counts = list(struct.unpack_from(f"<{n}Q", data, voff + 32))
            row.update(
                count=count,
                sum=total,
                min=vmin if count else None,
                max=vmax if count else None,
                buckets=[[b, c] for b, c in zip(buckets, counts)],
            )
        else:
            value, updated = struct.unpack_from("<dd", data, voff)
            row["value"] = value
            row["updated"] = updated
        rows.append(row)
    return rows


def read_metrics_file(
    path: str | os.PathLike,
    *,
    retries: int = 10,
    best_effort: bool = True,
) -> WorkerSnapshot:
    """Decode one worker metrics file with seqlock-consistent retries.

    A write in progress (odd sequence) or a sequence that moved between
    two reads triggers a retry.  After *retries* attempts the last copy
    is decoded anyway when *best_effort* (every numeric field is an
    aligned 8-byte value, so individual numbers are never torn — only
    cross-metric consistency is at stake), which is what keeps a file
    readable when its writer was SIGKILL-ed mid-write and the sequence
    is stuck odd forever.
    """
    path = os.fspath(path)
    data = b""
    torn = True
    for _ in range(max(1, retries)):
        with open(path, "rb") as handle:
            data = handle.read()
        header = _parse_header(data, path)
        if header["seq"] % 2 == 1:
            time.sleep(0.001)
            continue
        with open(path, "rb") as handle:
            check = handle.read(HEADER_SIZE)
        seq_after, = struct.unpack_from("<Q", check, _OFF_SEQ)
        if seq_after == header["seq"]:
            torn = False
            break
        time.sleep(0.001)
    if torn and not best_effort:
        raise ObsError(f"{path}: metrics file busy (seqlock never settled)")
    header = _parse_header(data, path)
    return WorkerSnapshot(
        path=path,
        pid=header["pid"],
        worker=header["worker"],
        generation=header["generation"],
        created_ts=header["created_ts"],
        seq=header["seq"],
        alive=pid_alive(header["pid"]),
        torn=torn,
        rows=_parse_slots(data, header["used"]),
    )


def load_snapshots(
    directory: str | os.PathLike,
    *,
    live_only: bool = True,
    min_generation: int | None = None,
) -> list[WorkerSnapshot]:
    """Decode every readable metrics file under *directory*.

    ``live_only`` drops files whose writer pid is dead; ``min_generation``
    drops files published by an older weight generation (a rolling reload
    briefly overlaps two generations — both count as live until the old
    workers drain and their files are reaped).
    """
    directory = os.fspath(directory)
    snapshots: list[WorkerSnapshot] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return snapshots
    for name in names:
        if not name.endswith(_FILE_SUFFIX):
            continue
        try:
            snapshot = read_metrics_file(os.path.join(directory, name))
        except (ObsError, OSError):
            continue  # partially created / foreign file: not our problem
        if live_only and not snapshot.alive:
            continue
        if min_generation is not None and snapshot.generation < min_generation:
            continue
        snapshots.append(snapshot)
    snapshots.sort(key=lambda s: (s.worker, s.pid))
    return snapshots


def reap_stale(
    directory: str | os.PathLike,
    *,
    keep_pids: tuple | list | set = (),
) -> list[str]:
    """Unlink metrics files whose writer process is gone.

    Returns the removed paths.  Files for pids in *keep_pids* are always
    kept (the pool passes its current worker pids so a just-forked worker
    whose file predates the liveness check cannot be reaped by accident).
    """
    directory = os.fspath(directory)
    keep = {int(pid) for pid in keep_pids}
    removed: list[str] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return removed
    for name in names:
        if not name.endswith(_FILE_SUFFIX):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "rb") as handle:
                header = _parse_header(handle.read(HEADER_SIZE), path)
            pid = header["pid"]
        except (ObsError, OSError):
            pid = -1  # unreadable: treat as dead debris
        if pid in keep or (pid > 0 and pid_alive(pid)):
            continue
        try:
            os.unlink(path)
            removed.append(path)
        except OSError:
            pass
    return removed


# ----------------------------------------------------------------------
# Merge layer
# ----------------------------------------------------------------------
def _merge_key(row: dict) -> tuple:
    labels = tuple(sorted(row["labels"].items()))
    if row["kind"] == "histogram":
        bounds = tuple(b for b, _ in row["buckets"])
        return (row["kind"], row["name"], labels, bounds)
    return (row["kind"], row["name"], labels)


def merge_snapshots(
    snapshots: list[WorkerSnapshot],
    *,
    gauge_strategy: str = "last",
) -> list[dict]:
    """Fold per-worker rows into one fleet view.

    Counters and histogram buckets/sums/counts are summed; histogram
    min/max take the extremes; gauges resolve per *gauge_strategy* —
    ``"last"`` (newest write timestamp wins) or ``"max"``.  The output
    rows have the same shape as
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` rows, plus a
    ``workers`` count per row.
    """
    if gauge_strategy not in ("last", "max"):
        raise ObsError(f"unknown gauge merge strategy {gauge_strategy!r}")
    merged: dict[tuple, dict] = {}
    for snapshot in snapshots:
        for row in snapshot.rows:
            key = _merge_key(row)
            into = merged.get(key)
            if into is None:
                into = merged[key] = {
                    "type": "metric",
                    "kind": row["kind"],
                    "name": row["name"],
                    "labels": dict(row["labels"]),
                    "workers": 0,
                }
                if row["kind"] == "histogram":
                    into.update(
                        count=0, sum=0.0, min=None, max=None,
                        buckets=[[b, 0] for b, _ in row["buckets"]],
                    )
                elif row["kind"] == "counter":
                    into["value"] = 0.0
                else:
                    into["value"] = math.nan
                    into["updated"] = -math.inf
            into["workers"] += 1
            if row["kind"] == "counter":
                into["value"] += row["value"]
            elif row["kind"] == "gauge":
                if gauge_strategy == "max":
                    if math.isnan(into["value"]) or row["value"] > into["value"]:
                        into["value"] = row["value"]
                elif row.get("updated", 0.0) >= into["updated"]:
                    into["value"] = row["value"]
                    into["updated"] = row.get("updated", 0.0)
            else:
                into["count"] += row["count"]
                into["sum"] += row["sum"]
                if row["count"]:
                    if into["min"] is None or row["min"] < into["min"]:
                        into["min"] = row["min"]
                    if into["max"] is None or row["max"] > into["max"]:
                        into["max"] = row["max"]
                for pair, (_, count) in zip(into["buckets"], row["buckets"]):
                    pair[1] += count
    rows = []
    for row in merged.values():
        row.pop("updated", None)
        if row["kind"] == "histogram":
            hist = _rebuild_histogram(row)
            row["mean"] = hist.mean
            for q, label in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
                row[label] = hist.quantile(q) if hist.count else None
        rows.append(row)
    rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
    return rows


def _rebuild_histogram(row: dict) -> Histogram:
    """A :class:`Histogram` carrying a merged row's state (for quantiles)."""
    bounds = tuple(
        b if b is not None else math.inf for b, _ in row["buckets"]
    )
    hist = Histogram(name=row["name"], buckets=bounds)
    hist.counts = [count for _, count in row["buckets"]]
    hist.count = row["count"]
    hist.total = row["sum"]
    hist.min = row["min"] if row["min"] is not None else math.inf
    hist.max = row["max"] if row["max"] is not None else -math.inf
    return hist
