"""Request-scoped identity and the structured JSON access log.

A request ID is minted (or adopted from an ``X-Request-ID`` header) at
the HTTP edge and carried through the serving stack in a
:mod:`contextvars` variable, so the batch executor, engine, cache, and
any :func:`repro.obs.span` opened underneath automatically pick it up —
no parameter threading through call signatures that predate serving.

:class:`AccessLog` writes one JSON line per request.  It is
**tail-sampled**: the cheap summary fields (id, worker, status, timing
breakdown) are always logged, but the expensive ``detail`` payload
(per-request span tree, error text) is attached only when the request
was slow or failed — the requests an operator actually greps for.
"""

from __future__ import annotations

import contextlib
import contextvars
import io
import json
import os
import threading
import uuid

_REQUEST_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_request_id", default=None
)


def new_request_id() -> str:
    """A fresh 16-hex-char request ID (collision-safe per fleet lifetime)."""
    return uuid.uuid4().hex[:16]


def current_request_id() -> str | None:
    """The request ID bound to the calling context, if any."""
    return _REQUEST_ID.get()


@contextlib.contextmanager
def request_context(request_id: str | None = None):
    """Bind *request_id* (minted if None) for the duration of the block."""
    rid = request_id or new_request_id()
    token = _REQUEST_ID.set(rid)
    try:
        yield rid
    finally:
        _REQUEST_ID.reset(token)


class AccessLog:
    """Line-per-request JSON access log with tail-based detail sampling.

    Parameters
    ----------
    sink:
        A writable text stream, a path to append to, or None (disabled —
        every call is a cheap no-op so the server can hold one
        unconditionally).
    slow_s:
        Requests at or above this wall time are "slow" and get the
        ``detail`` payload attached (alongside every status >= 400).
    """

    def __init__(self, sink=None, *, slow_s: float = 0.25):
        self.slow_s = float(slow_s)
        self._lock = threading.Lock()
        self._owns_stream = False
        if sink is None or isinstance(sink, io.IOBase) or hasattr(sink, "write"):
            self._stream = sink
        else:
            self._stream = open(os.fspath(sink), "a", encoding="utf-8")
            self._owns_stream = True

    @property
    def enabled(self) -> bool:
        return self._stream is not None

    def log(
        self,
        *,
        request_id: str,
        status: int,
        duration_s: float,
        detail_fn=None,
        **fields,
    ) -> dict | None:
        """Write one access-log line; returns the record (None if disabled).

        ``detail_fn`` is a zero-argument callable producing the expensive
        detail payload; it runs only when this request samples in
        (status >= 400 or duration >= ``slow_s``) so the fast path never
        pays for span serialization.
        """
        if self._stream is None:
            return None
        record = {
            "type": "access",
            "request_id": request_id,
            "status": int(status),
            "duration_s": round(float(duration_s), 6),
        }
        record.update({k: v for k, v in fields.items() if v is not None})
        sampled = status >= 400 or duration_s >= self.slow_s
        if sampled:
            record["sampled"] = True
            if detail_fn is not None:
                try:
                    record["detail"] = detail_fn()
                except Exception as error:  # detail must never kill serving
                    record["detail_error"] = repr(error)
        line = json.dumps(record, default=str)
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                return None  # closed / full sink: drop, don't fail the request
        return record

    def close(self) -> None:
        if self._owns_stream and self._stream is not None:
            try:
                self._stream.close()
            finally:
                self._stream = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
