"""Metrics registry: counters, gauges and fixed-bucket histograms.

Naming convention (see ``docs/observability.md``): dot-separated lowercase
paths, ``<subsystem>.<noun>``; monotonically increasing counts end in
``_total`` (``graphs_built_total``, ``cache.merged_inputs.hits_total``).
Low-cardinality dimensions go in ``labels``
(``ensemble.range_selected{max_v=1e-15}``), never in the metric name.

All mutation is lock-protected, so metrics can be bumped from worker
threads; reads (``snapshot``/``render``) take the same lock briefly.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

from repro.analysis.tables import render_table

#: Default histogram bucket upper bounds (seconds-flavoured but generic).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, math.inf
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    name: str
    labels: dict = field(default_factory=dict)
    value: float = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-bucket histogram with sum/count/min/max."""

    name: str
    labels: dict = field(default_factory=dict)
    buckets: tuple = DEFAULT_BUCKETS
    counts: list = None
    total: float = 0.0
    count: int = 0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self):
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be ascending")
        if self.counts is None:
            self.counts = [0] * len(self.buckets)

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += value
        self.count += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1  # +inf backstop when no bound matched

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (q in [0, 1]).

        Resolution is limited by the bucket bounds: the estimate
        interpolates linearly within the bucket holding the q-th
        observation and is clamped to the observed min/max.  NaN when
        empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if not self.count:
            return math.nan
        rank = q * self.count
        seen = 0
        previous_bound = None
        for bound, bucket_count in zip(self.buckets, self.counts):
            if bucket_count and seen + bucket_count >= rank:
                lower = (
                    self.min if previous_bound is None else previous_bound
                )
                fraction = (rank - seen) / bucket_count
                if not math.isfinite(bound):
                    # +inf backstop: interpolate toward the observed max
                    # instead of snapping to it (so q=0 with everything in
                    # the overflow bucket still reports the observed min).
                    lower = max(self.min, lower)
                    estimate = lower + fraction * (self.max - lower)
                else:
                    estimate = lower + fraction * (bound - lower)
                return min(self.max, max(self.min, estimate))
            seen += bucket_count
            previous_bound = bound
        return self.max  # pragma: no cover - rank beyond counted items


class MetricsRegistry:
    """Create-on-first-use store of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple, object] = {}
        self._mirror = None

    def attach_mirror(self, mirror) -> None:
        """Mirror every mutation into *mirror* (``.write(metric)``).

        Used by the serving pool to stream each worker's registry into its
        mmap metrics file; existing metrics are re-written immediately so a
        mirror attached after warm-up still sees the full state.  Mirror
        writes happen under the registry lock, giving the file a single
        writer.
        """
        with self._lock:
            self._mirror = mirror
            for metric in self._metrics.values():
                mirror.write(metric)

    def detach_mirror(self):
        """Stop mirroring; returns the previous mirror (or None)."""
        with self._lock:
            mirror, self._mirror = self._mirror, None
            return mirror

    def reinit_after_fork(self) -> None:
        """Make this registry safe in a freshly forked child.

        Replaces the lock (the parent may have forked while another
        thread held it) and drops any inherited mirror — a mirror wraps
        the *parent's* mmap metrics file, and two processes writing one
        file corrupts the merged fleet view; the child attaches its own.
        Only call while the child is still single-threaded.
        """
        self._lock = threading.Lock()
        self._mirror = None

    def _get(self, kind, name: str, labels: dict | None, **kwargs):
        key = (kind.__name__, name, _label_key(labels or {}))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = kind(name=name, labels=dict(labels or {}), **kwargs)
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=tuple(buckets))

    # ------------------------------------------------------------------
    def inc(self, name: str, n: float = 1.0, **labels) -> None:
        counter = self.counter(name, **labels)
        with self._lock:
            counter.inc(n)
            if self._mirror is not None:
                self._mirror.write(counter)

    def set(self, name: str, value: float, **labels) -> None:
        gauge = self.gauge(name, **labels)
        with self._lock:
            gauge.set(value)
            if self._mirror is not None:
                self._mirror.write(gauge)

    def observe(
        self, name: str, value: float, buckets: tuple = DEFAULT_BUCKETS, **labels
    ) -> None:
        histogram = self.histogram(name, buckets=buckets, **labels)
        with self._lock:
            histogram.observe(value)
            if self._mirror is not None:
                self._mirror.write(histogram)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        with self._lock:
            self._metrics = {}

    def snapshot(self) -> list[dict]:
        """JSON-ready rows, one per metric, sorted by name."""
        with self._lock:
            metrics = list(self._metrics.values())
        rows = []
        for metric in metrics:
            row = {
                "type": "metric",
                "kind": type(metric).__name__.lower(),
                "name": metric.name,
                "labels": metric.labels,
            }
            if isinstance(metric, Histogram):
                row.update(
                    count=metric.count,
                    sum=metric.total,
                    mean=metric.mean,
                    min=metric.min if metric.count else None,
                    max=metric.max if metric.count else None,
                    p50=metric.quantile(0.50) if metric.count else None,
                    p95=metric.quantile(0.95) if metric.count else None,
                    p99=metric.quantile(0.99) if metric.count else None,
                    buckets=[
                        [b if math.isfinite(b) else None, c]
                        for b, c in zip(metric.buckets, metric.counts)
                    ],
                )
            else:
                row["value"] = metric.value
            rows.append(row)
        rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return rows

    def render(self) -> str:
        """Plain-text metric table (counters/gauges + histogram summaries)."""
        rows = []
        for row in self.snapshot():
            labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
            name = f"{row['name']}{{{labels}}}" if labels else row["name"]
            if row["kind"] == "histogram":
                rows.append(
                    [name, "histogram",
                     f"n={row['count']} mean={row['mean']:.4g} "
                     f"min={row['min']:.4g} max={row['max']:.4g}"
                     if row["count"] else "n=0"]
                )
            else:
                rows.append([name, row["kind"], f"{row['value']:.6g}"])
        return render_table(["metric", "kind", "value"], rows, title="Metrics")
