"""Trace exporters: JSONL event log, Chrome trace JSON, summary tables.

Three consumers, three formats:

* ``write_jsonl`` — one JSON object per line (spans then metrics), the
  machine-readable log downstream tooling greps or tails.
* ``write_chrome_trace`` — the Trace Event Format understood by Perfetto
  and ``chrome://tracing``: spans become complete (``"ph": "X"``) events on
  their thread's track; the metrics snapshot rides along under
  ``otherData`` (ignored by viewers, preserved for ``obs report``).
* ``render_summary`` — the per-stage wall/CPU/memory aggregation behind
  ``repro obs report``.

``load_events`` reads back either file format, so a report can be produced
from whichever artifact a run kept.
"""

from __future__ import annotations

import json
import os

from repro.analysis.tables import render_table
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanRecord, Tracer


def _span_rows(tracer: Tracer) -> list[dict]:
    return [span.as_row() for span in tracer.spans()]


def write_jsonl(
    path: str | os.PathLike,
    tracer: Tracer,
    registry: MetricsRegistry | None = None,
) -> str:
    """Append spans + a metrics snapshot to *path*, one JSON object per line."""
    path = str(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as handle:
        for row in _span_rows(tracer):
            handle.write(json.dumps(row) + "\n")
        if registry is not None:
            for row in registry.snapshot():
                handle.write(json.dumps(row) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return path


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """Spans as Trace Event Format complete events (microsecond timestamps)."""
    pid = os.getpid()
    events: list[dict] = []
    seen_threads: dict[int, str] = {}
    for span in tracer.spans():
        seen_threads.setdefault(span.thread_id, span.thread_name)
        args = dict(span.attrs)
        args["cpu_ms"] = round(span.cpu * 1e3, 3)
        args["rss_kb"] = span.rss_kb
        args["depth"] = span.depth
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        if span.mem_delta is not None:
            args["mem_delta_kb"] = round(span.mem_delta / 1024.0, 1)
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(span.t_wall * 1e6, 1),
                "dur": round(span.duration * 1e6, 1),
                "pid": pid,
                "tid": span.thread_id,
                "args": args,
            }
        )
    for tid, name in seen_threads.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return events


def write_chrome_trace(
    path: str | os.PathLike,
    tracer: Tracer,
    registry: MetricsRegistry | None = None,
) -> str:
    """Write a Perfetto/``chrome://tracing``-loadable trace file."""
    path = str(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    payload = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "metrics": registry.snapshot() if registry is not None else [],
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


# ----------------------------------------------------------------------
# Reading traces back
# ----------------------------------------------------------------------
def load_events(path: str | os.PathLike) -> tuple[list[dict], list[dict]]:
    """(span rows, metric rows) from a Chrome trace or an obs JSONL file.

    Span rows come back in the JSONL schema (``name``/``duration``/``cpu``/
    ``rss_kb``/``mem_delta``) regardless of the on-disk format.
    """
    path = str(path)
    with open(path) as handle:
        text = handle.read()
    try:  # a Chrome trace is one JSON document; JSONL fails with extra data
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict):
        spans = []
        for event in payload.get("traceEvents", []):
            if event.get("ph") != "X":
                continue
            args = event.get("args", {})
            mem_kb = args.get("mem_delta_kb")
            spans.append(
                {
                    "type": "span",
                    "name": event["name"],
                    "thread": event.get("tid"),
                    "t_wall": event.get("ts", 0.0) / 1e6,
                    "duration": event.get("dur", 0.0) / 1e6,
                    "cpu": args.get("cpu_ms", 0.0) / 1e3,
                    "rss_kb": args.get("rss_kb", 0),
                    "depth": args.get("depth", 0),
                    "parent": args.get("parent"),
                    "mem_delta": (
                        None if mem_kb is None else int(mem_kb * 1024)
                    ),
                    "attrs": {
                        k: v
                        for k, v in args.items()
                        if k not in ("cpu_ms", "rss_kb", "mem_delta_kb",
                                     "depth", "parent")
                    },
                }
            )
        metrics = payload.get("otherData", {}).get("metrics", [])
        return spans, metrics
    rows = [json.loads(line) for line in text.splitlines() if line.strip()]
    spans = [row for row in rows if row.get("type") == "span"]
    metrics = [row for row in rows if row.get("type") == "metric"]
    return spans, metrics


# ----------------------------------------------------------------------
# Aggregated summary
# ----------------------------------------------------------------------
def summarize_spans(spans: list[dict]) -> list[dict]:
    """Aggregate span rows by name: calls, wall/CPU totals, memory."""
    stages: dict[str, dict] = {}
    for span in spans:
        stage = stages.setdefault(
            span["name"],
            {
                "stage": span["name"],
                "calls": 0,
                "wall": 0.0,
                "cpu": 0.0,
                "max_wall": 0.0,
                "rss_kb": 0,
                "mem_delta": 0,
                "has_mem": False,
            },
        )
        stage["calls"] += 1
        stage["wall"] += span["duration"]
        stage["cpu"] += span.get("cpu") or 0.0
        stage["max_wall"] = max(stage["max_wall"], span["duration"])
        stage["rss_kb"] = max(stage["rss_kb"], span.get("rss_kb") or 0)
        if span.get("mem_delta") is not None:
            stage["mem_delta"] += span["mem_delta"]
            stage["has_mem"] = True
    for stage in stages.values():
        stage["mean_wall"] = stage["wall"] / stage["calls"]
    return sorted(stages.values(), key=lambda s: -s["wall"])


def render_summary(spans: list[dict], metrics: list[dict] | None = None) -> str:
    """Per-stage time/memory table (plus key metrics) for ``obs report``."""
    if not spans:
        return "trace contains no spans"
    stages = summarize_spans(spans)
    # % is relative to the top-level work: spans with no recorded parent
    # (chrome traces keep nesting visually, so fall back to the largest stage)
    roots = [s for s in spans if s.get("parent") is None and s.get("depth", 0) == 0]
    total_wall = (
        sum(s["duration"] for s in roots)
        if roots
        else max(stage["wall"] for stage in stages)
    )
    rows = []
    for stage in stages:
        mem = (
            f"{stage['mem_delta'] / 1024.0:+.0f}K" if stage["has_mem"] else "-"
        )
        rows.append(
            [
                stage["stage"],
                stage["calls"],
                f"{stage['wall'] * 1e3:.1f}",
                f"{100.0 * stage['wall'] / total_wall:.1f}%" if total_wall else "-",
                f"{stage['mean_wall'] * 1e3:.2f}",
                f"{stage['max_wall'] * 1e3:.2f}",
                f"{stage['cpu'] * 1e3:.1f}",
                mem,
                stage["rss_kb"],
            ]
        )
    text = render_table(
        ["stage", "calls", "wall ms", "%", "mean ms", "max ms",
         "cpu ms", "alloc", "rss KiB"],
        rows,
        title="Per-stage observability summary",
    )
    if metrics:
        lines = [text, "", "Metrics:"]
        for row in metrics:
            labels = ",".join(
                f"{k}={v}" for k, v in sorted(row.get("labels", {}).items())
            )
            name = f"{row['name']}{{{labels}}}" if labels else row["name"]
            if row["kind"] == "histogram":
                value = (
                    f"n={row['count']} mean={row['mean']:.4g}"
                    if row.get("count")
                    else "n=0"
                )
            else:
                value = f"{row['value']:.6g}"
            lines.append(f"  {name:44s} {value}")
        text = "\n".join(lines)
    return text
