"""Prometheus text-format 0.0.4 exposition of the metrics registry.

Translates the repo's dot-path metric naming into Prometheus conventions:

* names are mangled (``serve.requests_total`` →
  ``repro_serve_requests_total``; any character outside
  ``[a-zA-Z0-9_:]`` becomes ``_``, a leading digit gains a prefix);
* counters keep / gain the ``_total`` suffix;
* histograms expand into cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` and ``_count`` (our per-bucket counts are disjoint, the
  exposition converts to Prometheus's cumulative convention);
* label values are escaped per the spec (backslash, quote, newline).

Two renderers: :func:`render_registry_rows` for a single process's
registry snapshot, and :func:`render_fleet` for the merged multiprocess
view (per-worker gauges get a ``worker`` label, counters/histograms are
fleet sums, and each live worker contributes a
``repro_worker_up{worker=...,generation=...}`` liveness series).

:func:`validate_exposition` is a deliberately strict parser used by the
CI serve-smoke job: every ``# TYPE`` declared exactly once and before
its samples, no duplicate series, well-formed names/labels, cumulative
histogram buckets ending in a ``+Inf`` bucket that equals ``_count``.
"""

from __future__ import annotations

import math
import re

from repro.errors import ObsError

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def mangle_name(name: str, *, namespace: str = "repro") -> str:
    """Dot-path metric name → legal Prometheus metric name."""
    out = _INVALID_CHARS.sub("_", name)
    if namespace:
        out = f"{namespace}_{out}"
    if not out or not (out[0].isalpha() or out[0] in "_:"):
        out = f"_{out}"
    return out


def escape_label_value(value) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_le(bound) -> str:
    if bound is None or (isinstance(bound, float) and math.isinf(bound)):
        return "+Inf"
    return f"{float(bound):g}"


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_INVALID_CHARS.sub("_", str(k))}="{escape_label_value(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


class _Exposition:
    """Accumulates families + samples, renders the text format."""

    def __init__(self) -> None:
        self._families: dict[str, str] = {}  # name -> type
        self._order: list[str] = []
        self._samples: dict[str, list[tuple[str, dict, float]]] = {}

    def family(self, name: str, kind: str) -> None:
        if name not in self._families:
            self._families[name] = kind
            self._order.append(name)
            self._samples[name] = []
        elif self._families[name] != kind:
            raise ObsError(
                f"metric family {name!r} declared as both "
                f"{self._families[name]} and {kind}"
            )

    def sample(self, family: str, name: str, labels: dict, value) -> None:
        self._samples[family].append((name, dict(labels), float(value)))

    def render(self) -> str:
        lines: list[str] = []
        for family in self._order:
            lines.append(f"# TYPE {family} {self._families[family]}")
            for name, labels, value in self._samples[family]:
                lines.append(
                    f"{name}{_labels_text(labels)} {format_value(value)}"
                )
        return "\n".join(lines) + "\n"


def _add_row(expo: _Exposition, row: dict, extra_labels: dict | None = None) -> None:
    labels = dict(row["labels"])
    if extra_labels:
        labels.update(extra_labels)
    kind = row["kind"]
    name = mangle_name(row["name"])
    if kind == "counter":
        if not name.endswith("_total"):
            name += "_total"
        expo.family(name, "counter")
        expo.sample(name, name, labels, row["value"])
    elif kind == "gauge":
        expo.family(name, "gauge")
        value = row["value"]
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return
        expo.sample(name, name, labels, value)
    elif kind == "histogram":
        expo.family(name, "histogram")
        cumulative = 0
        saw_inf = False
        for bound, count in row["buckets"]:
            cumulative += count
            le = _format_le(bound)
            saw_inf = saw_inf or le == "+Inf"
            expo.sample(
                name, f"{name}_bucket", {**labels, "le": le}, cumulative
            )
        if not saw_inf:
            expo.sample(
                name, f"{name}_bucket", {**labels, "le": "+Inf"}, row["count"]
            )
        expo.sample(name, f"{name}_sum", labels, row["sum"])
        expo.sample(name, f"{name}_count", labels, row["count"])


def render_registry_rows(rows: list[dict], *, worker: int | None = None) -> str:
    """Exposition for one process's registry snapshot rows."""
    expo = _Exposition()
    extra = {"worker": worker} if worker is not None else None
    for row in rows:
        _add_row(expo, row, extra)
    return expo.render()


def render_fleet(snapshots, *, gauge_strategy: str = "last") -> str:
    """Exposition of the merged fleet view from worker metrics files.

    Counters and histograms are fleet-wide sums over the live snapshots;
    gauges stay per-worker (a ``worker`` label) because summing a queue
    depth across workers and last-writing an RSS both lose the signal
    operators actually chart.  Each snapshot also contributes
    ``repro_worker_up{worker,pid,generation} 1``.
    """
    from repro.obs.mpmetrics import merge_snapshots

    expo = _Exposition()
    merged = merge_snapshots(snapshots, gauge_strategy=gauge_strategy)
    for row in merged:
        if row["kind"] != "gauge":
            _add_row(expo, row)
    for snapshot in snapshots:
        for row in snapshot.rows:
            if row["kind"] == "gauge":
                _add_row(expo, row, {"worker": snapshot.worker})
    up = mangle_name("worker_up")
    expo.family(up, "gauge")
    for snapshot in snapshots:
        expo.sample(
            up, up,
            {
                "worker": snapshot.worker,
                "pid": snapshot.pid,
                "generation": snapshot.generation,
            },
            1 if snapshot.alive else 0,
        )
    return expo.render()


# ----------------------------------------------------------------------
# Strict parsing / validation (the CI scrape gate)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _parse_labels(text: str) -> dict:
    labels: dict[str, str] = {}
    rest = text.strip()
    while rest:
        match = _LABEL_RE.match(rest)
        if not match:
            raise ObsError(f"malformed label pair at {rest!r}")
        name = match.group("name")
        if name in labels:
            raise ObsError(f"duplicate label name {name!r}")
        labels[name] = (
            match.group("value")
            .replace(r"\"", '"')
            .replace(r"\n", "\n")
            .replace("\\\\", "\\")
        )
        rest = rest[match.end():].lstrip()
        if rest.startswith(","):
            rest = rest[1:].lstrip()
        elif rest:
            raise ObsError(f"expected ',' between labels at {rest!r}")
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_exposition(text: str) -> tuple[dict, dict]:
    """Strictly parse exposition text.

    Returns ``(families, series)`` where *families* maps family name →
    type and *series* maps ``(sample name, sorted label items)`` → value.
    Raises :class:`~repro.errors.ObsError` on any spec violation:
    re-declared or missing ``# TYPE``, duplicate series, malformed names,
    labels or values, non-cumulative histogram buckets, or a histogram
    whose ``+Inf`` bucket disagrees with its ``_count``.
    """
    families: dict[str, str] = {}
    series: dict[tuple, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ObsError(f"line {lineno}: malformed TYPE comment")
                _, _, name, kind = parts
                if kind not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ObsError(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                if name in families:
                    raise ObsError(
                        f"line {lineno}: # TYPE {name} declared twice"
                    )
                if not _NAME_RE.match(name):
                    raise ObsError(
                        f"line {lineno}: illegal metric name {name!r}"
                    )
                families[name] = kind
            continue  # HELP and other comments are free-form
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ObsError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        try:
            labels = _parse_labels(match.group("labels") or "")
            value = _parse_value(match.group("value"))
        except (ObsError, ValueError) as error:
            raise ObsError(f"line {lineno}: {error}") from None
        family = _family_of(name, families)
        if family is None:
            raise ObsError(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        for label in labels:
            if not _LABEL_NAME_RE.match(label):
                raise ObsError(
                    f"line {lineno}: illegal label name {label!r}"
                )
        key = (name, tuple(sorted(labels.items())))
        if key in series:
            raise ObsError(f"line {lineno}: duplicate series {key!r}")
        series[key] = value
    _validate_histograms(families, series)
    return families, series


def _family_of(name: str, families: dict) -> str | None:
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if families.get(base) in ("histogram", "summary"):
                return base
    return None


def _validate_histograms(families: dict, series: dict) -> None:
    # group bucket series per histogram child (labels minus 'le')
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    for (name, labels), value in series.items():
        if not name.endswith("_bucket"):
            continue
        base = name[: -len("_bucket")]
        if families.get(base) != "histogram":
            continue
        label_map = dict(labels)
        le = label_map.pop("le", None)
        if le is None:
            raise ObsError(f"histogram bucket {name!r} is missing 'le'")
        key = (base, tuple(sorted(label_map.items())))
        buckets.setdefault(key, []).append((_parse_value(le), value))
    for (base, labels), pairs in buckets.items():
        pairs.sort(key=lambda p: p[0])
        previous = 0.0
        for bound, value in pairs:
            if value < previous:
                raise ObsError(
                    f"{base}: bucket counts not cumulative at le={bound}"
                )
            previous = value
        if not pairs or not math.isinf(pairs[-1][0]):
            raise ObsError(f"{base}: histogram has no le=\"+Inf\" bucket")
        count = series.get((f"{base}_count", labels))
        if count is not None and count != pairs[-1][1]:
            raise ObsError(
                f"{base}: +Inf bucket {pairs[-1][1]} != _count {count}"
            )


def validate_exposition(text: str) -> tuple[dict, dict]:
    """Alias of :func:`parse_exposition`, named for intent at call sites."""
    return parse_exposition(text)
