"""Bridge from the training runtime's callback protocol into ``repro.obs``.

:class:`ObsTrainCallback` mirrors ``repro.flows.runtime.TrainCallback``
without importing it (the runtime imports this package, so a real subclass
would be a cycle; the protocol is structural anyway).  It converts every
``EpochMetrics`` into registry updates, so a traced training run yields
loss/grad-norm/epoch-time distributions alongside the span tree.
"""

from __future__ import annotations

from repro.obs import metrics as _metrics

#: Buckets for per-epoch wall time, seconds.
EPOCH_SECONDS_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, float("inf")
)


class ObsTrainCallback:
    """Feed per-epoch training metrics into a :class:`MetricsRegistry`."""

    def __init__(self, registry: "_metrics.MetricsRegistry | None" = None):
        # resolved lazily so a pickled callback rebinds to the worker's
        # process-local registry instead of a stale copy
        self._registry = registry

    def _reg(self) -> "_metrics.MetricsRegistry":
        if self._registry is not None:
            return self._registry
        from repro import obs

        return obs.registry()

    def on_train_start(self, ctx) -> None:
        self._reg().inc("train.runs_total", target=ctx.target)

    def on_epoch_end(self, ctx, metrics) -> None:
        reg = self._reg()
        reg.inc("train.epochs_total", target=ctx.target)
        reg.set("train.loss", metrics.loss, target=ctx.target)
        reg.observe("train.grad_norm", metrics.grad_norm, target=ctx.target)
        reg.observe(
            "train.epoch_seconds",
            metrics.seconds,
            buckets=EPOCH_SECONDS_BUCKETS,
            target=ctx.target,
        )

    def on_divergence(self, ctx, epoch, reason) -> None:
        self._reg().inc("train.divergences_total", target=ctx.target)

    def on_checkpoint(self, ctx, path) -> None:
        self._reg().inc("train.checkpoints_total", target=ctx.target)

    def on_train_end(self, ctx, history) -> None:
        reg = self._reg()
        reg.set("train.final_loss", history.final_loss, target=ctx.target)
        if history.stopped_early:
            reg.inc("train.early_stops_total", target=ctx.target)

    def __getstate__(self):
        # never pickle a registry across processes; rebind on the far side
        return {"_registry": None}

    def __setstate__(self, state):
        self._registry = None
