"""Micro-batching executor: group concurrent requests into merged batches.

Individual requests trickle in (HTTP handlers, ``Engine.predict_batch``
fan-out); the GNN forward pass is much cheaper per circuit when several
circuits share one merged forward.  :class:`BatchExecutor` bridges the two:
requests enter a bounded queue, worker threads drain up to ``max_batch``
items at a time and hand the group to a batch handler, and each caller
gets its own :class:`concurrent.futures.Future`.

Backpressure is explicit: a full queue rejects immediately with
:class:`~repro.errors.ServeOverloadedError` (no unbounded buffering), and
each item can carry a deadline after which it is failed with
:class:`~repro.errors.ServeTimeoutError` instead of being processed.

Observable via ``repro.obs``: ``serve.queue_depth`` (gauge),
``serve.batches_total`` / ``serve.rejected_total`` / ``serve.timeouts_total``
(counters) and ``serve.batch_size`` (histogram).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Any, Callable, Sequence

from repro import obs
from repro.errors import ServeError, ServeOverloadedError, ServeTimeoutError

#: Histogram buckets for micro-batch sizes.
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, float("inf"))


class _Item:
    __slots__ = ("payload", "future", "deadline", "enqueued")

    def __init__(
        self,
        payload: Any,
        future: Future,
        deadline: float | None,
        enqueued: float,
    ):
        self.payload = payload
        self.future = future
        self.deadline = deadline
        self.enqueued = enqueued  # monotonic submit time, for queue-wait


class BatchExecutor:
    """Worker pool that processes queued items in groups.

    Parameters
    ----------
    handler:
        ``handler(payloads) -> results`` called with 1..``max_batch``
        payloads; must return one result per payload, in order.  A result
        that is an :class:`Exception` instance fails only its own item;
        a raised exception fails the whole group.
    max_batch:
        Largest group handed to ``handler`` at once.
    queue_depth:
        Queue capacity; :meth:`submit` beyond it raises
        :class:`ServeOverloadedError`.
    workers:
        Number of worker threads draining the queue.
    timeout_s:
        Default per-item deadline (``None`` = no deadline).
    """

    def __init__(
        self,
        handler: Callable[[Sequence[Any]], Sequence[Any]],
        *,
        max_batch: int = 16,
        queue_depth: int = 128,
        workers: int = 2,
        timeout_s: float | None = None,
        name: str = "serve",
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.handler = handler
        self.max_batch = max_batch
        self.queue_depth = queue_depth
        self.timeout_s = timeout_s
        self.name = name
        self._queue: deque[_Item] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"{name}-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def submit(self, payload: Any, *, timeout_s: float | None = None) -> Future:
        """Enqueue one payload; returns its Future.

        Raises
        ------
        ServeOverloadedError
            When the queue is at capacity (typed backpressure signal).
        ServeError
            When the executor has been shut down.
        """
        future: Future = Future()
        now = time.monotonic()
        deadline_s = self.timeout_s if timeout_s is None else timeout_s
        deadline = now + deadline_s if deadline_s is not None else None
        with self._cond:
            if self._closed:
                raise ServeError(f"executor {self.name!r} is shut down")
            if len(self._queue) >= self.queue_depth:
                obs.inc("serve.rejected_total")
                raise ServeOverloadedError(
                    f"serving queue full ({self.queue_depth} pending)",
                    queue_depth=self.queue_depth,
                )
            self._queue.append(_Item(payload, future, deadline, now))
            obs.set_gauge("serve.queue_depth", len(self._queue))
            self._cond.notify()
        return future

    def pending(self) -> int:
        """Items currently queued (not yet claimed by a worker)."""
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
                group = [
                    self._queue.popleft()
                    for _ in range(min(self.max_batch, len(self._queue)))
                ]
                obs.set_gauge("serve.queue_depth", len(self._queue))
            self._process(group)

    def _process(self, group: list[_Item]) -> None:
        # Expired items are dropped *before* batching, and every resolution
        # is gated through set_running_or_notify_cancel: it is the single
        # pending->running transition, so an item can never be resolved
        # twice (no InvalidStateError under load) and a caller-cancelled
        # future is simply skipped.  serve.timeouts_total counts only items
        # whose future we actually failed with ServeTimeoutError.
        now = time.monotonic()
        live: list[_Item] = []
        for item in group:
            if not item.future.set_running_or_notify_cancel():
                continue  # cancelled by the caller; nothing left to resolve
            if item.deadline is not None and now > item.deadline:
                obs.inc("serve.timeouts_total")
                item.future.set_exception(
                    ServeTimeoutError("request timed out while queued")
                )
            else:
                wait = max(0.0, now - item.enqueued)
                # piggybacked on the future so the engine can report the
                # queue wait in the result's timing without an extra channel
                item.future.queue_wait_s = wait
                obs.observe("serve.queue_wait_seconds", wait)
                live.append(item)
        if not live:
            return
        obs.inc("serve.batches_total")
        obs.observe(
            "serve.batch_size", len(live), buckets=BATCH_SIZE_BUCKETS
        )
        try:
            results = self.handler([item.payload for item in live])
        except Exception as error:  # group-level failure
            for item in live:
                item.future.set_exception(error)
            return
        if len(results) != len(live):
            error = ServeError(
                f"batch handler returned {len(results)} results "
                f"for {len(live)} items"
            )
            for item in live:
                item.future.set_exception(error)
            return
        for item, result in zip(live, results):
            if isinstance(result, Exception):
                item.future.set_exception(result)
            else:
                item.future.set_result(result)

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for the queue to drain."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
