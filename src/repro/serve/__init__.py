"""``repro.serve`` — batched inference serving on top of ``repro.api``.

The deployment-side subsystem: :class:`ModelRegistry` (discover, warm-load
and content-hash-version saved models), :class:`GraphCache` (LRU of built
graphs + scaled features keyed by circuit content hash),
:class:`BatchExecutor` (micro-batching worker pool with typed
backpressure) and :class:`PredictionServer` (stdlib JSON-over-HTTP
``/predict`` + ``/healthz`` + ``/metrics``).

Exports resolve lazily (PEP 562); see :mod:`repro.api` for why.
"""

from typing import Any

__all__ = [
    "ModelRegistry",
    "RegistryEntry",
    "load_model",
    "artifact_version",
    "GraphCache",
    "CachedGraph",
    "circuit_fingerprint",
    "scaler_fingerprint",
    "BatchExecutor",
    "PredictionServer",
    "request_from_json",
    "ServeError",
    "ServeOverloadedError",
    "ServeTimeoutError",
]

_EXPORTS = {
    "ModelRegistry": "repro.serve.registry",
    "RegistryEntry": "repro.serve.registry",
    "load_model": "repro.serve.registry",
    "artifact_version": "repro.serve.registry",
    "GraphCache": "repro.serve.cache",
    "CachedGraph": "repro.serve.cache",
    "circuit_fingerprint": "repro.serve.cache",
    "scaler_fingerprint": "repro.serve.cache",
    "BatchExecutor": "repro.serve.executor",
    "PredictionServer": "repro.serve.http",
    "request_from_json": "repro.serve.http",
    "ServeError": "repro.errors",
    "ServeOverloadedError": "repro.errors",
    "ServeTimeoutError": "repro.errors",
}


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
