"""``repro.serve`` — batched inference serving on top of ``repro.api``.

The deployment-side subsystem: :class:`ModelRegistry` (discover, warm-load
and content-hash-version saved models), :class:`GraphCache` (LRU of built
graphs + scaled features keyed by circuit content hash),
:class:`BatchExecutor` (micro-batching worker pool with typed
backpressure) and :class:`PredictionServer` (stdlib JSON-over-HTTP
``/predict`` + ``/healthz`` + ``/metrics``).

Scale-out lives in :mod:`repro.serve.pool` / :mod:`repro.serve.shm`:
:class:`ServerPool` pre-forks N worker processes behind one port, every
worker mapping the same published shared-memory weight segment read-only
and owning one consistent-hash shard of the graph-cache keyspace; see
``docs/serving.md``.

Exports resolve lazily (PEP 562); see :mod:`repro.api` for why.
"""

from typing import Any

__all__ = [
    "ModelRegistry",
    "RegistryEntry",
    "load_model",
    "artifact_version",
    "GraphCache",
    "CachedGraph",
    "circuit_fingerprint",
    "scaler_fingerprint",
    "BatchExecutor",
    "PredictionServer",
    "request_from_json",
    "ServerPool",
    "PoolConfig",
    "HashRing",
    "ShardedGraphCache",
    "create_pool",
    "publish_arrays",
    "attach_arrays",
    "publish_registry_weights",
    "adopt_weight_arrays",
    "PublishedArrays",
    "AttachedArrays",
    "ServeError",
    "ServeOverloadedError",
    "ServeTimeoutError",
]

_EXPORTS = {
    "ModelRegistry": "repro.serve.registry",
    "RegistryEntry": "repro.serve.registry",
    "load_model": "repro.serve.registry",
    "artifact_version": "repro.serve.registry",
    "GraphCache": "repro.serve.cache",
    "CachedGraph": "repro.serve.cache",
    "circuit_fingerprint": "repro.serve.cache",
    "scaler_fingerprint": "repro.serve.cache",
    "BatchExecutor": "repro.serve.executor",
    "PredictionServer": "repro.serve.http",
    "request_from_json": "repro.serve.http",
    "ServerPool": "repro.serve.pool",
    "PoolConfig": "repro.serve.pool",
    "HashRing": "repro.serve.pool",
    "ShardedGraphCache": "repro.serve.pool",
    "create_pool": "repro.serve.pool",
    "publish_arrays": "repro.serve.shm",
    "attach_arrays": "repro.serve.shm",
    "publish_registry_weights": "repro.serve.shm",
    "adopt_weight_arrays": "repro.serve.shm",
    "PublishedArrays": "repro.serve.shm",
    "AttachedArrays": "repro.serve.shm",
    "ServeError": "repro.errors",
    "ServeOverloadedError": "repro.errors",
    "ServeTimeoutError": "repro.errors",
}


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
