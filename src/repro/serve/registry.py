"""Model discovery, warm loading and content-hash versioning.

A serving process should load model weights exactly once, know *which*
weights it is serving, and notice when an artifact on disk changed.
:class:`ModelRegistry` does all three over the repo's three persisted model
shapes:

* ``<name>.npz`` — a single :meth:`TargetPredictor.save` artifact,
* a directory with ``ensemble.json`` — a
  :meth:`CapacitanceEnsemble.save_dir` artifact,
* a directory of per-target ``*.npz`` files — a
  :meth:`MultiTargetModel.save_dir` suite.

Every entry carries a **version**: the truncated SHA-256 of the artifact's
bytes (for directories, of the sorted ``(filename, file-hash)`` pairs), so
two registries serving the same bytes report the same version and any
retrain changes it.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Iterator

from repro import obs
from repro.errors import ApiError

#: Hex digits kept from the SHA-256 artifact digest.
VERSION_LEN = 12


def _hash_file(path: str, hasher=None) -> str:
    hasher = hasher or hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def artifact_version(path: str | os.PathLike) -> str:
    """Content-hash version of a saved model file or directory."""
    path = os.fspath(path)
    if os.path.isfile(path):
        return _hash_file(path)[:VERSION_LEN]
    hasher = hashlib.sha256()
    for entry in sorted(os.listdir(path)):
        full = os.path.join(path, entry)
        if os.path.isfile(full):
            hasher.update(entry.encode())
            hasher.update(_hash_file(full).encode())
    return hasher.hexdigest()[:VERSION_LEN]


def load_model(path: str | os.PathLike):
    """Load whichever model family is saved at *path* (sniffed by shape)."""
    from repro.ensemble.ensemble import CapacitanceEnsemble
    from repro.flows.training import MultiTargetModel
    from repro.models.multitask import MultiTaskPredictor
    from repro.models.trainer import TargetPredictor

    path = os.fspath(path)
    if os.path.isfile(path):
        import json

        import numpy as np

        with np.load(path) as archive:
            meta = (
                json.loads(str(archive["meta"]))
                if "meta" in archive.files
                else {}
            )
        if meta.get("target") == "multitask":
            return MultiTaskPredictor.load(path)
        return TargetPredictor.load(path)
    if os.path.isdir(path):
        if os.path.exists(os.path.join(path, "ensemble.json")):
            return CapacitanceEnsemble.load_dir(path)
        if any(entry.endswith(".npz") for entry in os.listdir(path)):
            return MultiTargetModel.load_dir(path)
    raise ApiError(f"no loadable model at {path!r}")


@dataclass
class RegistryEntry:
    """One servable model: identity, provenance and the warm adapter."""

    name: str
    family: str
    version: str
    targets: tuple[str, ...]
    model: object
    adapter: object
    path: str | None = None


@dataclass
class ModelRegistry:
    """Named collection of warm-loaded models the engine serves from.

    Registration can race with lookups from HTTP handler threads, so the
    entry map is guarded by an RLock (reentrant: ``load`` -> ``register``
    and ``get`` from within ``entries`` iterate under the same lock).
    Lock order: the registry lock is a leaf — never call out to engine or
    adapter code while holding it (see docs/architecture.md).
    """

    _entries: dict[str, RegistryEntry] = field(default_factory=dict)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        model,
        *,
        path: str | os.PathLike | None = None,
        version: str | None = None,
    ) -> RegistryEntry:
        """Add an in-memory model under *name*.

        ``version`` defaults to the artifact hash when *path* is given,
        else ``"unsaved"``.
        """
        from repro.api.adapters import make_adapter

        # Build the entry before taking the lock: adapter construction and
        # artifact hashing are slow, and the lock stays a leaf.
        adapter = make_adapter(model)
        if version is None:
            version = artifact_version(path) if path is not None else "unsaved"
        entry = RegistryEntry(
            name=name,
            family=adapter.family,
            version=version,
            targets=tuple(adapter.targets),
            model=model,
            adapter=adapter,
            path=os.fspath(path) if path is not None else None,
        )
        with self._lock:
            if name in self._entries:
                raise ApiError(f"model {name!r} is already registered")
            self._entries[name] = entry
        obs.inc("serve.models_registered_total")
        return entry

    def load(self, name: str, path: str | os.PathLike) -> RegistryEntry:
        """Load one artifact from disk and register it under *name*."""
        return self.register(name, load_model(path), path=path)

    @classmethod
    def discover(cls, root: str | os.PathLike) -> "ModelRegistry":
        """Scan *root* for saved models and warm-load every one.

        Children of *root* are registered under their basename (without the
        ``.npz`` suffix for single predictors).  A *root* that is itself a
        single artifact registers one entry named after it.
        """
        root = os.fspath(root)
        registry = cls()
        if not os.path.exists(root):
            raise ApiError(f"model root {root!r} does not exist")
        candidates: list[tuple[str, str]] = []
        if os.path.isfile(root) or os.path.exists(
            os.path.join(root, "ensemble.json")
        ):
            base = os.path.basename(root.rstrip(os.sep))
            candidates.append((_entry_name(base), root))
        else:
            for child in sorted(os.listdir(root)):
                full = os.path.join(root, child)
                if os.path.isfile(full) and child.endswith(".npz"):
                    candidates.append((_entry_name(child), full))
                elif os.path.isdir(full):
                    candidates.append((_entry_name(child), full))
            if not candidates and any(
                entry.endswith(".npz") for entry in os.listdir(root)
            ):  # pragma: no cover - defensive; .npz children caught above
                candidates.append((os.path.basename(root), root))
        for name, path in candidates:
            try:
                registry.load(name, path)
            except ApiError:
                continue  # not a model artifact; skip quietly
        if not registry:
            raise ApiError(f"no loadable models under {root!r}")
        return registry

    # ------------------------------------------------------------------
    def get(self, name: str | None = None) -> RegistryEntry:
        """Entry by name; ``None`` resolves the default model.

        The default is the single registered model, or the entry literally
        named ``"default"`` when several are registered.
        """
        with self._lock:
            if name is None:
                if len(self._entries) == 1:
                    return next(iter(self._entries.values()))
                if "default" in self._entries:
                    return self._entries["default"]
                raise ApiError(
                    "no model name given and no default among "
                    f"{sorted(self._entries)}"
                )
            try:
                return self._entries[name]
            except KeyError:
                raise ApiError(
                    f"unknown model {name!r}; registered: "
                    f"{sorted(self._entries)}"
                ) from None

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._entries))

    def entries(self) -> Iterator[RegistryEntry]:
        # Snapshot under the lock; never yield while holding it.
        with self._lock:
            snapshot = [self._entries[name] for name in sorted(self._entries)]
        yield from snapshot

    def reinit_after_fork(self) -> None:
        """Make this registry safe in a freshly forked child.

        The lock may have been held by a parent thread at fork time;
        that thread does not exist in the child, so the inherited lock
        would deadlock on first use.  Entries are shared state by design
        (the child serves the parent's adopted shared-memory weights)
        and are kept.  Only call while the child is still
        single-threaded.
        """
        self._lock = threading.RLock()

    def describe(self) -> list[dict]:
        """JSON-ready summary rows (the ``/healthz`` model inventory)."""
        return [
            {
                "name": entry.name,
                "family": entry.family,
                "version": entry.version,
                "targets": list(entry.targets),
                "path": entry.path,
            }
            for entry in self.entries()
        ]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self._entries)


def _entry_name(basename: str) -> str:
    return basename[:-4] if basename.endswith(".npz") else basename
