"""Pre-fork worker pool: multi-process serving behind one port.

One Python process cannot serve heavy traffic — the GIL caps it no
matter how fast the kernels get — so the deployment unit is a
:class:`ServerPool`: N forked worker processes, each running the full
:class:`~repro.serve.http.PredictionServer` stack over the **same**
weight bytes.

Architecture (see ``docs/serving.md``):

* **Listeners** — with ``SO_REUSEPORT`` (Linux/BSD) every worker owns its
  own listening socket bound to the same address and the kernel spreads
  accepts across them; elsewhere the parent binds once pre-fork and every
  worker accepts on the inherited listener.
* **Weights** — the parent warm-loads the :class:`ModelRegistry` once,
  publishes every parameter into one shared-memory segment
  (:mod:`repro.serve.shm`) and adopts the read-only views *before*
  forking, so workers inherit the mapping and per-worker incremental RSS
  excludes the model entirely.
* **Cache sharding** — circuit content-hashes are placed on a consistent
  hash ring (:class:`HashRing`); each worker's LRU
  :class:`~repro.serve.cache.GraphCache` only admits fingerprints it
  owns (:class:`ShardedGraphCache`), so N workers partition the cache
  keyspace instead of holding N copies.
* **Drain / reload** — SIGTERM makes a worker stop accepting, finish
  in-flight requests, flush its :class:`BatchExecutor` and exit;
  :meth:`ServerPool.reload` detects artifact version bumps, publishes a
  new weight generation, starts replacement workers and only then
  retires the old ones (zero dropped requests).

Everything is stdlib: ``os.fork``, ``socket``, ``signal``,
``multiprocessing.shared_memory``.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import selectors
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, replace

from repro import obs
from repro.errors import ServeError
from repro.nn import precision
from repro.obs import mpmetrics
from repro.serve.cache import GraphCache
from repro.serve.registry import ModelRegistry, artifact_version
from repro.serve.shm import (
    PublishedArrays,
    adopt_weight_arrays,
    publish_registry_weights,
)

#: Seconds a draining worker gets before SIGKILL.
DEFAULT_DRAIN_TIMEOUT_S = 15.0
#: Seconds to wait for a forked worker's readiness handshake.
READY_TIMEOUT_S = 60.0


# ----------------------------------------------------------------------
# Consistent-hash sharding
# ----------------------------------------------------------------------
class HashRing:
    """Consistent hashing of content-hash keys onto worker shards.

    Each shard owns ``replicas`` virtual points on a 64-bit ring; a key
    belongs to the first point clockwise from its own hash.  Adding or
    removing one shard moves only ~1/N of the keyspace, so a rolling
    resize does not invalidate every worker's cache at once.
    """

    def __init__(self, shards: int, *, replicas: int = 64):
        if shards < 1:
            raise ValueError("need at least one shard")
        if replicas < 1:
            raise ValueError("need at least one replica per shard")
        self.shards = shards
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append((self._hash(f"shard-{shard}-{replica}"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.sha256(key.encode()).digest()[:8], "big"
        )

    def shard_for(self, key: str) -> int:
        """Owning shard index for a key (a circuit fingerprint)."""
        index = bisect.bisect_right(self._points, self._hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]


class ShardedGraphCache(GraphCache):
    """A :class:`GraphCache` that only admits fingerprints its shard owns.

    Foreign-shard circuits are still *served* (the graph is built, used
    and discarded) — the admission veto just keeps each worker's LRU a
    disjoint slice of the keyspace, so the pool's aggregate cache is N
    partitions rather than N replicas.
    """

    def __init__(
        self,
        shard: int,
        shards: int,
        *,
        max_entries: int = 256,
        max_bytes: int | None = None,
        ring: HashRing | None = None,
    ):
        super().__init__(max_entries=max_entries, max_bytes=max_bytes)
        if not 0 <= shard < shards:
            raise ValueError(f"shard {shard} outside 0..{shards - 1}")
        self.shard = shard
        self.ring = ring or HashRing(shards)
        self.foreign = 0  # lookups for fingerprints another shard owns

    def admits(self, fingerprint: str) -> bool:
        owned = self.owns(fingerprint)
        if not owned:
            # plain int increment: GIL-atomic, stats-only
            self.foreign += 1
            obs.inc("serve.shard_foreign_total")
        return owned

    def owns(self, fingerprint: str) -> bool:
        """Ring lookup without the foreign-counter side effect."""
        return self.ring.shard_for(fingerprint) == self.shard

    def describe_shard(self) -> dict:
        """JSON-ready shard identity for ``/metrics``."""
        return {
            "shard": self.shard,
            "shards": self.ring.shards,
            "foreign_lookups": self.foreign,
        }


# ----------------------------------------------------------------------
# Pool configuration / worker bookkeeping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PoolConfig:
    """Sizing and behaviour knobs for a :class:`ServerPool`."""

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    #: "auto" | "reuseport" | "inherit"
    strategy: str = "auto"
    #: per-worker engine sizing (threads = BatchExecutor workers)
    cache_size: int = 256
    cache_bytes: int | None = None
    max_batch: int = 16
    queue_depth: int = 128
    threads: int = 2
    timeout_s: float | None = None
    #: serving compute precision (weights cast at load; float32 default)
    dtype: str = "float32"
    #: kernel backend for worker forwards (None = REPRO_BACKEND / default)
    backend: str | None = None
    shard_cache: bool = True
    ring_replicas: int = 64
    drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S
    quiet: bool = True
    #: directory for per-worker mmap metrics files (None = auto temp dir,
    #: created by start() and removed by stop())
    metrics_dir: str | None = None
    #: structured JSON access-log path (None = no access log)
    access_log: str | None = None


@dataclass
class WorkerInfo:
    """Parent-side record of one live worker process."""

    index: int
    pid: int
    generation: int
    listener: socket.socket | None = None  # reuseport: this worker's socket


def _resolve_strategy(strategy: str) -> str:
    if strategy == "auto":
        return "reuseport" if hasattr(socket, "SO_REUSEPORT") else "inherit"
    if strategy not in ("reuseport", "inherit"):
        raise ServeError(f"unknown listener strategy {strategy!r}")
    if strategy == "reuseport" and not hasattr(socket, "SO_REUSEPORT"):
        raise ServeError("SO_REUSEPORT is not available on this platform")
    return strategy


def _make_listener(host: str, port: int, *, reuseport: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


def _process_rss_kb() -> int:
    """Current RSS of this process in KiB (0 when /proc is unavailable)."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * (os.sysconf("SC_PAGESIZE") // 1024)
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return 0


# ----------------------------------------------------------------------
# Worker (child) side
# ----------------------------------------------------------------------
def _child_main(
    index: int,
    config: PoolConfig,
    registry: ModelRegistry,
    listener: socket.socket,
    ready_fd: int,
    generation: int,
) -> "None":  # never returns: always os._exit
    status = 0
    try:
        from repro.api.engine import Engine, EngineConfig
        from repro.serve.http import PredictionServer

        # The parent may fork while *other* threads (test harness,
        # telemetry) hold the obs or registry locks; those threads do not
        # exist in this child, so every inherited lock / threading.local
        # must be replaced while we are still single-threaded.  The
        # `fork-safety` whole-program check verifies this covers every
        # lock-owning object that crosses the fork.
        obs.reinit_after_fork()
        registry.reinit_after_fork()
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent drives shutdown
        term_early = {"hit": False}
        signal.signal(
            signal.SIGTERM, lambda *_: term_early.__setitem__("hit", True)
        )

        if config.shard_cache and config.workers > 1:
            cache: GraphCache = ShardedGraphCache(
                index,
                config.workers,
                max_entries=config.cache_size,
                max_bytes=config.cache_bytes,
                ring=HashRing(config.workers, replicas=config.ring_replicas),
            )
        else:
            cache = GraphCache(
                max_entries=config.cache_size, max_bytes=config.cache_bytes
            )
        engine = Engine(
            registry,
            config=EngineConfig(
                cache_size=config.cache_size,
                max_batch=config.max_batch,
                queue_depth=config.queue_depth,
                workers=config.threads,
                timeout_s=config.timeout_s,
                dtype=config.dtype,
                backend=config.backend,
            ),
            cache=cache,
        )

        # Fleet telemetry: collect metrics (bounded state, no spans) and
        # stream every registry mutation into this worker's mmap file so
        # the parent / any sibling can serve the merged fleet view.
        writer = None
        if config.metrics_dir:
            obs.enable_metrics()
            writer = mpmetrics.MetricsFileWriter(
                config.metrics_dir, worker=index, generation=generation
            )
            obs.registry().attach_mirror(writer)

            def _heartbeat(started=time.monotonic()):
                while True:
                    try:
                        obs.set_gauge("proc.rss_kb", _process_rss_kb())
                        obs.set_gauge(
                            "proc.uptime_s", time.monotonic() - started
                        )
                        executor = engine._executor
                        obs.set_gauge(
                            "serve.queue_depth",
                            executor.pending() if executor is not None else 0,
                        )
                    except Exception:  # pragma: no cover - telemetry only
                        pass
                    time.sleep(1.0)

            threading.Thread(
                target=_heartbeat, name="obs-heartbeat", daemon=True
            ).start()

        access_log = None
        if config.access_log:
            from repro.obs.requestlog import AccessLog

            access_log = AccessLog(config.access_log)
        server = PredictionServer(
            engine,
            socket=listener,
            worker_id=index,
            daemon_threads=False,  # drain joins in-flight handlers
            quiet=config.quiet,
            generation=generation,
            metrics_dir=config.metrics_dir or None,
            access_log=access_log,
        )

        def _drain(signum, frame):
            # Runs on the main thread mid-serve loop: hand the (blocking)
            # stop request to a helper thread; serve_forever then returns
            # and the epilogue below finishes in-flight work and exits.
            threading.Thread(
                target=server._server.shutdown, daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _drain)
        os.write(ready_fd, f"ready {server.port} gen {generation}\n".encode())
        os.close(ready_fd)
        if not term_early["hit"]:
            server.serve_forever()
        # Drain epilogue: stop accepting (already done), join in-flight
        # handler threads, flush the BatchExecutor queue, release sockets.
        server.shutdown()
        if writer is not None:
            # graceful exit: retire this worker's metrics file so the
            # merged view never mixes a dead pid's counts back in
            obs.registry().detach_mirror()
            writer.close(unlink=True)
    except BaseException:
        status = 1
        try:  # pragma: no cover - crash reporting only
            import traceback

            traceback.print_exc()
        except Exception:
            pass
    finally:
        os._exit(status)


# ----------------------------------------------------------------------
# Pool (parent) side
# ----------------------------------------------------------------------
class ServerPool:
    """Supervisor for N forked prediction-server workers.

    ``models`` is anything :func:`repro.api.create_engine` accepts (a
    saved-model directory, a registry, a mapping, one model).  The parent
    never serves traffic itself; it owns the shared weight segment, the
    listener strategy and the worker lifecycle.
    """

    def __init__(self, models, *, config: PoolConfig | None = None):
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            raise ServeError("ServerPool needs os.fork (POSIX only)")
        self.config = config or PoolConfig()
        if self.config.workers < 1:
            raise ServeError("ServerPool needs at least one worker")
        self._models = models
        self.registry = None  # parent's warm copy, populated by start()
        self.generation = 0
        self._published: PublishedArrays | None = None
        self._strategy = _resolve_strategy(self.config.strategy)
        self._shared_listener: socket.socket | None = None  # inherit mode
        self._port: int | None = None
        self._workers: list[WorkerInfo] = []
        self._lock = threading.Lock()
        self._started = False
        self._stopped = False
        self._owns_metrics_dir = False

    # -- properties ----------------------------------------------------
    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        if self._port is None:
            raise ServeError("pool is not started")
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def metrics_dir(self) -> str | None:
        """Directory holding the per-worker metrics files (after start)."""
        return self.config.metrics_dir

    def workers(self) -> list[WorkerInfo]:
        with self._lock:
            return list(self._workers)

    def pids(self) -> list[int]:
        return [worker.pid for worker in self.workers()]

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServerPool":
        """Load models, publish weights, bind listeners, fork workers."""
        if self._started:
            return self
        from repro.api.engine import _coerce_registry

        if self.config.metrics_dir is None:
            auto = os.path.join(
                tempfile.gettempdir(), f"repro-obs-{os.getpid()}"
            )
            self.config = replace(self.config, metrics_dir=auto)
            self._owns_metrics_dir = True
        os.makedirs(self.config.metrics_dir, exist_ok=True)

        # load under the pool's serving precision so the shared-memory
        # weight arrays every worker maps are already the serving dtype
        with precision.compute_dtype(self.config.dtype):
            self.registry = _coerce_registry(self._models)
        self._published = publish_registry_weights(
            self.registry, generation=self.generation
        )
        adopt_weight_arrays(self.registry, self._published.arrays)

        if self._strategy == "inherit":
            self._shared_listener = _make_listener(
                self.config.host, self.config.port, reuseport=False
            )
            self._port = self._shared_listener.getsockname()[1]
        else:
            # resolve an ephemeral port once; every worker rebinds it
            probe = _make_listener(
                self.config.host, self.config.port, reuseport=True
            )
            self._port = probe.getsockname()[1]
            self._first_listener: socket.socket | None = probe

        self._started = True
        for index in range(self.config.workers):
            self._spawn(index, self.generation)
        obs.set_gauge("serve.pool_workers", len(self._workers))
        return self

    def _next_listener(self) -> tuple[socket.socket, bool]:
        """(listener, parent_closes_after_fork) for the next worker."""
        if self._strategy == "inherit":
            assert self._shared_listener is not None
            return self._shared_listener, False
        first = getattr(self, "_first_listener", None)
        if first is not None:
            self._first_listener = None
            return first, True
        return (
            _make_listener(self.config.host, self.port, reuseport=True),
            True,
        )

    def _spawn(self, index: int, generation: int) -> WorkerInfo:
        listener, close_after_fork = self._next_listener()
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # -- child ------------------------------------------------
            os.close(read_fd)
            _child_main(
                index, self.config, self.registry, listener, write_fd,
                generation,
            )
            os._exit(1)  # pragma: no cover - _child_main never returns
        # -- parent ---------------------------------------------------
        os.close(write_fd)
        try:
            self._await_ready(read_fd, pid, index)
        finally:
            os.close(read_fd)
        info = WorkerInfo(
            index=index,
            pid=pid,
            generation=generation,
            listener=listener if close_after_fork else None,
        )
        if close_after_fork:
            # the child owns its copy; the parent's would only leak
            listener.close()
            info.listener = None
        with self._lock:
            self._workers.append(info)
        obs.inc("serve.pool_workers_spawned_total")
        return info

    def _await_ready(self, read_fd: int, pid: int, index: int) -> None:
        deadline = time.monotonic() + READY_TIMEOUT_S
        buffer = b""
        with selectors.DefaultSelector() as selector:
            selector.register(read_fd, selectors.EVENT_READ)
            while b"\n" not in buffer:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not selector.select(remaining):
                    os.kill(pid, signal.SIGKILL)
                    raise ServeError(
                        f"worker {index} (pid {pid}) not ready within "
                        f"{READY_TIMEOUT_S:.0f}s"
                    )
                chunk = os.read(read_fd, 256)
                if not chunk:  # EOF: the child died before reporting
                    raise ServeError(
                        f"worker {index} (pid {pid}) exited during startup"
                    )
                buffer += chunk
        if not buffer.startswith(b"ready "):
            raise ServeError(
                f"worker {index} (pid {pid}) sent bad handshake {buffer!r}"
            )

    # -- supervision ---------------------------------------------------
    def poll(self, *, respawn: bool = True) -> list[int]:
        """Reap exited workers; respawn replacements unless draining.

        Returns the indices of workers that were found dead.
        """
        dead: list[WorkerInfo] = []
        with self._lock:
            for worker in list(self._workers):
                try:
                    done, _status = os.waitpid(worker.pid, os.WNOHANG)
                except ChildProcessError:  # reaped elsewhere
                    done = worker.pid
                if done:
                    self._workers.remove(worker)
                    dead.append(worker)
        for worker in dead:
            obs.inc("serve.pool_workers_died_total")
            if respawn and not self._stopped:
                self._spawn(worker.index, self.generation)
        if dead and self.config.metrics_dir:
            # a SIGKILL-ed worker leaves its metrics file behind; merge
            # already excludes dead pids, reaping keeps the dir bounded
            mpmetrics.reap_stale(
                self.config.metrics_dir, keep_pids=self.pids()
            )
        obs.set_gauge("serve.pool_workers", len(self.workers()))
        return [worker.index for worker in dead]

    def stale(self) -> bool:
        """True when any registered artifact changed on disk."""
        if self.registry is None:
            return False
        for entry in self.registry.entries():
            if entry.path is not None and os.path.exists(entry.path):
                if artifact_version(entry.path) != entry.version:
                    return True
        return False

    def reload(self, *, force: bool = False) -> bool:
        """Roll the pool onto freshly loaded artifacts.

        No-op (returns False) when nothing changed and ``force`` is not
        set.  Otherwise: load a new registry, publish a new weight
        generation, start replacement workers, then SIGTERM-drain the old
        generation and unlink its segment.  Old and new workers overlap
        briefly, so the pool never stops answering.
        """
        if not self._started or self._stopped:
            raise ServeError("pool is not running")
        if not force and not self.stale():
            return False
        from repro.api.engine import _coerce_registry

        old_workers = self.workers()
        old_published = self._published
        self.generation += 1
        with precision.compute_dtype(self.config.dtype):
            self.registry = _coerce_registry(self._models)
        self._published = publish_registry_weights(
            self.registry, generation=self.generation
        )
        adopt_weight_arrays(self.registry, self._published.arrays)
        for index in range(self.config.workers):
            self._spawn(index, self.generation)
        self._retire(old_workers)
        if old_published is not None:
            old_published.unlink()
        obs.inc("serve.pool_reloads_total")
        obs.set_gauge("serve.pool_workers", len(self.workers()))
        return True

    def _retire(self, workers: list[WorkerInfo]) -> None:
        """SIGTERM-drain the given workers; SIGKILL stragglers."""
        for worker in workers:
            try:
                os.kill(worker.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + self.config.drain_timeout_s
        pending = list(workers)
        while pending and time.monotonic() < deadline:
            for worker in list(pending):
                try:
                    done, _status = os.waitpid(worker.pid, os.WNOHANG)
                except ChildProcessError:
                    done = worker.pid
                if done:
                    pending.remove(worker)
            if pending:
                time.sleep(0.02)
        for worker in pending:  # pragma: no cover - drain-timeout path
            try:
                os.kill(worker.pid, signal.SIGKILL)
                os.waitpid(worker.pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
        with self._lock:
            for worker in workers:
                if worker in self._workers:
                    self._workers.remove(worker)

    def stop(self) -> None:
        """Drain every worker and release all pool resources (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        self._retire(self.workers())
        if self._shared_listener is not None:
            self._shared_listener.close()
            self._shared_listener = None
        first = getattr(self, "_first_listener", None)
        if first is not None:
            first.close()
            self._first_listener = None
        if self._published is not None:
            self._published.unlink()
            self._published = None
        directory = self.config.metrics_dir
        if directory and os.path.isdir(directory):
            # every worker has exited; drop leftover files (crashed
            # workers), and the directory itself when we created it
            mpmetrics.reap_stale(directory)
            if self._owns_metrics_dir:
                try:
                    os.rmdir(directory)
                except OSError:  # non-empty (foreign files): leave it
                    pass
        obs.set_gauge("serve.pool_workers", 0)

    def __enter__(self) -> "ServerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- blocking supervisor loop (the CLI path) -----------------------
    def run_forever(self, *, poll_interval_s: float = 0.5) -> None:
        """Supervise until SIGTERM/SIGINT; SIGHUP triggers a reload check.

        Installs signal handlers, so call it from the main thread only.
        """
        flags = {"stop": False, "hup": False}
        previous = {
            signal.SIGTERM: signal.signal(
                signal.SIGTERM, lambda *_: flags.__setitem__("stop", True)
            ),
            signal.SIGINT: signal.signal(
                signal.SIGINT, lambda *_: flags.__setitem__("stop", True)
            ),
            signal.SIGHUP: signal.signal(
                signal.SIGHUP, lambda *_: flags.__setitem__("hup", True)
            ),
        }
        try:
            while not flags["stop"]:
                if flags["hup"]:
                    flags["hup"] = False
                    self.reload()
                self.poll()
                time.sleep(poll_interval_s)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.stop()


def create_pool(
    models,
    *,
    workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    **knobs,
) -> ServerPool:
    """One-call pool construction mirroring :func:`repro.api.create_engine`."""
    config = PoolConfig(workers=workers, host=host, port=port)
    if knobs:
        config = replace(config, **knobs)
    return ServerPool(models, config=config)
