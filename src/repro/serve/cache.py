"""Content-hash-keyed LRU cache of built graphs and scaled features.

Repeated predictions on the same schematic used to pay ``build_graph`` +
``FeatureScaler.transform`` every single time — for the small circuits a
designer iterates on, that preprocessing rivals the GNN forward pass
itself.  :class:`GraphCache` keys each circuit by a **content hash** (not
object identity, so a re-parsed netlist hits the same entry), stores the
built :class:`~repro.graph.hetero.HeteroGraph`, and memoises the scaled
:class:`~repro.models.GraphInputs` per feature-scaler fingerprint (models
trained on different bundles scale differently).

Hit/miss counts are observable both directly (:attr:`GraphCache.hits` /
:attr:`GraphCache.misses`, always on) and through the ``repro.obs``
counters ``serve.graph_cache_hits_total`` / ``serve.graph_cache_misses_total``
when collection is enabled.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuits.netlist import Circuit
    from repro.data.normalize import FeatureScaler
    from repro.graph.hetero import HeteroGraph
    from repro.models.inputs import GraphInputs


def circuit_fingerprint(circuit: "Circuit") -> str:
    """Stable content hash of a circuit (name, nets, instances, params).

    Two circuits that serialise identically — e.g. the same netlist parsed
    twice — share a fingerprint; any change to connectivity or device
    parameters changes it.
    """
    hasher = hashlib.sha256()
    hasher.update(circuit.name.encode())
    hasher.update(b"|ports|")
    for port in circuit.ports:
        hasher.update(port.encode() + b";")
    hasher.update(b"|nets|")
    for net in sorted(net.name for net in circuit.nets()):
        hasher.update(net.encode() + b";")
    hasher.update(b"|instances|")
    for name in sorted(inst.name for inst in circuit.instances()):
        inst = circuit.instance(name)
        hasher.update(f"{inst.name}:{inst.device_type}".encode())
        for terminal in sorted(inst.conns):
            hasher.update(f"|{terminal}={inst.conns[terminal]}".encode())
        for param in sorted(inst.params):
            hasher.update(f"|{param}={inst.params[param]!r}".encode())
        hasher.update(b";")
    return hasher.hexdigest()


def scaler_fingerprint(scaler: "FeatureScaler") -> str:
    """Content hash of a fitted feature scaler (memoised on the object)."""
    cached = getattr(scaler, "_content_fingerprint", None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    for type_name in sorted(scaler.means):
        hasher.update(type_name.encode())
        hasher.update(scaler.means[type_name].tobytes())
        hasher.update(scaler.stds[type_name].tobytes())
    digest = hasher.hexdigest()
    try:
        scaler._content_fingerprint = digest
    except AttributeError:  # exotic scaler without a __dict__: recompute
        pass
    return digest


class CachedGraph:
    """One cache entry: the built graph plus per-scaler scaled inputs."""

    def __init__(self, fingerprint: str, graph: "HeteroGraph"):
        self.fingerprint = fingerprint
        self.graph = graph
        self._inputs: dict[str, GraphInputs] = {}
        self._lock = threading.Lock()

    def inputs_for(self, scaler: "FeatureScaler") -> "GraphInputs":
        """Scaled :class:`GraphInputs`, built at most once per scaler."""
        key = scaler_fingerprint(scaler)
        with self._lock:
            inputs = self._inputs.get(key)
        if inputs is not None:
            return inputs
        from repro.models.inputs import GraphInputs

        inputs = GraphInputs.from_graph(self.graph, scaler)
        with self._lock:
            return self._inputs.setdefault(key, inputs)


class GraphCache:
    """Thread-safe LRU of :class:`CachedGraph` entries, content-hash keyed."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, CachedGraph] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, circuit: "Circuit", use_cache: bool = True) -> CachedGraph:
        """Entry for a circuit, building (and caching) the graph on a miss."""
        return self.lookup(circuit, use_cache=use_cache)[0]

    def lookup(
        self, circuit: "Circuit", use_cache: bool = True
    ) -> tuple[CachedGraph, bool]:
        """(entry, was_hit) for a circuit, building the graph on a miss.

        ``use_cache=False`` builds a fresh throwaway entry without touching
        the LRU state — for one-shot circuits that should not evict hot
        entries.
        """
        fingerprint = circuit_fingerprint(circuit)
        if use_cache:
            with self._lock:
                entry = self._entries.get(fingerprint)
                if entry is not None:
                    self._entries.move_to_end(fingerprint)
                    self.hits += 1
                    obs.inc("serve.graph_cache_hits_total")
                    return entry, True
                self.misses += 1
            obs.inc("serve.graph_cache_misses_total")
        from repro.graph.builder import build_graph

        entry = CachedGraph(fingerprint, build_graph(circuit))
        if use_cache:
            with self._lock:
                existing = self._entries.get(fingerprint)
                if existing is not None:  # raced with another thread
                    return existing, True
                self._entries[fingerprint] = entry
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
        return entry, False

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
