"""Content-hash-keyed LRU cache of built graphs and scaled features.

Repeated predictions on the same schematic used to pay ``build_graph`` +
``FeatureScaler.transform`` every single time — for the small circuits a
designer iterates on, that preprocessing rivals the GNN forward pass
itself.  :class:`GraphCache` keys each circuit by a **content hash** (not
object identity, so a re-parsed netlist hits the same entry), stores the
built :class:`~repro.graph.hetero.HeteroGraph`, and memoises the scaled
:class:`~repro.models.GraphInputs` per feature-scaler fingerprint (models
trained on different bundles scale differently).

Hit/miss counts are observable both directly (:attr:`GraphCache.hits` /
:attr:`GraphCache.misses`, always on) and through the ``repro.obs``
counters ``serve.graph_cache_hits_total`` / ``serve.graph_cache_misses_total``
when collection is enabled.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuits.netlist import Circuit
    from repro.data.normalize import FeatureScaler
    from repro.graph.hetero import HeteroGraph
    from repro.models.inputs import GraphInputs


# Fingerprints moved to repro.data.fingerprint (the training-side
# MergedInputsCache keys on them too); re-exported here because they are
# part of the repro.serve surface.
from repro.data.fingerprint import (  # noqa: F401
    circuit_fingerprint,
    scaler_fingerprint,
)


def arrays_nbytes(obj, _seen: set | None = None, _depth: int = 0) -> int:
    """Approximate bytes held in numpy arrays reachable from *obj*.

    Walks dicts/sequences/plain objects a few levels deep (graphs, scaled
    inputs and their cached :class:`~repro.nn.plan.SegmentPlan` schedules)
    without following cycles.  An estimate for cache budgeting, not an
    exact allocator account.
    """
    if _depth > 6:
        return 0
    seen = _seen if _seen is not None else set()
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, dict):
        return sum(arrays_nbytes(v, seen, _depth + 1) for v in obj.values())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(arrays_nbytes(v, seen, _depth + 1) for v in obj)
    if isinstance(obj, (str, bytes, int, float, bool, type(None))):
        return 0
    attrs = getattr(obj, "__dict__", None)
    if attrs:
        return sum(arrays_nbytes(v, seen, _depth + 1) for v in attrs.values())
    return 0


class CachedGraph:
    """One cache entry: the built graph plus per-scaler scaled inputs.

    The per-scaler memo (``_inputs``) is part of the entry's byte account:
    every memoised :class:`GraphInputs` reports its size through
    ``on_grow`` so the owning :class:`GraphCache` can budget bytes, and
    :meth:`release` drops the memo (and each input's lazy plan cache)
    when the entry is evicted — an evicted graph must not stay alive
    through its own memo dict.
    """

    def __init__(
        self,
        fingerprint: str,
        graph: "HeteroGraph",
        on_grow=None,
    ):
        self.fingerprint = fingerprint
        self.graph = graph
        self.released = False
        self._inputs: dict[str, GraphInputs] = {}
        self._lock = threading.Lock()
        self._nbytes = arrays_nbytes(graph)
        self._on_grow = on_grow

    @property
    def nbytes(self) -> int:
        """Bytes attributed to this entry (graph + memoised inputs)."""
        with self._lock:
            return self._nbytes

    def inputs_for(self, scaler: "FeatureScaler") -> "GraphInputs":
        """Scaled :class:`GraphInputs`, built at most once per scaler."""
        key = scaler_fingerprint(scaler)
        with self._lock:
            inputs = self._inputs.get(key)
        if inputs is not None:
            return inputs
        from repro.models.inputs import GraphInputs

        inputs = GraphInputs.from_graph(self.graph, scaler)
        grown = 0
        with self._lock:
            winner = self._inputs.setdefault(key, inputs)
            if winner is inputs and not self.released:
                grown = arrays_nbytes(inputs)
                self._nbytes += grown
        # notify the owning cache outside the entry lock (lock order:
        # cache lock -> entry lock, never the other way around)
        if grown and self._on_grow is not None:
            self._on_grow(grown)
        return winner

    def release(self) -> None:
        """Drop memoised inputs and their plan caches (called on evict)."""
        with self._lock:
            self.released = True
            for inputs in self._inputs.values():
                cache = getattr(inputs, "_cache", None)
                if isinstance(cache, dict):
                    cache.clear()
            self._inputs.clear()
            self._on_grow = None


class GraphCache:
    """Thread-safe LRU of :class:`CachedGraph` entries, content-hash keyed.

    Bounded two ways: ``max_entries`` (entry count) and, optionally,
    ``max_bytes`` — an approximate budget over each entry's graph *plus*
    its per-scaler memoised inputs (the memo used to escape accounting,
    so a 256-entry cache could quietly hold many times its nominal
    footprint).  Evicted entries are :meth:`CachedGraph.release`-d so the
    memo dict and plan caches die with the entry.

    Subclasses can veto admission per fingerprint via :meth:`admits` —
    the pool's sharded cache partitions the keyspace this way so N
    workers hold N disjoint cache slices instead of N copies.
    """

    def __init__(self, max_entries: int = 256, max_bytes: int | None = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[str, CachedGraph] = OrderedDict()
        self._lock = threading.RLock()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def current_bytes(self) -> int:
        """Approximate bytes held by cached graphs + memoised inputs."""
        with self._lock:
            return self._bytes

    def admits(self, fingerprint: str) -> bool:
        """Admission policy hook; the base cache admits every fingerprint."""
        return True

    def owns(self, fingerprint: str) -> bool:
        """Whether this cache's shard owns a fingerprint.

        Side-effect-free (unlike :meth:`admits`, which counts foreign
        lookups) so the access log can report shard ownership without
        perturbing the stats.  The unsharded base cache owns everything.
        """
        return True

    def get(self, circuit: "Circuit", use_cache: bool = True) -> CachedGraph:
        """Entry for a circuit, building (and caching) the graph on a miss."""
        return self.lookup(circuit, use_cache=use_cache)[0]

    def lookup(
        self, circuit: "Circuit", use_cache: bool = True
    ) -> tuple[CachedGraph, bool]:
        """(entry, was_hit) for a circuit, building the graph on a miss.

        ``use_cache=False`` builds a fresh throwaway entry without touching
        the LRU state — for one-shot circuits that should not evict hot
        entries.  Fingerprints rejected by :meth:`admits` are served the
        same way (built, never admitted).
        """
        fingerprint = circuit_fingerprint(circuit)
        admit = use_cache and self.admits(fingerprint)
        if admit:
            with self._lock:
                entry = self._entries.get(fingerprint)
                if entry is not None:
                    self._entries.move_to_end(fingerprint)
                    self.hits += 1
                    obs.inc("serve.graph_cache_hits_total")
                    return entry, True
                self.misses += 1
            obs.inc("serve.graph_cache_misses_total")
        from repro.graph.builder import build_graph

        graph = build_graph(circuit)
        if not admit:
            return CachedGraph(fingerprint, graph), False
        entry = CachedGraph(fingerprint, graph, on_grow=self._note_growth)
        with self._lock:
            existing = self._entries.get(fingerprint)
            if existing is not None:  # raced with another thread
                entry.release()
                return existing, True
            self._entries[fingerprint] = entry
            self._bytes += entry.nbytes
            self._evict_over_budget()
        return entry, False

    def _note_growth(self, delta: int) -> None:
        """A cached entry memoised new inputs; re-check the byte budget."""
        with self._lock:
            self._bytes += delta
            self._evict_over_budget()
        obs.set_gauge("serve.graph_cache_bytes", self._bytes)

    def _evict_over_budget(self) -> None:
        """Evict LRU entries beyond either bound.  Caller holds the lock.

        The newest entry always survives, even over ``max_bytes`` — a
        single circuit larger than the whole budget must still serve.
        """
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None
            and self._bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            evicted.release()
            self.evictions += 1
            obs.inc("serve.graph_cache_evictions_total")
        if self._bytes < 0:  # pragma: no cover - defensive
            self._bytes = 0

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            for entry in self._entries.values():
                entry.release()
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0
