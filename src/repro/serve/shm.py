"""Shared-memory model weights: publish once, map read-only everywhere.

A worker pool must not hold N private copies of the float64 weight
arrays — one set of bytes should back every process (the shared-trunk
serving economics from the ParaGate line of work).  This module owns that
lifecycle:

* :func:`publish_arrays` copies a ``{key: ndarray}`` mapping into **one**
  :class:`multiprocessing.shared_memory.SharedMemory` segment and returns
  a :class:`PublishedArrays` handle whose JSON-able :attr:`manifest`
  (segment name + per-array dtype/shape/offset) is all another process
  needs to map the same bytes.
* :func:`attach_arrays` maps a manifest into **read-only** numpy views
  (zero copies; writing raises).
* :func:`registry_weight_arrays` / :func:`adopt_weight_arrays` bridge to
  the model zoo: walk every leaf :class:`TargetPredictor` of a
  :class:`~repro.serve.registry.ModelRegistry` entry and swap each
  parameter's private array for the shared view, so a forked worker's
  incremental RSS excludes the weights entirely.

The pool's usage (see :mod:`repro.serve.pool`) is publish → adopt →
fork: children inherit the mapping, so they never even re-attach.  The
publisher owns the segment; call :meth:`PublishedArrays.unlink` exactly
once when the generation is retired.
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro import obs
from repro.errors import ServeError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.registry import ModelRegistry

#: Byte alignment of each array inside the segment (cache-line friendly).
ALIGNMENT = 64

# Unlinked-but-possibly-still-viewed segment handles.  GC of a SharedMemory
# object unmaps its segment even while numpy views into it are alive, so a
# retired generation's handle must outlive any stragglers; see
# PublishedArrays.unlink.
_retired: list = []
_retired_lock = threading.Lock()


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass(frozen=True)
class ArraySpec:
    """Where one array lives inside a shared segment."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int

    def to_json_dict(self) -> dict:
        return {
            "key": self.key,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "offset": self.offset,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_json_dict(cls, row: Mapping) -> "ArraySpec":
        return cls(
            key=str(row["key"]),
            dtype=str(row["dtype"]),
            shape=tuple(int(n) for n in row["shape"]),
            offset=int(row["offset"]),
            nbytes=int(row["nbytes"]),
        )


def _views_of(
    shm: shared_memory.SharedMemory, specs: list[ArraySpec], readonly: bool
) -> dict[str, np.ndarray]:
    views: dict[str, np.ndarray] = {}
    for spec in specs:
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=shm.buf,
            offset=spec.offset,
        )
        if readonly:
            view.flags.writeable = False
        views[spec.key] = view
    return views


class PublishedArrays:
    """Owner handle for one published generation of shared arrays."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        specs: list[ArraySpec],
        generation: int = 0,
    ):
        self._shm = shm
        self.specs = specs
        self.generation = generation
        #: read-only views into the segment, keyed like the source mapping
        self.arrays = _views_of(shm, specs, readonly=True)
        self._unlinked = False

    @property
    def segment_name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Total payload bytes (excluding alignment padding)."""
        return sum(spec.nbytes for spec in self.specs)

    @property
    def manifest(self) -> dict:
        """JSON-able description another process can attach from."""
        return {
            "segment": self._shm.name,
            "generation": self.generation,
            "nbytes": self.nbytes,
            "arrays": [spec.to_json_dict() for spec in self.specs],
        }

    def unlink(self) -> None:
        """Retire the segment name (idempotent): new attaches fail, but
        every existing mapping stays valid.

        Deliberately does **not** unmap: adopted parameters elsewhere in
        this process may still point into the segment, and
        ``SharedMemory.close``/GC forcibly unmaps even while numpy views
        exist (touching one afterwards is a straight segfault).  The
        handle is parked in a module keepalive instead; one retired weight
        generation per reload stays mapped until the process exits.
        """
        if self._unlinked:
            return
        self._unlinked = True
        self.arrays = {}
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        with _retired_lock:
            _retired.append(self._shm)

    def __enter__(self) -> "PublishedArrays":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


class AttachedArrays:
    """Reader handle: read-only views over someone else's segment."""

    def __init__(self, manifest: Mapping):
        specs = [ArraySpec.from_json_dict(row) for row in manifest["arrays"]]
        try:
            shm = shared_memory.SharedMemory(name=manifest["segment"])
        except FileNotFoundError:
            raise ServeError(
                f"shared weight segment {manifest['segment']!r} is gone "
                "(publisher unlinked it?)"
            ) from None
        # Python < 3.13 registers attach-only handles with the resource
        # tracker, which would unlink the publisher's segment when *this*
        # process exits; readers must not own the segment's lifetime.
        _untrack(shm)
        self._shm = shm
        self.specs = specs
        self.generation = int(manifest.get("generation", 0))
        self.arrays = _views_of(shm, specs, readonly=True)

    def close(self) -> None:
        """Forget the views; the mapping itself is parked, not unmapped.

        ``SharedMemory.close`` would unmap immediately even if a caller
        still holds one of :attr:`arrays` (turning the next read into a
        segfault), so like :meth:`PublishedArrays.unlink` this keeps the
        handle alive in the module keepalive and lets process exit
        reclaim the mapping.
        """
        self.arrays = {}
        with _retired_lock:
            _retired.append(self._shm)


def _untrack(shm: shared_memory.SharedMemory) -> None:
    try:  # pragma: no cover - version-dependent plumbing
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def publish_arrays(
    arrays: Mapping[str, np.ndarray],
    *,
    prefix: str = "repro-weights",
    generation: int = 0,
) -> PublishedArrays:
    """Copy *arrays* into one fresh shared-memory segment.

    Keys keep their order; each array is 64-byte aligned inside the
    segment.  Raises :class:`ServeError` on an empty mapping.
    """
    if not arrays:
        raise ServeError("no arrays to publish")
    specs: list[ArraySpec] = []
    offset = 0
    for key, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        specs.append(
            ArraySpec(
                key=key,
                dtype=array.dtype.str,
                shape=tuple(array.shape),
                offset=offset,
                nbytes=int(array.nbytes),
            )
        )
        offset += array.nbytes
    name = f"{prefix}-g{generation}-{os.getpid()}-{secrets.token_hex(4)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
    for spec, (key, array) in zip(specs, arrays.items()):
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=shm.buf,
            offset=spec.offset,
        )
        view[...] = np.ascontiguousarray(array)
    published = PublishedArrays(shm, specs, generation=generation)
    obs.inc("serve.shm_segments_published_total")
    obs.set_gauge("serve.shm_published_bytes", published.nbytes)
    return published


def attach_arrays(manifest: Mapping) -> AttachedArrays:
    """Map a :attr:`PublishedArrays.manifest` read-only in this process."""
    return AttachedArrays(manifest)


# ----------------------------------------------------------------------
# Model-zoo bridge
# ----------------------------------------------------------------------
def _leaf_predictors(model, prefix: str = ""):
    """Yield ``(key_prefix, TargetPredictor)`` for every GNN leaf of any
    registered model family (single predictor, multi-target suite,
    capacitance ensemble).  Families without GNN weights (classical
    baselines) yield nothing — their state is too small to matter."""
    from repro.models.trainer import TargetPredictor

    if isinstance(model, TargetPredictor):
        yield prefix, model
        return
    predictors = getattr(model, "predictors", None)
    if isinstance(predictors, dict):  # MultiTargetModel
        for target in sorted(predictors):
            yield from _leaf_predictors(
                predictors[target], f"{prefix}{target}/"
            )
        return
    members = getattr(model, "models", None)
    if isinstance(members, list):  # CapacitanceEnsemble
        for index, member in enumerate(members):
            predictor = getattr(member, "predictor", None)
            if predictor is not None:
                yield from _leaf_predictors(predictor, f"{prefix}range{index}/")


def registry_weight_arrays(registry: "ModelRegistry") -> dict[str, np.ndarray]:
    """Every parameter array of every registered model, flat-keyed as
    ``<entry>/<leaf>/<param>``."""
    arrays: dict[str, np.ndarray] = {}
    for entry in registry.entries():
        for leaf_prefix, predictor in _leaf_predictors(entry.model):
            module = predictor.model
            if module is None:  # unfitted; nothing to share
                continue
            for name, param in module.named_parameters():
                arrays[f"{entry.name}/{leaf_prefix}{name}"] = param.data
    return arrays


def publish_registry_weights(
    registry: "ModelRegistry", *, generation: int = 0
) -> PublishedArrays:
    """Publish every registered model's weights into one shared segment."""
    arrays = registry_weight_arrays(registry)
    if not arrays:
        raise ServeError(
            "registry holds no shareable weight arrays (unfitted or "
            "baseline-only models?)"
        )
    return publish_arrays(arrays, generation=generation)


def adopt_weight_arrays(
    registry: "ModelRegistry", arrays: Mapping[str, np.ndarray]
) -> int:
    """Swap each registry parameter's private array for its shared view.

    Matches by flat key, and refuses shape/dtype mismatches (a manifest
    from a different artifact generation must not be half-adopted).
    Returns the number of parameters adopted; the dropped private copies
    become garbage, so per-process weight memory collapses onto the one
    shared segment.
    """
    adopted = 0
    for entry in registry.entries():
        for leaf_prefix, predictor in _leaf_predictors(entry.model):
            module = predictor.model
            if module is None:
                continue
            for name, param in module.named_parameters():
                key = f"{entry.name}/{leaf_prefix}{name}"
                shared = arrays.get(key)
                if shared is None:
                    continue
                if (
                    shared.shape != param.data.shape
                    or shared.dtype != param.data.dtype
                ):
                    raise ServeError(
                        f"shared array {key!r} is "
                        f"{shared.dtype}{shared.shape}, model wants "
                        f"{param.data.dtype}{param.data.shape} — stale "
                        "weight generation?"
                    )
                param.data = shared  # staticcheck: ignore[autodiff-bypass] -- inference-only weight swap onto the shared read-only view; no tape exists in serving
                adopted += 1
    obs.inc("serve.shm_params_adopted_total", max(adopted, 0))
    return adopted
