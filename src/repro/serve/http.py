"""Stdlib JSON-over-HTTP endpoint in front of an :class:`Engine`.

Endpoints:

* ``POST /predict`` — body ``{"netlist": "<spice text>", "name": ...,
  "targets": [...], "model": ...}`` for one circuit, or
  ``{"items": [<request>, ...]}`` for a micro-batched group.  Responds with
  a :meth:`PredictionResult.to_json_dict` dump (or ``{"results": [...]}``).
* ``GET /healthz`` — liveness plus the model inventory.
* ``GET /metrics`` — engine stats (cache hit rate, queue depth) and, when
  ``repro.obs`` collection is enabled, the metrics-registry snapshot.

Error mapping: bad request body/netlist → 400, unknown model/target → 404,
queue backpressure → 429 (with a ``Retry-After`` hint), queued-too-long →
504, anything else → 500.  Only the standard library is used, so any HTTP
client — including :mod:`urllib.request` — can drive it.
"""

from __future__ import annotations

import json
import socket as socket_module
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro import obs
from repro.api.types import PredictionOptions, PredictionRequest
from repro.errors import (
    ApiError,
    GraphConstructionError,
    NetlistError,
    ReproError,
    ServeError,
    ServeOverloadedError,
    ServeTimeoutError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import Engine


def request_from_json(payload: dict) -> PredictionRequest:
    """Wire format -> :class:`PredictionRequest` (raises ApiError on junk)."""
    if not isinstance(payload, dict):
        raise ApiError("request body must be a JSON object")
    if "netlist" not in payload:
        raise ApiError('request needs a "netlist" field with SPICE text')
    targets = payload.get("targets")
    if targets is not None and not isinstance(targets, (list, tuple)):
        raise ApiError('"targets" must be a list of target names')
    return PredictionRequest(
        netlist_text=str(payload["netlist"]),
        name=payload.get("name"),
        targets=tuple(targets) if targets is not None else None,
        model=payload.get("model"),
        options=PredictionOptions(
            use_cache=bool(payload.get("use_cache", True)),
            timeout_s=payload.get("timeout_s"),
        ),
    )


class _Handler(BaseHTTPRequestHandler):
    # set per-server via type(); silences the default stderr access log
    engine: "Engine" = None  # type: ignore[assignment]
    started_at: float = 0.0
    quiet: bool = True
    worker_id: int | None = None  # pool worker index, for fan-out visibility

    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # pragma: no cover - log plumbing
        if not self.quiet:
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict, **headers) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.worker_id is not None:
            self.send_header("X-Worker", str(self.worker_id))
        for name, value in headers.items():
            self.send_header(name.replace("_", "-"), str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, error: Exception, **headers) -> None:
        self._send_json(
            status,
            {"error": type(error).__name__, "message": str(error)},
            **headers,
        )

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "uptime_s": time.monotonic() - self.started_at,
                    "models": self.engine.registry.describe(),
                },
            )
        elif path == "/metrics":
            payload = {"serve": self.engine.stats()}
            if obs.is_enabled():
                payload["obs"] = obs.registry().snapshot()
            self._send_json(200, payload)
        else:
            self._send_error_json(404, ApiError(f"no route {path!r}"))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        if path != "/predict":
            self._send_error_json(404, ApiError(f"no route {path!r}"))
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            try:
                payload = json.loads(self.rfile.read(length) or b"{}")
            except json.JSONDecodeError as error:
                raise ApiError(f"request body is not valid JSON: {error}")
            if isinstance(payload, dict) and "items" in payload:
                items = payload["items"]
                if not isinstance(items, list):
                    raise ApiError('"items" must be a list of requests')
                requests = [request_from_json(item) for item in items]
                results = self.engine.predict_batch(requests)
                self._send_json(
                    200, {"results": [r.to_json_dict() for r in results]}
                )
            else:
                request = request_from_json(payload)
                obs.inc("serve.requests_total")
                result = self.engine.predict(request)
                self._send_json(200, result.to_json_dict())
        except ServeOverloadedError as error:
            self._send_error_json(429, error, Retry_After=1)
        except ServeTimeoutError as error:
            self._send_error_json(504, error)
        except ApiError as error:
            status = 404 if "unknown model" in str(error) else 400
            self._send_error_json(status, error)
        except (NetlistError, GraphConstructionError) as error:
            # the client sent a netlist we cannot parse or graph
            self._send_error_json(400, error)
        except ReproError as error:  # pragma: no cover - defensive
            self._send_error_json(500, error)
        except Exception as error:  # pragma: no cover - defensive
            # never let an unexpected bug close the connection with no
            # response (stdlib would print a traceback and drop the socket)
            self._send_error_json(500, error)


class PredictionServer:
    """A :class:`ThreadingHTTPServer` wrapper around one engine.

    ``port=0`` binds an ephemeral port (the resolved one is on
    :attr:`port` / :attr:`url`).  Use :meth:`start` for a daemon-thread
    server in tests, or :meth:`serve_forever` to block (the CLI path).

    A pre-bound listening socket can be injected via ``socket`` — the pool
    workers pass their SO_REUSEPORT / inherited listeners this way — in
    which case host/port are taken from the socket and the server never
    binds.  ``daemon_threads=False`` makes :meth:`shutdown` join in-flight
    handler threads, which is how a draining pool worker guarantees zero
    failed in-flight requests.

    Lifecycle: :meth:`shutdown` is idempotent, returns promptly even when
    the serve loop was never entered (a bare ``BaseServer.shutdown`` would
    block forever on its never-set event), and always closes the listening
    socket — repeated start/stop cycles on a fixed port therefore never
    hit ``EADDRINUSE``.  A shut-down server cannot be restarted.
    """

    def __init__(
        self,
        engine: "Engine",
        host: str = "127.0.0.1",
        port: int = 8080,
        quiet: bool = True,
        *,
        socket: "socket_module.socket | None" = None,
        worker_id: int | None = None,
        daemon_threads: bool = True,
    ):
        self.engine = engine
        handler = type(
            "BoundHandler",
            (_Handler,),
            {
                "engine": engine,
                "started_at": time.monotonic(),
                "quiet": quiet,
                "worker_id": worker_id,
            },
        )
        if socket is None:
            self._server = ThreadingHTTPServer((host, port), handler)
        else:
            # adopt the caller's listener: construct unbound, then graft
            self._server = ThreadingHTTPServer(
                socket.getsockname(), handler, bind_and_activate=False
            )
            self._server.socket.close()  # the placeholder from __init__
            self._server.socket = socket
            self._server.server_address = socket.getsockname()
            self._server.server_name = self._server.server_address[0]
            self._server.server_port = self._server.server_address[1]
        self._server.daemon_threads = daemon_threads
        self._server.block_on_close = not daemon_threads
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._state = "new"  # new -> serving -> closed

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _enter_serving(self) -> None:
        with self._lock:
            if self._state == "closed":
                raise ServeError("server has been shut down; build a new one")
            self._state = "serving"

    def start(self) -> "PredictionServer":
        """Serve from a daemon thread; returns self once listening."""
        self._enter_serving()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever, daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Block and serve until interrupted (the ``repro serve`` path)."""
        self._enter_serving()
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop serving, release the socket, drain the engine (idempotent)."""
        with self._lock:
            state, self._state = self._state, "closed"
        if state == "closed":
            return
        if state == "serving":
            # legal from any thread: serve_forever polls the request flag,
            # so this returns once the loop (running here or elsewhere)
            # exits.  Never call it for state "new" — the loop was never
            # entered and BaseServer.shutdown would wait forever.
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.engine.close()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
