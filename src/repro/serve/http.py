"""Stdlib JSON-over-HTTP endpoint in front of an :class:`Engine`.

Endpoints:

* ``POST /predict`` — body ``{"netlist": "<spice text>", "name": ...,
  "targets": [...], "model": ...}`` for one circuit, or
  ``{"items": [<request>, ...]}`` for a micro-batched group.  Responds with
  a :meth:`PredictionResult.to_json_dict` dump (or ``{"results": [...]}``).
* ``GET /healthz`` — liveness plus the model inventory and the serving
  ``compute`` policy (precision dtype + kernel backend); pool workers
  also report their identity (index, pid, weight ``generation``) and,
  when a metrics directory is wired, per-worker fleet liveness.
* ``GET /metrics`` — engine stats (cache hit rate, queue depth), the
  metrics-registry snapshot when collection is on, and the merged fleet
  rows when a metrics directory is wired.  ``/metrics?format=prom``
  serves Prometheus text-format 0.0.4 instead (fleet-merged when
  possible, this process's registry otherwise).

Every request is tagged with an ``X-Request-ID`` (client-supplied header
or minted here), echoed on **all** responses including errors, bound as
the obs request context for the handler's duration, and written to the
structured access log when one is configured.

Error mapping: bad request body/netlist → 400, unknown model/target → 404,
queue backpressure → 429 (with a ``Retry-After`` hint), queued-too-long →
504, anything else → 500.  Only the standard library is used, so any HTTP
client — including :mod:`urllib.request` — can drive it.
"""

from __future__ import annotations

import json
import os
import socket as socket_module
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.api.types import PredictionOptions, PredictionRequest
from repro.errors import (
    ApiError,
    GraphConstructionError,
    NetlistError,
    ReproError,
    ServeError,
    ServeOverloadedError,
    ServeTimeoutError,
)
from repro.obs import expo
from repro.obs.requestlog import new_request_id, request_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import Engine


def request_from_json(payload: dict) -> PredictionRequest:
    """Wire format -> :class:`PredictionRequest` (raises ApiError on junk)."""
    if not isinstance(payload, dict):
        raise ApiError("request body must be a JSON object")
    if "netlist" not in payload:
        raise ApiError('request needs a "netlist" field with SPICE text')
    targets = payload.get("targets")
    if targets is not None and not isinstance(targets, (list, tuple)):
        raise ApiError('"targets" must be a list of target names')
    return PredictionRequest(
        netlist_text=str(payload["netlist"]),
        name=payload.get("name"),
        targets=tuple(targets) if targets is not None else None,
        model=payload.get("model"),
        options=PredictionOptions(
            use_cache=bool(payload.get("use_cache", True)),
            timeout_s=payload.get("timeout_s"),
        ),
    )


class _Handler(BaseHTTPRequestHandler):
    # set per-server via type(); silences the default stderr access log
    engine: "Engine" = None  # type: ignore[assignment]
    started_at: float = 0.0
    quiet: bool = True
    worker_id: int | None = None  # pool worker index, for fan-out visibility
    generation: int | None = None  # weight generation (pool workers)
    metrics_dir: str | None = None  # fleet metrics files (pool workers)
    access_log = None  # an AccessLog, or None

    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # pragma: no cover - log plumbing
        if not self.quiet:
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------
    def _send_headers(self, status: int, headers: dict) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("X-Request-ID", self._request_id)
        if self.worker_id is not None:
            self.send_header("X-Worker", str(self.worker_id))
        for name, value in headers.items():
            self.send_header(name.replace("_", "-"), str(value))

    def _send_json(self, status: int, payload: dict, **headers) -> None:
        body = json.dumps(payload).encode()
        self._send_headers(status, headers)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, text: str, content_type: str, **headers
    ) -> None:
        body = text.encode()
        self._send_headers(status, headers)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, error: Exception, **headers) -> None:
        self._log_fields["error"] = f"{type(error).__name__}: {error}"
        self._send_json(
            status,
            {"error": type(error).__name__, "message": str(error)},
            **headers,
        )

    # ------------------------------------------------------------------
    # Request-scoped dispatch: mint/adopt the request ID, bind the obs
    # request context, time the request, emit metrics + access log.
    # ------------------------------------------------------------------
    def _dispatch(self, method_name: str, handler) -> None:
        started = time.perf_counter()
        self._request_id = (
            self.headers.get("X-Request-ID") or new_request_id()
        )
        self._status = 0  # overwritten by the first response sent
        self._log_fields: dict = {}
        path = self.path.split("?", 1)[0]
        with request_context(self._request_id):
            try:
                handler()
            finally:
                duration = time.perf_counter() - started
                obs.observe("serve.request_seconds", duration)
                obs.inc(
                    "serve.http_responses_total", status=str(self._status)
                )
                log = self.access_log
                if log is not None and log.enabled:
                    log.log(
                        request_id=self._request_id,
                        status=self._status,
                        duration_s=duration,
                        worker=self.worker_id,
                        method=method_name,
                        path=path,
                        detail_fn=self._span_detail,
                        **self._log_fields,
                    )

    def _span_detail(self) -> dict:
        """Span rows for this request (tail-sampled: slow/error only)."""
        rid = self._request_id
        rows = [
            span.as_row()
            for span in obs.tracer().spans()[-256:]
            if span.attrs.get("request_id") == rid
        ]
        return {"spans": rows}

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET", self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST", self._handle_post)

    # ------------------------------------------------------------------
    def _fleet_snapshots(self, live_only: bool = True):
        from repro.obs.mpmetrics import load_snapshots

        return load_snapshots(self.metrics_dir, live_only=live_only)

    def _handle_get(self) -> None:
        parts = urlsplit(self.path)
        path = parts.path
        query = parse_qs(parts.query)
        if path == "/healthz":
            payload = {
                "status": "ok",
                "uptime_s": time.monotonic() - self.started_at,
                "compute": self.engine.compute_info(),
                "models": self.engine.registry.describe(),
            }
            if self.worker_id is not None:
                payload["worker"] = {
                    "id": self.worker_id,
                    "pid": os.getpid(),
                    "generation": self.generation,
                }
            if self.metrics_dir:
                payload["fleet"] = [
                    {
                        "worker": snap.worker,
                        "pid": snap.pid,
                        "generation": snap.generation,
                        "alive": snap.alive,
                    }
                    for snap in self._fleet_snapshots(live_only=False)
                ]
            self._send_json(200, payload)
        elif path == "/metrics":
            if query.get("format", [""])[0] == "prom":
                if self.metrics_dir:
                    text = expo.render_fleet(self._fleet_snapshots())
                else:
                    text = expo.render_registry_rows(
                        obs.registry().snapshot(), worker=self.worker_id
                    )
                self._send_text(200, text, expo.CONTENT_TYPE)
                return
            payload = {"serve": self.engine.stats()}
            if obs.metrics_enabled():
                payload["obs"] = obs.registry().snapshot()
            if self.metrics_dir:
                from repro.obs.mpmetrics import merge_snapshots

                payload["fleet"] = merge_snapshots(self._fleet_snapshots())
            self._send_json(200, payload)
        else:
            self._send_error_json(404, ApiError(f"no route {path!r}"))

    def _handle_post(self) -> None:
        path = self.path.split("?", 1)[0]
        if path != "/predict":
            self._send_error_json(404, ApiError(f"no route {path!r}"))
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            try:
                payload = json.loads(self.rfile.read(length) or b"{}")
            except json.JSONDecodeError as error:
                raise ApiError(f"request body is not valid JSON: {error}")
            if isinstance(payload, dict) and "items" in payload:
                items = payload["items"]
                if not isinstance(items, list):
                    raise ApiError('"items" must be a list of requests')
                requests = [request_from_json(item) for item in items]
                for request in requests:
                    request.request_id = self._request_id
                results = self.engine.predict_batch(requests)
                self._log_fields["n_items"] = len(results)
                self._send_json(
                    200, {"results": [r.to_json_dict() for r in results]}
                )
            else:
                request = request_from_json(payload)
                request.request_id = self._request_id
                obs.inc("serve.requests_total")
                result = self.engine.predict(request)
                timing = result.timing
                self._log_fields.update(
                    cache_hit=timing.cache_hit,
                    queue_s=timing.queue_s,
                    graph_s=round(timing.graph_s, 6),
                    inference_s=round(timing.inference_s, 6),
                    shard_owned=self.engine.cache.owns(result.fingerprint),
                )
                self._send_json(200, result.to_json_dict())
        except ServeOverloadedError as error:
            self._send_error_json(429, error, Retry_After=1)
        except ServeTimeoutError as error:
            self._send_error_json(504, error)
        except ApiError as error:
            status = 404 if "unknown model" in str(error) else 400
            self._send_error_json(status, error)
        except (NetlistError, GraphConstructionError) as error:
            # the client sent a netlist we cannot parse or graph
            self._send_error_json(400, error)
        except ReproError as error:  # pragma: no cover - defensive
            self._send_error_json(500, error)
        except Exception as error:  # pragma: no cover - defensive
            # never let an unexpected bug close the connection with no
            # response (stdlib would print a traceback and drop the socket)
            self._send_error_json(500, error)


class PredictionServer:
    """A :class:`ThreadingHTTPServer` wrapper around one engine.

    ``port=0`` binds an ephemeral port (the resolved one is on
    :attr:`port` / :attr:`url`).  Use :meth:`start` for a daemon-thread
    server in tests, or :meth:`serve_forever` to block (the CLI path).

    A pre-bound listening socket can be injected via ``socket`` — the pool
    workers pass their SO_REUSEPORT / inherited listeners this way — in
    which case host/port are taken from the socket and the server never
    binds.  ``daemon_threads=False`` makes :meth:`shutdown` join in-flight
    handler threads, which is how a draining pool worker guarantees zero
    failed in-flight requests.

    Lifecycle: :meth:`shutdown` is idempotent, returns promptly even when
    the serve loop was never entered (a bare ``BaseServer.shutdown`` would
    block forever on its never-set event), and always closes the listening
    socket — repeated start/stop cycles on a fixed port therefore never
    hit ``EADDRINUSE``.  A shut-down server cannot be restarted.
    """

    def __init__(
        self,
        engine: "Engine",
        host: str = "127.0.0.1",
        port: int = 8080,
        quiet: bool = True,
        *,
        socket: "socket_module.socket | None" = None,
        worker_id: int | None = None,
        daemon_threads: bool = True,
        generation: int | None = None,
        metrics_dir: str | None = None,
        access_log=None,
    ):
        self.engine = engine
        self.access_log = access_log
        handler = type(
            "BoundHandler",
            (_Handler,),
            {
                "engine": engine,
                "started_at": time.monotonic(),
                "quiet": quiet,
                "worker_id": worker_id,
                "generation": generation,
                "metrics_dir": metrics_dir,
                "access_log": access_log,
            },
        )
        if socket is None:
            self._server = ThreadingHTTPServer((host, port), handler)
        else:
            # adopt the caller's listener: construct unbound, then graft
            self._server = ThreadingHTTPServer(
                socket.getsockname(), handler, bind_and_activate=False
            )
            self._server.socket.close()  # the placeholder from __init__
            self._server.socket = socket
            self._server.server_address = socket.getsockname()
            self._server.server_name = self._server.server_address[0]
            self._server.server_port = self._server.server_address[1]
        self._server.daemon_threads = daemon_threads
        self._server.block_on_close = not daemon_threads
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._state = "new"  # new -> serving -> closed

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _enter_serving(self) -> None:
        with self._lock:
            if self._state == "closed":
                raise ServeError("server has been shut down; build a new one")
            self._state = "serving"

    def start(self) -> "PredictionServer":
        """Serve from a daemon thread; returns self once listening."""
        self._enter_serving()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever, daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Block and serve until interrupted (the ``repro serve`` path)."""
        self._enter_serving()
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop serving, release the socket, drain the engine (idempotent)."""
        with self._lock:
            state, self._state = self._state, "closed"
        if state == "closed":
            return
        if state == "serving":
            # legal from any thread: serve_forever polls the request flag,
            # so this returns once the loop (running here or elsewhere)
            # exits.  Never call it for state "new" — the loop was never
            # entered and BaseServer.shutdown would wait forever.
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.engine.close()
        if self.access_log is not None:
            # closes only streams the AccessLog itself opened
            self.access_log.close()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
