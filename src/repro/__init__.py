"""repro — reproduction of ParaGraph (DAC 2020).

Layout parasitics and device-parameter prediction from circuit schematics
using graph neural networks, together with every substrate the paper relies
on: netlist generators, a layout synthesizer that provides ground truth, a
from-scratch autodiff/GNN stack, classical ML baselines, an ensemble
predictor, and an MNA circuit simulator for end-to-end evaluation.

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record.
"""

__version__ = "1.0.0"
