"""repro — reproduction of ParaGraph (DAC 2020).

Layout parasitics and device-parameter prediction from circuit schematics
using graph neural networks, together with every substrate the paper relies
on: netlist generators, a layout synthesizer that provides ground truth, a
from-scratch autodiff/GNN stack, classical ML baselines, an ensemble
predictor, and an MNA circuit simulator for end-to-end evaluation.

The supported prediction surface is the :mod:`repro.api` facade, re-exported
here::

    import repro

    engine = repro.create_engine("models/")
    result = engine.predict("amp.sp")

See ``DESIGN.md`` for the system inventory, ``docs/api.md`` for the public
API (including the old->new deprecation table) and ``EXPERIMENTS.md`` for
the paper-versus-measured record.
"""

from typing import Any

__version__ = "1.1.0"

#: The curated top-level surface: the prediction facade plus the serving
#: layer.  Training, dataset and analysis entry points stay addressable
#: under their subpackages (``repro.models``, ``repro.data``, ...).
__all__ = [
    "__version__",
    # prediction facade (repro.api)
    "Engine",
    "EngineConfig",
    "create_engine",
    "predict_one",
    "PredictionRequest",
    "PredictionOptions",
    "PredictionResult",
    "TargetPrediction",
    "ModelProvenance",
    # serving layer (repro.serve)
    "ModelRegistry",
    "GraphCache",
    "BatchExecutor",
    "PredictionServer",
    # error taxonomy
    "ReproError",
    "ApiError",
    "ServeError",
    "ServeOverloadedError",
    "ServeTimeoutError",
]

_EXPORTS = {
    "Engine": "repro.api",
    "EngineConfig": "repro.api",
    "create_engine": "repro.api",
    "predict_one": "repro.api",
    "PredictionRequest": "repro.api",
    "PredictionOptions": "repro.api",
    "PredictionResult": "repro.api",
    "TargetPrediction": "repro.api",
    "ModelProvenance": "repro.api",
    "ModelRegistry": "repro.serve",
    "GraphCache": "repro.serve",
    "BatchExecutor": "repro.serve",
    "PredictionServer": "repro.serve",
    "ReproError": "repro.errors",
    "ApiError": "repro.errors",
    "ServeError": "repro.errors",
    "ServeOverloadedError": "repro.errors",
    "ServeTimeoutError": "repro.errors",
}


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(globals()))
