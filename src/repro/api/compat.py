"""Deprecation shims bridging the pre-`repro.api` entry points.

The old prediction surface (``TargetPredictor.predict_named``,
``TargetPredictor.predict_circuit``, ``CapacitanceEnsemble.predict_named``,
``MultiTargetModel.predict_all``, ``BaselinePredictor.predict_named``)
survives as thin wrappers over the unified facade.  Each wrapper:

* emits exactly **one** :class:`DeprecationWarning` per process per entry
  point (so a tight prediction loop does not spam stderr), and
* produces its dict through the same :func:`named_from_arrays`
  normalisation the new :class:`~repro.api.types.TargetPrediction` uses,
  so the two surfaces can never drift apart again.

The old key shape (bare net/instance names) is preserved verbatim.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np

_WARNED: set[str] = set()
_LOCK = threading.Lock()


def warn_deprecated(entry_point: str, replacement: str) -> None:
    """Emit one :class:`DeprecationWarning` per process per entry point."""
    with _LOCK:
        if entry_point in _WARNED:
            return
        _WARNED.add(entry_point)
    warnings.warn(
        f"{entry_point} is deprecated; use {replacement} "
        "(see docs/api.md for the migration table)",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Forget which entry points already warned (test helper)."""
    with _LOCK:
        _WARNED.clear()


def deprecated_entry_points() -> tuple[str, ...]:
    """Entry points that have warned so far in this process (sorted)."""
    with _LOCK:
        return tuple(sorted(_WARNED))


def named_from_arrays(graph, ids, values) -> dict[str, float]:
    """The one true array->dict projection: bare node names, float values.

    Every ``predict_named``-style shim and the new
    :class:`~repro.api.types.TargetPrediction` build their dicts through
    this function, which is what keeps net- and device-target key naming
    consistent across model families.
    """
    names = graph.node_name_of
    return {
        names[int(node_id)]: float(value)
        for node_id, value in zip(np.asarray(ids), np.asarray(values))
    }
