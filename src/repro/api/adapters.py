"""Model-family adapters: one prediction contract over four model shapes.

The engine never touches a concrete model class; it talks to a
:class:`ModelAdapter`, which turns a batch of prepared graphs into
per-target ``(ids, values)`` arrays.  Adapters exist for every family:

* :class:`PredictorAdapter` — a single :class:`TargetPredictor`; batches by
  merging the cached per-graph inputs into one disjoint forward pass
  (:meth:`GraphInputs.merge`), which is where the serving throughput comes
  from.
* :class:`MultiTargetAdapter` — a :class:`MultiTargetModel`; one batched
  forward per requested target.
* :class:`EnsembleAdapter` — the §IV :class:`CapacitanceEnsemble`; one
  batched forward per range member, then Algorithm 2 per circuit.
* :class:`BaselineAdapter` — classical baselines (per-graph features, no
  merged forward).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, Sequence

import numpy as np

from repro import obs
from repro.errors import ApiError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.normalize import FeatureScaler
    from repro.graph.hetero import HeteroGraph
    from repro.models.inputs import GraphInputs

#: (ids, values) pair an adapter produces per target per graph.
Arrays = tuple[np.ndarray, np.ndarray]


class GraphWork:
    """One prepared circuit: its graph plus a scaled-inputs supplier.

    ``inputs_for`` memoises per feature scaler (backed by the engine's
    :class:`~repro.serve.cache.GraphCache` entry, or a local dict for
    uncached one-shot predictions).
    """

    __slots__ = ("graph", "inputs_for")

    def __init__(
        self,
        graph: "HeteroGraph",
        inputs_for: "Callable[[FeatureScaler], GraphInputs]",
    ):
        self.graph = graph
        self.inputs_for = inputs_for

    @classmethod
    def local(cls, graph: "HeteroGraph") -> "GraphWork":
        """A work item with its own (uncached) per-scaler inputs memo."""
        memo: dict[int, GraphInputs] = {}

        def inputs_for(scaler):
            inputs = memo.get(id(scaler))
            if inputs is None:
                from repro.models.inputs import GraphInputs

                inputs = memo[id(scaler)] = GraphInputs.from_graph(graph, scaler)
            return inputs

        return cls(graph, inputs_for)


class ModelAdapter(Protocol):
    """What the engine requires of any servable model."""

    family: str

    @property
    def targets(self) -> tuple[str, ...]: ...

    def predict_works(
        self, works: Sequence[GraphWork], targets: Sequence[str]
    ) -> list[dict[str, Arrays]]: ...


def _batched_forward(predictor, works: Sequence[GraphWork]) -> list[Arrays]:
    """One merged no-grad forward of a TargetPredictor over many graphs.

    Graphs stay disjoint components through the convolution stack, and the
    readout MLP runs per graph on exactly the rows the single-graph path
    would see (BLAS matvec kernels are strongly row-count dependent, so a
    merged readout would drift in the last ulp).  The conv-stack GEMMs can
    still differ from the serial pass by one ulp for some merged row
    counts, so split-back outputs agree with serial prediction to within
    floating-point roundoff rather than bitwise.
    """
    from repro.models.inputs import GraphInputs
    from repro.nn import gather_rows, no_grad

    model = predictor._require_fit()
    scaler = predictor._scaler
    ids_per = [predictor.spec.node_ids(work.graph) for work in works]
    if len(works) == 1:
        inputs = works[0].inputs_for(scaler)
        ids = ids_per[0]
        with no_grad():
            scaled = model(inputs, ids).numpy().ravel()
        return [(ids, np.maximum(predictor.target_scaler.inverse(scaled), 0.0))]
    merged, offsets = GraphInputs.merge(
        [work.inputs_for(scaler) for work in works]
    )
    with obs.span(
        "api.batched_forward", batch=len(works), target=predictor.spec.name
    ):
        with no_grad():
            z = model.embed(merged)
            scaled_per = [
                model.readout(gather_rows(z, ids + offset)).numpy().ravel()
                for ids, offset in zip(ids_per, offsets)
            ]
    obs.observe("api.forward_batch_size", len(works))
    return [
        (ids, np.maximum(predictor.target_scaler.inverse(scaled), 0.0))
        for ids, scaled in zip(ids_per, scaled_per)
    ]


class PredictorAdapter:
    """A single trained :class:`~repro.models.TargetPredictor`."""

    family = "predictor"

    def __init__(self, predictor):
        self.predictor = predictor

    @property
    def targets(self) -> tuple[str, ...]:
        return (self.predictor.spec.name,)

    def predict_works(
        self, works: Sequence[GraphWork], targets: Sequence[str]
    ) -> list[dict[str, Arrays]]:
        (target,) = self.targets
        _check_targets(targets, self.targets)
        batched = _batched_forward(self.predictor, works)
        return [{target: arrays} for arrays in batched]


class MultiTargetAdapter:
    """A :class:`~repro.flows.MultiTargetModel` bundle of predictors."""

    family = "multi_target"

    def __init__(self, model):
        self.model = model

    @property
    def targets(self) -> tuple[str, ...]:
        return tuple(sorted(self.model.predictors))

    def predict_works(
        self, works: Sequence[GraphWork], targets: Sequence[str]
    ) -> list[dict[str, Arrays]]:
        _check_targets(targets, self.targets)
        out: list[dict[str, Arrays]] = [{} for _ in works]
        for target in targets:
            batched = _batched_forward(self.model.predictors[target], works)
            for slot, arrays in zip(out, batched):
                slot[target] = arrays
        return out


class MultiTaskAdapter:
    """A shared-trunk :class:`~repro.models.MultiTaskPredictor`.

    One trunk pass serves **every** requested target per merged batch —
    the serving-side payoff of shared-trunk training.  Readouts follow the
    same per-graph convention as :func:`_batched_forward` (exact ulp
    parity with single-graph prediction for the readout MLP).
    """

    family = "multitask"

    def __init__(self, predictor):
        self.predictor = predictor

    @property
    def targets(self) -> tuple[str, ...]:
        return tuple(sorted(self.predictor.target_names))

    def predict_works(
        self, works: Sequence[GraphWork], targets: Sequence[str]
    ) -> list[dict[str, Arrays]]:
        from repro.models.inputs import GraphInputs
        from repro.nn import gather_rows, no_grad

        _check_targets(targets, self.targets)
        predictor = self.predictor
        model = predictor._require_fit()
        scaler = predictor._scaler
        specs = [predictor._spec(target) for target in targets]
        ids_per = [
            [spec.node_ids(work.graph) for spec in specs] for work in works
        ]
        out: list[dict[str, Arrays]] = [{} for _ in works]
        if len(works) == 1:
            inputs = works[0].inputs_for(scaler)
            with no_grad():
                z = model.embed(inputs)
                for spec, ids in zip(specs, ids_per[0]):
                    scaled = model.heads[spec.name](z, ids).numpy().ravel()
                    out[0][spec.name] = (
                        ids,
                        np.maximum(
                            predictor.target_scalers[spec.name].inverse(scaled),
                            0.0,
                        ),
                    )
            return out
        merged, offsets = GraphInputs.merge(
            [work.inputs_for(scaler) for work in works]
        )
        with obs.span(
            "api.batched_forward", batch=len(works), target="multitask"
        ):
            with no_grad():
                z = model.embed(merged)
                for k, offset in enumerate(offsets):
                    for spec, ids in zip(specs, ids_per[k]):
                        scaled = (
                            model.heads[spec.name]
                            .readout(gather_rows(z, ids + offset))
                            .numpy()
                            .ravel()
                        )
                        out[k][spec.name] = (
                            ids,
                            np.maximum(
                                predictor.target_scalers[spec.name].inverse(
                                    scaled
                                ),
                                0.0,
                            ),
                        )
        obs.observe("api.forward_batch_size", len(works))
        return out


class EnsembleAdapter:
    """The §IV :class:`~repro.ensemble.CapacitanceEnsemble` (CAP only)."""

    family = "ensemble"

    def __init__(self, ensemble):
        self.ensemble = ensemble

    @property
    def targets(self) -> tuple[str, ...]:
        return ("CAP",)

    def predict_works(
        self, works: Sequence[GraphWork], targets: Sequence[str]
    ) -> list[dict[str, Arrays]]:
        import math

        from repro.ensemble.ensemble import combine_with_sources
        from repro.errors import ModelError

        _check_targets(targets, self.targets)
        members = self.ensemble.models
        if not members:
            raise ModelError("ensemble has no models")
        per_member: list[list[Arrays]] = [
            _batched_forward(member.predictor, works) for member in members
        ]
        max_vs = [member.max_v for member in members]
        out: list[dict[str, Arrays]] = []
        for k in range(len(works)):
            ids_ref = per_member[0][k][0]
            predictions = []
            for m, member_rows in enumerate(per_member):
                ids, values = member_rows[k]
                if not np.array_equal(ids, ids_ref):
                    raise ModelError("ensemble members disagree on node ids")
                predictions.append(values)
            combined, sources = combine_with_sources(predictions, max_vs)
            if obs.is_enabled():
                counts = np.bincount(sources, minlength=len(members))
                for member, count in zip(members, counts):
                    if count:
                        label = (
                            "inf" if math.isinf(member.max_v)
                            else f"{member.max_v:g}"
                        )
                        obs.inc(
                            "ensemble.range_selected", int(count), max_v=label
                        )
            out.append({"CAP": (ids_ref, combined)})
        return out


class BaselineAdapter:
    """A classical :class:`~repro.models.BaselinePredictor` (XGB / linear)."""

    family = "baseline"

    def __init__(self, baseline):
        self.baseline = baseline

    @property
    def targets(self) -> tuple[str, ...]:
        return (self.baseline.spec.name,)

    def predict_works(
        self, works: Sequence[GraphWork], targets: Sequence[str]
    ) -> list[dict[str, Arrays]]:
        (target,) = self.targets
        _check_targets(targets, self.targets)
        return [
            {target: self.baseline.predict_graph(work.graph)} for work in works
        ]


def _check_targets(requested: Sequence[str], available: Sequence[str]) -> None:
    unknown = [t for t in requested if t not in available]
    if unknown:
        raise ApiError(
            f"model does not predict {unknown}; available: {sorted(available)}"
        )


def make_adapter(model) -> ModelAdapter:
    """Wrap any supported model family in its adapter.

    Accepts an already-wrapped adapter unchanged, so callers can register
    custom adapters directly.
    """
    from repro.ensemble.ensemble import CapacitanceEnsemble
    from repro.flows.training import MultiTargetModel
    from repro.models.baselines import BaselinePredictor
    from repro.models.multitask import MultiTaskPredictor
    from repro.models.trainer import TargetPredictor

    if isinstance(model, TargetPredictor):
        return PredictorAdapter(model)
    if isinstance(model, MultiTargetModel):
        return MultiTargetAdapter(model)
    if isinstance(model, MultiTaskPredictor):
        return MultiTaskAdapter(model)
    if isinstance(model, CapacitanceEnsemble):
        return EnsembleAdapter(model)
    if isinstance(model, BaselinePredictor):
        return BaselineAdapter(model)
    if hasattr(model, "predict_works") and hasattr(model, "targets"):
        return model  # already an adapter
    raise ApiError(
        f"cannot serve a {type(model).__name__}; expected TargetPredictor, "
        "MultiTargetModel, MultiTaskPredictor, CapacitanceEnsemble, "
        "BaselinePredictor or a ModelAdapter"
    )
