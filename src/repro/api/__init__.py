"""``repro.api`` — the unified prediction facade.

One contract for every model family::

    from repro.api import create_engine, PredictionRequest

    engine = create_engine("models/")          # discover + warm-load
    result = engine.predict("amp.sp")          # path, text, Circuit, record
    result.named("CAP")                        # {"out": 1.2e-15, ...}
    results = engine.predict_batch(requests)   # micro-batched, in order

Request/response types live in :mod:`repro.api.types`; the engine and the
single-shot :func:`predict_one` helper in :mod:`repro.api.engine`; the
model-family adapters in :mod:`repro.api.adapters`; the deprecation shims
for the pre-facade entry points in :mod:`repro.api.compat`.

Exports resolve lazily (PEP 562) to keep import costs and cycles at bay —
``repro.serve`` and ``repro.api`` import freely from each other's
submodules.
"""

from typing import Any

__all__ = [
    "Engine",
    "EngineConfig",
    "create_engine",
    "predict_one",
    "coerce_request",
    "PredictionRequest",
    "PredictionOptions",
    "PredictionResult",
    "PredictionTiming",
    "TargetPrediction",
    "ModelProvenance",
    "target_unit",
    "GraphWork",
    "ModelAdapter",
    "make_adapter",
    "ApiError",
]

_EXPORTS = {
    "Engine": "repro.api.engine",
    "EngineConfig": "repro.api.engine",
    "create_engine": "repro.api.engine",
    "predict_one": "repro.api.engine",
    "coerce_request": "repro.api.engine",
    "PredictionRequest": "repro.api.types",
    "PredictionOptions": "repro.api.types",
    "PredictionResult": "repro.api.types",
    "PredictionTiming": "repro.api.types",
    "TargetPrediction": "repro.api.types",
    "ModelProvenance": "repro.api.types",
    "target_unit": "repro.api.types",
    "GraphWork": "repro.api.adapters",
    "ModelAdapter": "repro.api.adapters",
    "make_adapter": "repro.api.adapters",
    "ApiError": "repro.errors",
}


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
