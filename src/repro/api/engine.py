"""The inference engine behind the unified prediction API.

:class:`Engine` owns three things:

* a :class:`~repro.serve.registry.ModelRegistry` of warm-loaded models
  (every family answers through the same adapter contract),
* a :class:`~repro.serve.cache.GraphCache` so repeated predictions on the
  same circuit skip ``build_graph`` + ``FeatureScaler`` work entirely, and
* a lazily started :class:`~repro.serve.executor.BatchExecutor` that
  groups concurrent ``predict_batch`` items into merged-graph forward
  passes (disjoint-component batching — bit-identical to serial results).

``Engine.predict`` runs synchronously in the calling thread;
``Engine.predict_batch`` fans out through the executor and preserves
request order.  Both return :class:`~repro.api.types.PredictionResult`.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro import obs
from repro.api.adapters import GraphWork, make_adapter
from repro.nn import backend as nn_backend
from repro.nn import precision
from repro.api.types import (
    ModelProvenance,
    PredictionRequest,
    PredictionResult,
    PredictionTiming,
    TargetPrediction,
    target_unit,
)
from repro.errors import ApiError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.cache import GraphCache
    from repro.serve.executor import BatchExecutor
    from repro.serve.registry import ModelRegistry, RegistryEntry


@dataclass(frozen=True)
class EngineConfig:
    """Engine sizing knobs (cache capacity + micro-batching executor).

    ``dtype`` is the *serving* compute precision: model weights are cast
    to it at load and every forward runs under it.  The default is
    ``float32`` — roughly half the memory traffic of float64 at a ~1e-6
    relative output tolerance (see ``docs/performance.md``); pass
    ``"float64"`` to recover the historical bit-exact behaviour.
    ``backend`` selects the :mod:`repro.nn.backend` kernel backend for
    forwards (``None`` inherits the process default / ``REPRO_BACKEND``).
    """

    cache_size: int = 256
    max_batch: int = 16
    queue_depth: int = 128
    workers: int = 2
    timeout_s: float | None = None
    dtype: str = "float32"
    backend: str | None = None


def _target_kind(target: str) -> str:
    from repro.data.targets import target_by_name

    try:
        return target_by_name(target).kind
    except Exception:
        return "node"


class Engine:
    """Serve predictions for every registered model through one contract."""

    def __init__(
        self,
        models,
        *,
        config: EngineConfig | None = None,
        cache: "GraphCache | None" = None,
    ):
        from repro.serve.cache import GraphCache

        self.config = config or EngineConfig()
        self._dtype = precision.resolve_dtype(self.config.dtype)
        # loading under the serving policy casts checkpoint weights to the
        # serving dtype once, instead of on every forward
        with precision.compute_dtype(self._dtype):
            self.registry = _coerce_registry(models)
        # explicit None test: a freshly injected cache is empty and an
        # empty GraphCache is falsy through __len__
        self.cache = (
            cache
            if cache is not None
            else GraphCache(max_entries=self.config.cache_size)
        )
        self._executor: BatchExecutor | None = None
        self._executor_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    def predict(
        self,
        request,
        *,
        targets: Iterable[str] | None = None,
        model: str | None = None,
        use_cache: bool = True,
    ) -> PredictionResult:
        """Predict for one circuit, synchronously in the calling thread.

        *request* may be a :class:`PredictionRequest` or anything
        :func:`coerce_request` understands (a ``Circuit``, a dataset
        record, a netlist path or raw netlist text).
        """
        req = coerce_request(
            request, targets=targets, model=model, use_cache=use_cache
        )
        result = self._predict_group([req])[0]
        if isinstance(result, Exception):
            raise result
        return result

    def predict_batch(
        self,
        requests: Sequence,
        *,
        timeout_s: float | None = None,
    ) -> list[PredictionResult]:
        """Predict for many circuits through the micro-batching executor.

        Results come back in request order.  Raises
        :class:`~repro.errors.ServeOverloadedError` when the queue rejects
        a request and :class:`~repro.errors.ServeTimeoutError` when one
        exceeds its deadline; other per-request failures re-raise their
        original exception when that result is collected.
        """
        reqs = [coerce_request(r) for r in requests]
        if not reqs:
            return []
        executor = self._ensure_executor()
        obs.inc("serve.requests_total", len(reqs))
        futures = [
            executor.submit(
                req, timeout_s=(
                    req.options.timeout_s
                    if req.options.timeout_s is not None
                    else timeout_s
                )
            )
            for req in reqs
        ]
        results = []
        for future in futures:
            result = future.result()
            # queue wait is measured by the executor when a worker claims
            # the item; surface it on the result's timing breakdown
            wait = getattr(future, "queue_wait_s", None)
            if wait is not None and hasattr(result, "timing"):
                result.timing.queue_s = wait
            results.append(result)
        return results

    def targets_of(self, model: str | None = None) -> tuple[str, ...]:
        """Targets offered by a registered model (default model if None)."""
        return self.registry.get(model).targets

    def compute_info(self) -> dict:
        """The serving precision and kernel backend forwards run under."""
        return {
            "dtype": self._dtype.name,
            "backend": nn_backend.resolve_backend(self.config.backend).name,
        }

    def stats(self) -> dict:
        """JSON-ready operational snapshot (the ``/metrics`` body)."""
        executor = self._executor
        return {
            "compute": self.compute_info(),
            "models": self.registry.describe(),
            "graph_cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate(),
                "entries": len(self.cache),
                "max_entries": self.cache.max_entries,
                "max_bytes": self.cache.max_bytes,
                "bytes": self.cache.current_bytes(),
                **(
                    {"shard": self.cache.describe_shard()}
                    if hasattr(self.cache, "describe_shard")
                    else {}
                ),
            },
            "executor": {
                "started": executor is not None,
                "pending": executor.pending() if executor is not None else 0,
                "max_batch": self.config.max_batch,
                "queue_depth": self.config.queue_depth,
                "workers": self.config.workers,
            },
        }

    def close(self) -> None:
        """Shut down the executor (idempotent; the engine stays queryable
        via :meth:`predict`, which never uses the executor)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> "BatchExecutor":
        with self._executor_lock:
            if self._executor is None:
                from repro.serve.executor import BatchExecutor

                self._executor = BatchExecutor(
                    self._predict_group,
                    max_batch=self.config.max_batch,
                    queue_depth=self.config.queue_depth,
                    workers=self.config.workers,
                    timeout_s=self.config.timeout_s,
                )
            return self._executor

    def _predict_group(
        self, requests: Sequence[PredictionRequest]
    ) -> list:
        """Answer a group of requests; failed items become Exceptions.

        Items sharing a model and target set are merged into one batched
        forward pass; the rest fall back to singleton batches.  Runs
        under the engine's serving precision and kernel backend (both
        thread-local, so caller threads keep their own policy).
        """
        with precision.compute_dtype(self._dtype), nn_backend.use_backend(
            self.config.backend
        ):
            return self._predict_group_inner(requests)

    def _predict_group_inner(
        self, requests: Sequence[PredictionRequest]
    ) -> list:
        prepared: list[tuple | Exception] = []
        for req in requests:
            t0 = time.perf_counter()
            try:
                circuit = req.resolve_circuit()
                entry = self.registry.get(req.model)
                targets = req.targets or entry.targets
                unknown = [t for t in targets if t not in entry.targets]
                if unknown:
                    raise ApiError(
                        f"model {entry.name!r} does not predict {unknown}; "
                        f"available: {sorted(entry.targets)}"
                    )
                cached, hit = self.cache.lookup(
                    circuit, use_cache=req.options.use_cache
                )
                graph_s = time.perf_counter() - t0
                prepared.append(
                    (req, circuit, entry, tuple(targets), cached, hit, graph_s)
                )
            except Exception as error:
                prepared.append(error)

        # group by (model entry, target set) for merged forwards
        groups: dict[tuple, list[int]] = {}
        for index, item in enumerate(prepared):
            if isinstance(item, Exception):
                continue
            _, _, entry, targets, _, _, _ = item
            groups.setdefault((id(entry), targets), []).append(index)

        results: list = [None] * len(prepared)
        for (_, targets), indices in groups.items():
            items = [prepared[i] for i in indices]
            entry: RegistryEntry = items[0][2]
            # identical circuits (same content hash) share one forward:
            # a batch cycling N distinct schematics costs N graph slots
            # in the merged pass, however many requests reference them
            slot_of_key: dict[str, int] = {}
            works: list[GraphWork] = []
            slots: list[int] = []
            for it in items:
                cached = it[4]
                slot = slot_of_key.get(cached.fingerprint)
                if slot is None:
                    slot = slot_of_key[cached.fingerprint] = len(works)
                    works.append(GraphWork(cached.graph, cached.inputs_for))
                slots.append(slot)
            if len(works) < len(items):
                obs.inc("api.dedup_reuse_total", len(items) - len(works))
            t0 = time.perf_counter()
            try:
                with obs.span(
                    "api.predict_group", model=entry.name, batch=len(works)
                ):
                    per_work = entry.adapter.predict_works(works, targets)
            except Exception as error:
                for i in indices:
                    results[i] = error
                continue
            per_item = [per_work[slot] for slot in slots]
            inference_s = time.perf_counter() - t0
            for it, arrays_by_target, index in zip(items, per_item, indices):
                req, circuit, entry, targets, cached, hit, graph_s = it
                predictions: dict[str, TargetPrediction] = {}
                names_of = cached.graph.node_name_of
                for target in targets:
                    ids, values = arrays_by_target[target]
                    predictions[target] = TargetPrediction(
                        target=target,
                        kind=_target_kind(target),
                        names=tuple(names_of[int(i)] for i in ids),
                        values=values,
                        unit=target_unit(target),
                    )
                results[index] = PredictionResult(
                    circuit=circuit.name,
                    fingerprint=cached.fingerprint,
                    request_id=req.request_id,
                    targets=predictions,
                    provenance=ModelProvenance(
                        name=entry.name,
                        family=entry.family,
                        version=entry.version,
                        path=entry.path,
                    ),
                    timing=PredictionTiming(
                        total_s=graph_s + inference_s,
                        graph_s=graph_s,
                        inference_s=inference_s,
                        cache_hit=hit,
                        batch_size=len(works),
                    ),
                )
                obs.inc("api.predictions_total")
        for index, item in enumerate(prepared):
            if isinstance(item, Exception):
                results[index] = item
        return results


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def coerce_request(
    source,
    *,
    targets: Iterable[str] | None = None,
    model: str | None = None,
    use_cache: bool = True,
) -> PredictionRequest:
    """Build a :class:`PredictionRequest` from any supported input.

    Accepts an existing request (returned as-is when no overrides are
    given), a :class:`~repro.circuits.Circuit`, a dataset
    :class:`~repro.data.dataset.CircuitRecord`, a netlist path, or raw
    SPICE text (detected by a newline in the string).
    """
    from repro.api.types import PredictionOptions

    if isinstance(source, PredictionRequest):
        if targets is None and model is None and use_cache:
            return source
        return PredictionRequest(
            circuit=source.circuit,
            netlist_path=source.netlist_path,
            netlist_text=source.netlist_text,
            name=source.name,
            targets=tuple(targets) if targets is not None else source.targets,
            model=model if model is not None else source.model,
            options=PredictionOptions(
                use_cache=use_cache and source.options.use_cache,
                timeout_s=source.options.timeout_s,
            ),
            request_id=source.request_id,
        )
    kwargs = dict(
        targets=tuple(targets) if targets is not None else None,
        model=model,
        options=PredictionOptions(use_cache=use_cache),
    )
    if hasattr(source, "circuit") and hasattr(source, "graph"):  # record
        return PredictionRequest(circuit=source.circuit, **kwargs)
    if hasattr(source, "instances") and hasattr(source, "signal_nets"):
        return PredictionRequest(circuit=source, **kwargs)
    if isinstance(source, (str, os.PathLike)):
        text = os.fspath(source)
        if "\n" in text:
            return PredictionRequest(netlist_text=text, **kwargs)
        return PredictionRequest(netlist_path=text, **kwargs)
    raise ApiError(
        f"cannot build a PredictionRequest from {type(source).__name__}"
    )


def _coerce_registry(models) -> "ModelRegistry":
    from repro.serve.registry import ModelRegistry

    if isinstance(models, ModelRegistry):
        return models
    if isinstance(models, (str, os.PathLike)):
        return ModelRegistry.discover(models)
    registry = ModelRegistry()
    if isinstance(models, Mapping):
        for name, model in models.items():
            registry.register(name, model)
        return registry
    registry.register("default", models)
    return registry


def create_engine(
    models,
    *,
    cache_size: int = 256,
    max_batch: int = 16,
    queue_depth: int = 128,
    workers: int = 2,
    timeout_s: float | None = None,
    dtype: str = "float32",
    backend: str | None = None,
    cache=None,
) -> Engine:
    """One-call engine construction.

    *models* may be a saved-model directory/path (discovered and
    warm-loaded), a ``{name: model}`` mapping, a
    :class:`~repro.serve.registry.ModelRegistry`, or a single model object
    (registered as ``"default"``).  A pre-built
    :class:`~repro.serve.cache.GraphCache` (e.g. the pool's sharded
    variant) may be injected via *cache*; it wins over *cache_size*.
    *dtype* and *backend* set the serving compute policy (float32 by
    default; pass ``dtype="float64"`` for bit-exact parity with training).
    """
    return Engine(
        models,
        config=EngineConfig(
            cache_size=cache_size,
            max_batch=max_batch,
            queue_depth=queue_depth,
            workers=workers,
            timeout_s=timeout_s,
            dtype=dtype,
            backend=backend,
        ),
        cache=cache,
    )


def predict_one(model, source, targets: Iterable[str] | None = None) -> PredictionResult:
    """Single-shot prediction without building an engine.

    The compatibility shims route the old entry points through here; it
    runs the same adapter machinery as :class:`Engine` but with a local,
    uncached graph.  Accepts the same *source* shapes as
    :func:`coerce_request` plus a bare :class:`HeteroGraph`.
    """
    adapter = make_adapter(model)
    wanted = tuple(targets) if targets is not None else tuple(adapter.targets)
    if hasattr(source, "node_name_of"):  # a bare HeteroGraph
        graph = source
        circuit_name = getattr(source, "name", "graph")
        fingerprint = "unhashed"
    else:
        req = coerce_request(source, use_cache=False)
        circuit = req.resolve_circuit()
        from repro.serve.cache import circuit_fingerprint

        fingerprint = circuit_fingerprint(circuit)
        circuit_name = circuit.name
        from repro.graph.builder import build_graph

        graph = build_graph(circuit)
    work = GraphWork.local(graph)
    t0 = time.perf_counter()
    arrays_by_target = adapter.predict_works([work], wanted)[0]
    inference_s = time.perf_counter() - t0
    names_of = graph.node_name_of
    predictions = {
        target: TargetPrediction(
            target=target,
            kind=_target_kind(target),
            names=tuple(names_of[int(i)] for i in ids),
            values=values,
            unit=target_unit(target),
        )
        for target, (ids, values) in arrays_by_target.items()
    }
    return PredictionResult(
        circuit=circuit_name,
        fingerprint=fingerprint,
        targets=predictions,
        provenance=ModelProvenance(
            name=type(model).__name__, family=adapter.family, version="unsaved"
        ),
        timing=PredictionTiming(
            total_s=inference_s, inference_s=inference_s, batch_size=1
        ),
    )
