"""Typed request/response contract of the unified prediction API.

Every model family (single :class:`~repro.models.TargetPredictor`,
:class:`~repro.flows.MultiTargetModel`,
:class:`~repro.ensemble.CapacitanceEnsemble`, classical baselines) answers
prediction requests through the same pair of dataclasses:

* :class:`PredictionRequest` — what to predict: a circuit (in-memory
  :class:`~repro.circuits.Circuit`, netlist path, or netlist text), which
  targets, against which registered model, with per-request options.
* :class:`PredictionResult` — what came back: per-target named values plus
  the raw arrays, model provenance (family + content-hash version) and
  timing/caching telemetry.

Naming is normalised here once and for all: within a target, keys are the
bare net or instance names (a target's population is single-kind, so they
cannot collide); the :meth:`PredictionResult.flat` view uses kind-qualified
``"net:out"`` / ``"device:m1"`` keys where the two populations meet.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import ApiError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuits.netlist import Circuit

#: SI unit per target family, for display layers.
_UNITS = {"CAP": "F", "RES": "Ohm", "SA": "m", "DA": "m", "SP": "m", "DP": "m"}


def target_unit(target: str) -> str:
    """Display unit for a target name ('' for dimensionless LDE effects)."""
    return _UNITS.get(target, "")


@dataclass(frozen=True)
class PredictionOptions:
    """Per-request knobs.

    Attributes
    ----------
    use_cache:
        Look up (and populate) the engine's graph/feature cache.  Disable
        for one-shot circuits that should not evict hot entries.
    timeout_s:
        Per-request deadline when going through the batching executor.
    """

    use_cache: bool = True
    timeout_s: float | None = None


@dataclass
class PredictionRequest:
    """One circuit to predict on.

    Exactly one of ``circuit``, ``netlist_path``, ``netlist_text`` must be
    given.  ``targets=None`` means every target the selected model offers;
    ``model=None`` selects the engine's default (its only model, or the
    registry entry named ``default``).
    """

    circuit: "Circuit | None" = None
    netlist_path: str | os.PathLike | None = None
    netlist_text: str | None = None
    name: str | None = None  # circuit-name override for path/text inputs
    targets: tuple[str, ...] | None = None
    model: str | None = None
    options: PredictionOptions = field(default_factory=PredictionOptions)
    #: Trace identity (minted at the HTTP edge, echoed on the result and
    #: attached to obs spans); None for direct library callers.
    request_id: str | None = None

    def __post_init__(self) -> None:
        sources = [
            src for src in (self.circuit, self.netlist_path, self.netlist_text)
            if src is not None
        ]
        if len(sources) != 1:
            raise ApiError(
                "PredictionRequest needs exactly one of circuit=, "
                f"netlist_path=, netlist_text= (got {len(sources)})"
            )
        if self.targets is not None:
            self.targets = tuple(str(t) for t in self.targets)

    def resolve_circuit(self) -> "Circuit":
        """The in-memory circuit, parsing the netlist source if needed."""
        if self.circuit is not None:
            return self.circuit
        from repro.circuits.spice import read_spice

        if self.netlist_path is not None:
            path = os.fspath(self.netlist_path)
            with open(path) as handle:
                self.circuit = read_spice(handle, name=self.name or path)
        else:
            self.circuit = read_spice(
                self.netlist_text, name=self.name or "request"
            )
        return self.circuit

    def with_options(self, **changes) -> "PredictionRequest":
        """Copy of this request with updated :class:`PredictionOptions`."""
        return replace(self, options=replace(self.options, **changes))


@dataclass(frozen=True)
class ModelProvenance:
    """Which model answered: registry name, family, content-hash version."""

    name: str
    family: str  # "predictor" | "multi_target" | "ensemble" | "baseline"
    version: str  # content hash of the saved artifact ("unsaved" otherwise)
    path: str | None = None


@dataclass
class PredictionTiming:
    """Where one request's wall time went, in seconds."""

    total_s: float = 0.0
    graph_s: float = 0.0  # build_graph + feature-scaling work (0 on cache hit)
    inference_s: float = 0.0
    queue_s: float = 0.0  # time spent waiting in the batching queue
    cache_hit: bool = False
    batch_size: int = 1  # >1 when served by a merged-batch forward pass


@dataclass(frozen=True)
class TargetPrediction:
    """Predictions of one target on one circuit.

    ``names`` and ``values`` run parallel, ordered by graph node id —
    the raw-array view.  :attr:`named` is the dict view keyed by bare
    net/instance name.
    """

    target: str
    kind: str  # "net" or "device"
    names: tuple[str, ...]
    values: np.ndarray
    unit: str = ""

    @property
    def named(self) -> dict[str, float]:
        return {name: float(v) for name, v in zip(self.names, self.values)}

    def qualified(self) -> dict[str, float]:
        """Kind-qualified view: ``{"net:out": ...}`` / ``{"device:m1": ...}``."""
        return {
            f"{self.kind}:{name}": float(v)
            for name, v in zip(self.names, self.values)
        }


@dataclass
class PredictionResult:
    """Everything the engine knows about one answered request."""

    circuit: str  # circuit name
    fingerprint: str  # content hash of the circuit (graph-cache key)
    targets: dict[str, TargetPrediction]
    provenance: ModelProvenance
    timing: PredictionTiming
    request_id: str | None = None  # copied from the originating request

    def named(self, target: str) -> dict[str, float]:
        """``{net_or_instance: value}`` for one target."""
        try:
            return self.targets[target].named
        except KeyError:
            raise ApiError(
                f"result has no target {target!r}; have {sorted(self.targets)}"
            ) from None

    def arrays(self, target: str) -> tuple[tuple[str, ...], np.ndarray]:
        """(names, raw value array) for one target."""
        try:
            prediction = self.targets[target]
        except KeyError:
            raise ApiError(
                f"result has no target {target!r}; have {sorted(self.targets)}"
            ) from None
        return prediction.names, prediction.values

    def flat(self) -> dict[str, dict[str, float]]:
        """``{target: {kind-qualified name: value}}`` across all targets."""
        return {name: tp.qualified() for name, tp in self.targets.items()}

    def to_json_dict(self) -> dict:
        """JSON-serialisable dump (the ``--json`` / HTTP wire format)."""
        return {
            "circuit": self.circuit,
            "fingerprint": self.fingerprint,
            **(
                {"request_id": self.request_id}
                if self.request_id is not None
                else {}
            ),
            "model": {
                "name": self.provenance.name,
                "family": self.provenance.family,
                "version": self.provenance.version,
                "path": self.provenance.path,
            },
            "timing": {
                "total_s": self.timing.total_s,
                "graph_s": self.timing.graph_s,
                "inference_s": self.timing.inference_s,
                "queue_s": self.timing.queue_s,
                "cache_hit": self.timing.cache_hit,
                "batch_size": self.timing.batch_size,
            },
            "targets": {
                name: {
                    "kind": tp.kind,
                    "unit": tp.unit,
                    "values": tp.named,
                }
                for name, tp in self.targets.items()
            },
        }


def result_from_predictions(
    circuit_name: str,
    fingerprint: str,
    predictions: Mapping[str, TargetPrediction],
    provenance: ModelProvenance,
    timing: PredictionTiming,
) -> PredictionResult:
    """Assemble a :class:`PredictionResult` (adapter-facing constructor)."""
    return PredictionResult(
        circuit=circuit_name,
        fingerprint=fingerprint,
        targets=dict(predictions),
        provenance=provenance,
        timing=timing,
    )
