"""Text and JSON reporters for check results."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.runner import CheckResult


def render_text(result: "CheckResult", *, verbose: bool = False) -> str:
    """Human-readable report: one line per actionable finding."""
    lines: list[str] = []
    for finding in result.findings:
        if finding.suppressed and not verbose:
            continue
        if finding.baselined and not verbose:
            continue
        tag = finding.severity.value
        if finding.suppressed:
            tag += ", pragma"
        elif finding.baselined:
            tag += ", baselined"
        lines.append(
            f"{finding.location()}: [{finding.rule}] ({tag}) {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
        for rel in finding.related:
            note = f" ({rel.note})" if rel.note else ""
            lines.append(f"    see {rel.path}:{rel.line}{note}")
            if rel.snippet:
                lines.append(f"        {rel.snippet}")
    lines.append(summary_line(result))
    return "\n".join(lines)


def summary_line(result: "CheckResult") -> str:
    parts = [
        f"{result.files_checked} file(s) checked",
        f"{len(result.new_errors())} new error(s)",
    ]
    warnings = [f for f in result.active() if f.severity.value == "warning"]
    if warnings:
        parts.append(f"{len(warnings)} warning(s)")
    if result.baselined_count():
        parts.append(f"{result.baselined_count()} baselined")
    if result.suppressed_count():
        parts.append(f"{result.suppressed_count()} pragma-suppressed")
    if result.stale_baseline:
        parts.append(f"{len(result.stale_baseline)} stale baseline entr(y/ies)")
    return "staticcheck: " + ", ".join(parts)


def render_json(result: "CheckResult") -> str:
    """Machine-readable report (the ``--format json`` body)."""
    payload = {
        "files_checked": result.files_checked,
        "findings": [f.as_dict() for f in result.findings],
        "new_errors": len(result.new_errors()),
        "baselined": result.baselined_count(),
        "suppressed": result.suppressed_count(),
        "stale_baseline": result.stale_baseline,
        "ok": result.ok(),
    }
    return json.dumps(payload, indent=2)


#: SARIF ``level`` per finding severity (info maps to SARIF's "note").
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptions() -> "dict[str, str]":
    from repro.staticcheck.project_rules import all_project_rules
    from repro.staticcheck.rules import all_rules

    out = {rule.name: rule.description for rule in all_rules()}
    out.update({rule.name: rule.description for rule in all_project_rules()})
    out["shape-contract"] = (
        "symbolic shape/dtype propagation over shipped model configs"
    )
    out["invalid-pragma"] = "malformed or typo'd staticcheck pragma"
    return out


def _sarif_location(path: str, line: int, col: int = 0) -> dict:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path, "uriBaseId": "SRCROOT"},
            "region": {
                "startLine": max(1, line),
                "startColumn": max(1, col + 1),
            },
        }
    }


def render_sarif(result: "CheckResult") -> str:
    """SARIF 2.1.0 report (the ``--format sarif`` body, a CI artifact).

    Pragma-suppressed findings carry an ``inSource`` suppression and
    baselined ones an ``external`` suppression, so SARIF viewers (and
    GitHub code scanning) show only the actionable set by default while
    the artifact still records everything.
    """
    descriptions = _rule_descriptions()
    rule_ids = sorted({f.rule for f in result.findings})
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = []
    for rule_id in rule_ids:
        entry: dict = {"id": rule_id}
        if rule_id in descriptions:
            entry["shortDescription"] = {"text": descriptions[rule_id]}
        rules.append(entry)

    results = []
    for finding in result.findings:
        row: dict = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": _SARIF_LEVELS[finding.severity.value],
            "message": {"text": finding.message},
            "locations": [
                _sarif_location(finding.path, finding.line, finding.col)
            ],
            "partialFingerprints": {
                "reproStaticcheck/v1": finding.fingerprint()
            },
        }
        if finding.related:
            row["relatedLocations"] = [
                {
                    **_sarif_location(rel.path, rel.line),
                    "message": {"text": rel.note or rel.snippet},
                }
                for rel in finding.related
            ]
        if finding.suppressed:
            row["suppressions"] = [{"kind": "inSource"}]
        elif finding.baselined:
            row["suppressions"] = [{"kind": "external"}]
        results.append(row)

    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-staticcheck",
                        "version": "1.0.0",
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(payload, indent=2)
