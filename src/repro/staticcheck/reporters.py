"""Text and JSON reporters for check results."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.runner import CheckResult


def render_text(result: "CheckResult", *, verbose: bool = False) -> str:
    """Human-readable report: one line per actionable finding."""
    lines: list[str] = []
    for finding in result.findings:
        if finding.suppressed and not verbose:
            continue
        if finding.baselined and not verbose:
            continue
        tag = finding.severity.value
        if finding.suppressed:
            tag += ", pragma"
        elif finding.baselined:
            tag += ", baselined"
        lines.append(
            f"{finding.location()}: [{finding.rule}] ({tag}) {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    lines.append(summary_line(result))
    return "\n".join(lines)


def summary_line(result: "CheckResult") -> str:
    parts = [
        f"{result.files_checked} file(s) checked",
        f"{len(result.new_errors())} new error(s)",
    ]
    warnings = [f for f in result.active() if f.severity.value == "warning"]
    if warnings:
        parts.append(f"{len(warnings)} warning(s)")
    if result.baselined_count():
        parts.append(f"{result.baselined_count()} baselined")
    if result.suppressed_count():
        parts.append(f"{result.suppressed_count()} pragma-suppressed")
    if result.stale_baseline:
        parts.append(f"{len(result.stale_baseline)} stale baseline entr(y/ies)")
    return "staticcheck: " + ", ".join(parts)


def render_json(result: "CheckResult") -> str:
    """Machine-readable report (the ``--format json`` body)."""
    payload = {
        "files_checked": result.files_checked,
        "findings": [f.as_dict() for f in result.findings],
        "new_errors": len(result.new_errors()),
        "baselined": result.baselined_count(),
        "suppressed": result.suppressed_count(),
        "stale_baseline": result.stale_baseline,
        "ok": result.ok(),
    }
    return json.dumps(payload, indent=2)
