"""Whole-program rules: checks that need the call graph, not one module.

Per-module rules (:mod:`repro.staticcheck.rules`) see a single ``ast``
tree; the rules in this package consume a
:class:`~repro.staticcheck.project.ProjectContext` — the project-wide
symbol table, call graph and reachability — plus the
:mod:`~repro.staticcheck.dataflow` CFG framework.  They run under
``repro check --project``.

Findings behave exactly like per-module findings: same pragma syntax on
the primary location's line, same baseline machinery (fingerprints of
whole-program findings fold in every related location's snippet, so an
entry survives line drift in *both* files of a two-file finding).
"""

from __future__ import annotations

from typing import Iterable

from repro.staticcheck.findings import Finding, RelatedLocation, Severity
from repro.staticcheck.project import ProjectContext

__all__ = [
    "ProjectRule",
    "PROJECT_RULE_CLASSES",
    "all_project_rules",
    "project_rule_names",
    "select_project_rules",
]


class ProjectRule:
    """Base class for whole-program rules.

    Mirrors :class:`repro.staticcheck.engine.Rule` but checks the whole
    :class:`ProjectContext` at once.  ``name`` is the identity used by
    pragmas, the baseline, ``--rules`` filters and reports.
    """

    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self,
        project: ProjectContext,
        path: str,
        line: int,
        message: str,
        *,
        col: int = 0,
        severity: "Severity | None" = None,
        related: "tuple[RelatedLocation, ...]" = (),
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=path,
            line=line,
            col=col,
            message=message,
            severity=severity or self.severity,
            snippet=self.snippet(project, path, line),
            related=related,
        )

    def snippet(self, project: ProjectContext, path: str, line: int) -> str:
        info = project.by_path.get(path)
        return info.ctx.line_at(line) if info is not None else ""

    def related(
        self,
        project: ProjectContext,
        path: str,
        line: int,
        note: str = "",
    ) -> RelatedLocation:
        return RelatedLocation(
            path=path,
            line=line,
            snippet=self.snippet(project, path, line),
            note=note,
        )


from repro.staticcheck.project_rules.fork_safety import ForkSafetyRule  # noqa: E402
from repro.staticcheck.project_rules.lock_order import LockOrderRule  # noqa: E402
from repro.staticcheck.project_rules.precision_taint import (  # noqa: E402
    PrecisionTaintRule,
)
from repro.staticcheck.project_rules.resource_lifecycle import (  # noqa: E402
    ResourceLifecycleRule,
)

#: Registration order is report order for ties.
PROJECT_RULE_CLASSES: "tuple[type[ProjectRule], ...]" = (
    LockOrderRule,
    ForkSafetyRule,
    ResourceLifecycleRule,
    PrecisionTaintRule,
)


def all_project_rules() -> "list[ProjectRule]":
    return [cls() for cls in PROJECT_RULE_CLASSES]


def project_rule_names() -> "tuple[str, ...]":
    return tuple(cls.name for cls in PROJECT_RULE_CLASSES)


def select_project_rules(names: "Iterable[str] | None") -> "list[ProjectRule]":
    if names is None:
        return all_project_rules()
    wanted = set(names)
    return [cls() for cls in PROJECT_RULE_CLASSES if cls.name in wanted]
