"""``lock-order``: cross-module lock acquisition discipline.

The serving stack holds locks across call boundaries — an HTTP handler
under the engine's executor lock can end up in ``repro.obs`` taking the
registry lock.  Two functions that take the same pair of locks in
opposite orders deadlock under load, and nothing in a single module
betrays it.  This rule builds the project-wide *acquire graph*:

* an edge ``A -> B`` whenever some function acquires lock ``B`` (itself
  or via any transitively-called function) while holding lock ``A``;
* a **cycle** in that graph is a potential deadlock — reported once per
  cycle with the witnessing acquisition sites as related locations;
* a non-reentrant lock re-acquired while already held (``A -> A``) is a
  guaranteed self-deadlock;
* a bare ``lock.acquire()`` whose matching ``release()`` is not executed
  on every CFG path — including exception edges — is reported too
  (the per-module ``concurrency`` rule bans bare acquire in
  serve/obs/api; this check is project-wide and path-sensitive).

Lock identity is per class attribute or module global
(:mod:`._locks`), which matches how ordering discipline is actually
maintained: by code structure, not per instance.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.staticcheck.dataflow import build_cfg, shallow_walk
from repro.staticcheck.findings import Finding
from repro.staticcheck.project import FunctionInfo, ProjectContext
from repro.staticcheck.project_rules import ProjectRule
from repro.staticcheck.project_rules._locks import (
    LockTable,
    collect_locks,
    lock_key_of,
)


@dataclass(frozen=True)
class _Edge:
    held: str
    acquired: str
    #: where the held lock context lives
    held_path: str
    held_line: int
    #: where the inner acquisition happens
    acq_path: str
    acq_line: int
    #: function whose body witnesses the edge
    via: str


class LockOrderRule(ProjectRule):
    name = "lock-order"
    description = (
        "project-wide lock acquire-graph: order cycles (deadlocks), "
        "re-acquiring a non-reentrant lock while held, and .acquire() "
        "without .release() on some exit path"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        table = collect_locks(project)
        acquires = self._local_acquires(project, table)
        transitive = self._transitive_sets(project, acquires)
        edges = self._edges(project, table, acquires, transitive)
        yield from self._report_self_edges(project, table, edges)
        yield from self._report_cycles(project, edges)
        yield from self._report_unreleased(project, table)

    # ------------------------------------------------------------------
    # Per-function acquisition facts
    # ------------------------------------------------------------------
    def _local_acquires(
        self, project: ProjectContext, table: LockTable
    ) -> dict[str, list[tuple[str, ast.With]]]:
        """qualname -> [(lock key, with-node)] acquired directly."""
        result: dict[str, list[tuple[str, ast.With]]] = {}
        for fn in project.functions.values():
            minfo = project.modules[fn.module]
            sites: list[tuple[str, ast.With]] = []
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        key = lock_key_of(
                            project, table, minfo, fn, item.context_expr
                        )
                        if key is not None:
                            sites.append((key, node))
            if sites:
                result[fn.qualname] = sites
        return result

    def _transitive_sets(
        self,
        project: ProjectContext,
        acquires: dict[str, list[tuple[str, ast.With]]],
    ) -> dict[str, set[str]]:
        """qualname -> every lock key it may acquire, transitively."""
        sets: dict[str, set[str]] = {
            qual: {key for key, _ in sites} for qual, sites in acquires.items()
        }
        changed = True
        while changed:
            changed = False
            for caller, callees in project.call_graph.items():
                merged = sets.get(caller, set())
                before = len(merged)
                for callee in callees:
                    merged |= sets.get(callee, set())
                if len(merged) > before or (merged and caller not in sets):
                    sets[caller] = merged
                    changed = True
        return sets

    # ------------------------------------------------------------------
    # Acquire-graph edges
    # ------------------------------------------------------------------
    def _edges(
        self,
        project: ProjectContext,
        table: LockTable,
        acquires: dict[str, list[tuple[str, ast.With]]],
        transitive: dict[str, set[str]],
    ) -> list[_Edge]:
        edges: dict[tuple[str, str], _Edge] = {}

        def add(
            held: str,
            acquired: str,
            fn: FunctionInfo,
            held_node: ast.AST,
            acq_path: str,
            acq_line: int,
        ) -> None:
            if held == acquired and table.reentrant.get(held, False):
                return  # RLock self-reentrance is fine
            key = (held, acquired)
            if key not in edges:
                edges[key] = _Edge(
                    held=held,
                    acquired=acquired,
                    held_path=fn.path,
                    held_line=held_node.lineno,
                    acq_path=acq_path,
                    acq_line=acq_line,
                    via=fn.qualname,
                )

        for qual, sites in acquires.items():
            fn = project.functions[qual]
            for held_key, with_node in sites:
                # inner direct acquisitions
                for node in ast.walk(with_node):
                    if node is with_node:
                        continue
                    if isinstance(node, (ast.With, ast.AsyncWith)):
                        minfo = project.modules[fn.module]
                        for item in node.items:
                            inner = lock_key_of(
                                project, table, minfo, fn, item.context_expr
                            )
                            if inner is not None:
                                add(
                                    held_key, inner, fn, with_node,
                                    fn.path, node.lineno,
                                )
                # acquisitions via calls made while held
                for node in ast.walk(with_node):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = self._resolve(project, fn, node)
                    if callee is None:
                        continue
                    for inner in transitive.get(callee.qualname, ()):
                        add(
                            held_key, inner, fn, with_node,
                            callee.path, callee.lineno,
                        )

        return list(edges.values())

    def _resolve(
        self, project: ProjectContext, fn: FunctionInfo, call: ast.Call
    ) -> "FunctionInfo | None":
        minfo = project.modules[fn.module]
        types = project._local_types(fn)
        return project._resolve_call(minfo, fn, types, call)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def _report_self_edges(
        self, project: ProjectContext, table: LockTable, edges: list[_Edge]
    ) -> Iterator[Finding]:
        for edge in edges:
            if edge.held != edge.acquired:
                continue
            yield self.finding(
                project,
                edge.held_path,
                edge.held_line,
                f"non-reentrant lock {edge.held} may be re-acquired while "
                f"already held (via {edge.via}); this self-deadlocks — use "
                "an RLock or restructure so the inner call runs outside "
                "the lock",
                related=(
                    self.related(
                        project, edge.acq_path, edge.acq_line,
                        "inner acquisition reached while the lock is held",
                    ),
                ),
            )

    def _report_cycles(
        self, project: ProjectContext, edges: list[_Edge]
    ) -> Iterator[Finding]:
        graph: dict[str, list[_Edge]] = {}
        for edge in edges:
            if edge.held != edge.acquired:
                graph.setdefault(edge.held, []).append(edge)

        seen_cycles: set[tuple[str, ...]] = set()

        def walk(start: str, node: str, path: list[_Edge]) -> Iterator[list[_Edge]]:
            for edge in graph.get(node, ()):
                if edge.acquired == start:
                    yield path + [edge]
                elif all(e.held != edge.acquired for e in path):
                    yield from walk(start, edge.acquired, path + [edge])

        for start in sorted(graph):
            for cycle in walk(start, start, []):
                keys = tuple(sorted(e.held for e in cycle))
                if keys in seen_cycles:
                    continue
                seen_cycles.add(keys)
                order = " -> ".join([e.held for e in cycle] + [cycle[0].held])
                first = cycle[0]
                yield self.finding(
                    project,
                    first.held_path,
                    first.held_line,
                    f"lock-order cycle {order}: these locks are acquired in "
                    "inconsistent orders across the call graph, which can "
                    "deadlock under concurrent load; pick one global order",
                    related=tuple(
                        self.related(
                            project, e.acq_path, e.acq_line,
                            f"{e.acquired} acquired while {e.held} is held "
                            f"(via {e.via})",
                        )
                        for e in cycle
                    ),
                )

    def _report_unreleased(
        self, project: ProjectContext, table: LockTable
    ) -> Iterator[Finding]:
        for fn in project.functions.values():
            minfo = project.modules[fn.module]
            cfg = None  # built lazily: most functions never bare-acquire
            for stmt_node in ast.walk(fn.node):
                if not isinstance(stmt_node, ast.Call):
                    continue
                func = stmt_node.func
                if not (isinstance(func, ast.Attribute) and func.attr == "acquire"):
                    continue
                key = lock_key_of(project, table, minfo, fn, func.value)
                if key is None:
                    continue
                receiver = ast.unparse(func.value)
                if cfg is None:
                    cfg = build_cfg(fn.node)
                # find the CFG node whose statement contains this call
                holder = None
                for cnode in cfg.nodes:
                    if cnode.stmt is None:
                        continue
                    if any(n is stmt_node for n in shallow_walk(cnode.stmt)):
                        holder = cnode
                        break
                if holder is None:
                    continue

                def releases(cnode) -> bool:
                    if cnode.stmt is None:
                        return False
                    for n in shallow_walk(cnode.stmt):
                        if (
                            isinstance(n, ast.Call)
                            and isinstance(n.func, ast.Attribute)
                            and n.func.attr == "release"
                            and ast.unparse(n.func.value) == receiver
                        ):
                            return True
                    return False

                leaks = cfg.paths_missing(holder.index, releases)
                if leaks:
                    via = sorted({n.label for n in leaks})
                    yield self.finding(
                        project,
                        fn.path,
                        stmt_node.lineno,
                        f"{key} is acquire()d here but not release()d on "
                        f"every exit path ({', '.join(via)}); use `with` or "
                        "try/finally",
                    )
