"""``resource-lifecycle``: opened handles must be released on every path.

A ``SharedMemory`` segment, socket, or file opened in a long-running
serving process and dropped on an exception path is a slow leak that
only shows up under production error rates.  For every local that is
assigned from an opening call and **does not escape** the function
(returned, yielded, stored on an object, or handed to another call —
escaping handles are someone else's lifecycle), this rule asks the CFG:

* is there a *normal* exit path that never closes it?  That is a
  definite leak — reported as an error.
* is there an *exception* exit path that never closes it (no
  try/finally, no ``with``)?  Reported as an error inside the
  long-running packages (``serve``/``obs``/``api``), a warning
  elsewhere — a batch script that leaks an fd on a crash is unpleasant;
  a serving worker that leaks one per failed request falls over.

``with`` blocks are the house style and always satisfy the rule.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.staticcheck.dataflow import build_cfg, shallow_walk
from repro.staticcheck.engine import dotted_name
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.project import FunctionInfo, ProjectContext
from repro.staticcheck.project_rules import ProjectRule

#: call spellings that allocate a handle needing explicit release
OPENERS = frozenset(
    {
        "open",
        "os.fdopen",
        "socket.socket",
        "socket.create_connection",
        "shared_memory.SharedMemory",
        "multiprocessing.shared_memory.SharedMemory",
        "SharedMemory",
    }
)

#: method names that discharge the obligation
CLOSERS = frozenset({"close", "unlink", "shutdown", "detach", "terminate"})

LONG_RUNNING_PACKAGES = ("serve", "obs", "api")


def _opening_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and dotted_name(node.func) in OPENERS


class ResourceLifecycleRule(ProjectRule):
    name = "resource-lifecycle"
    description = (
        "file/socket/SharedMemory handles opened without close/unlink on "
        "all CFG paths (exception edges included); `with` always passes"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        for fn in project.functions.values():
            yield from self._check_function(project, fn)

    # ------------------------------------------------------------------
    def _check_function(
        self, project: ProjectContext, fn: FunctionInfo
    ) -> Iterator[Finding]:
        opens: list[tuple[str, ast.Assign]] = []
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and _opening_call(node.value)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                opens.append((node.targets[0].id, node))
        if not opens:
            return
        cfg = None
        for name, assign in opens:
            if self._escapes(fn, name, assign):
                continue
            if cfg is None:
                cfg = build_cfg(fn.node)
            holder = cfg.node_for(assign)
            if holder is None:
                continue

            def closes(cnode) -> bool:
                if cnode.stmt is None:
                    return False
                for sub in shallow_walk(cnode.stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in CLOSERS
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == name
                    ):
                        return True
                return False

            normal_leaks = cfg.paths_missing(
                holder.index, closes, include_exceptional=False
            )
            if normal_leaks:
                yield self.finding(
                    project,
                    fn.path,
                    assign.lineno,
                    f"{name!r} ({dotted_name(assign.value.func)}) is opened "
                    "here but some normal exit path never closes it; close "
                    "it on every path or use `with`",
                )
                continue  # the all-paths report would be redundant
            all_leaks = cfg.paths_missing(holder.index, closes)
            if all_leaks:
                long_running = any(
                    fn.path.startswith(f"src/repro/{pkg}/")
                    or fn.path == f"src/repro/{pkg}.py"
                    for pkg in LONG_RUNNING_PACKAGES
                )
                yield self.finding(
                    project,
                    fn.path,
                    assign.lineno,
                    f"{name!r} ({dotted_name(assign.value.func)}) leaks if "
                    "an exception unwinds before the close: wrap in "
                    "try/finally or `with`",
                    severity=(
                        Severity.ERROR if long_running else Severity.WARNING
                    ),
                )

    # ------------------------------------------------------------------
    def _escapes(self, fn: FunctionInfo, name: str, assign: ast.Assign) -> bool:
        """True when the handle outlives the function or changes owner."""
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and any(
                    isinstance(sub, ast.Name) and sub.id == name
                    for sub in ast.walk(value)
                ):
                    return True
            elif isinstance(node, ast.Call):
                # `name` passed to another call transfers ownership —
                # except to its own methods (name.read() etc.)
                args = list(node.args) + [kw.value for kw in node.keywords]
                for arg in args:
                    if any(
                        isinstance(sub, ast.Name) and sub.id == name
                        for sub in ast.walk(arg)
                    ):
                        return True
            elif isinstance(node, ast.Assign) and node is not assign:
                for target in node.targets:
                    # stored on an object / container: self.x = name
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        if any(
                            isinstance(sub, ast.Name) and sub.id == name
                            for sub in ast.walk(node.value)
                        ):
                            return True
                    # re-aliased: other = name
                    elif isinstance(target, ast.Name) and isinstance(
                        node.value, ast.Name
                    ):
                        if node.value.id == name:
                            return True
        return False
