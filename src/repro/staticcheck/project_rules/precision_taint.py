"""``precision-taint``: float64 must not flow into the serving hot path.

Serving runs float32 by default (PR 9): weights are cast once at load
and every kernel follows the thread-local policy.  A ``np.float64``
literal, ``dtype="float64"`` or ``.astype(np.float64)`` anywhere the
serving entry point can reach silently upcasts the hot path — correct
answers, half the throughput, found only in a flame graph.

The per-module ``precision-policy`` rule flags float literals one file
at a time with no notion of *where the code runs*.  This rule supersedes
it on the serving path (``repro check --project`` drops ``precision-policy``
findings inside serving-reachable functions in favour of these):

* every function reachable from ``Engine._predict_group`` in the call
  graph is scanned for float64 sources; a hit is reported with the call
  edge that puts the function on the serving path as a related location
  (a two-file finding — the fingerprint survives line drift in both);
* at the *boundary*, reaching-definitions dataflow catches a tainted
  local handed into the serving path from outside it: a variable
  assigned from a float64 source and passed as an argument to a
  serving-reachable function.

float32 sources are deliberately not flagged here (they match the
serving policy; the per-module rule still polices them elsewhere), and
the policy's own modules (``nn/precision.py``, ``nn/serialize.py`` —
checkpoints are float64-canonical on disk) stay exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.staticcheck.dataflow import ReachingDefs, shallow_walk
from repro.staticcheck.engine import dotted_name
from repro.staticcheck.findings import Finding
from repro.staticcheck.project import FunctionInfo, ProjectContext
from repro.staticcheck.project_rules import ProjectRule
from repro.staticcheck.rules.precision import ALLOWED_MODULES

#: serving entry points; every function they can reach is the hot path
SERVING_ROOTS = ("repro.api.engine.Engine._predict_group",)

FLOAT64_ATTRS = frozenset(
    {"np.float64", "numpy.float64", "np.double", "numpy.double"}
)
FLOAT64_STRINGS = frozenset({"float64", "f8", "<f8"})


def _float64_sources(node: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, description)`` for float64 sources under *node*."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            name = dotted_name(sub)
            if name in FLOAT64_ATTRS:
                yield sub, name
        elif isinstance(sub, ast.Call):
            for kw in sub.keywords:
                if (
                    kw.arg == "dtype"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value in FLOAT64_STRINGS
                ):
                    yield kw.value, f'dtype="{kw.value.value}"'
            func = dotted_name(sub.func)
            if (
                func.endswith(".astype") or func in ("np.dtype", "numpy.dtype")
            ) and sub.args:
                arg = sub.args[0]
                if isinstance(arg, ast.Constant) and arg.value in FLOAT64_STRINGS:
                    yield arg, f'"{arg.value}" dtype'


class PrecisionTaintRule(ProjectRule):
    name = "precision-taint"
    description = (
        "float64 sources inside (or passed into) code reachable from the "
        "serving entry point Engine._predict_group; serving is float32"
    )

    roots: tuple[str, ...] = SERVING_ROOTS

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        parents = self._bfs_parents(project)
        reachable = set(parents)
        yield from self._scan_reachable(project, parents)
        yield from self._scan_boundary(project, reachable)

    # ------------------------------------------------------------------
    def reachable_paths(self, project: ProjectContext) -> set[str]:
        """Module paths on the serving hot path (for supersession)."""
        return project.reachable_paths(self.roots)

    def superseded_spans(
        self, project: ProjectContext
    ) -> "dict[str, list[tuple[int, int]]]":
        """Line spans of serving-reachable functions, per module path.

        ``precision-policy`` findings inside these spans are dropped in
        project mode — this rule scans exactly that code, with call-graph
        context.  Supersession is *function*-granular, not file-granular:
        a module with one serving-reachable helper keeps the literal scan
        on its unrelated training-only functions.
        """
        spans: "dict[str, list[tuple[int, int]]]" = {}
        for qual in self._bfs_parents(project):
            fn = project.functions[qual]
            end = getattr(fn.node, "end_lineno", None) or fn.node.lineno
            spans.setdefault(fn.path, []).append((fn.node.lineno, end))
        return spans

    def _bfs_parents(
        self, project: ProjectContext
    ) -> dict[str, "tuple[str, int] | None"]:
        """qualname -> (caller qualname, call lineno) on a shortest path
        from a root; roots map to None."""
        parents: dict[str, "tuple[str, int] | None"] = {}
        queue: list[str] = []
        for root in self.roots:
            if root in project.functions:
                parents[root] = None
                queue.append(root)
        while queue:
            qual = queue.pop(0)
            fn = project.functions[qual]
            for call, callee in project.calls_in(fn):
                if callee.qualname not in parents:
                    parents[callee.qualname] = (qual, call.lineno)
                    queue.append(callee.qualname)
        return parents

    # ------------------------------------------------------------------
    def _scan_reachable(
        self,
        project: ProjectContext,
        parents: dict[str, "tuple[str, int] | None"],
    ) -> Iterator[Finding]:
        for qual in sorted(parents):
            fn = project.functions[qual]
            if self._exempt(fn.path):
                continue
            for node, what in _float64_sources(fn.node):
                related = ()
                parent = parents[qual]
                if parent is not None:
                    caller_qual, call_line = parent
                    caller = project.functions[caller_qual]
                    related = (
                        self.related(
                            project,
                            caller.path,
                            call_line,
                            f"on the serving path: {caller_qual} calls "
                            f"{qual} here",
                        ),
                    )
                yield self.finding(
                    project,
                    fn.path,
                    node.lineno,
                    f"hard-coded {what} in {qual}, reachable from the "
                    f"float32 serving path ({self.roots[0]}); follow the "
                    "precision policy (get_compute_dtype / the input's "
                    "dtype) or justify with a pragma",
                    related=related,
                )

    # ------------------------------------------------------------------
    def _scan_boundary(
        self, project: ProjectContext, reachable: set[str]
    ) -> Iterator[Finding]:
        """Tainted locals passed into the serving path from outside it."""
        rd = ReachingDefs()
        for fn in project.functions.values():
            if fn.qualname in reachable or self._exempt(fn.path):
                continue
            taint_lines = self._taint_lines(fn)
            if not taint_lines:
                continue
            facts: "dict[ast.stmt, frozenset] | None" = None
            for call, callee in project.calls_in(fn):
                if callee.qualname not in reachable:
                    continue
                tainted_args = [
                    arg.id
                    for arg in list(call.args)
                    + [kw.value for kw in call.keywords]
                    if isinstance(arg, ast.Name)
                ]
                if not tainted_args:
                    continue
                if facts is None:
                    facts = rd.analyse(fn.node)
                stmt = self._enclosing_stmt(fn, call)
                if stmt is None or stmt not in facts:
                    continue
                reaching = facts[stmt]
                for arg_name in tainted_args:
                    hit = next(
                        (
                            line
                            for (var, line) in reaching
                            if var == arg_name and line in taint_lines
                        ),
                        None,
                    )
                    if hit is None:
                        continue
                    yield self.finding(
                        project,
                        fn.path,
                        call.lineno,
                        f"{arg_name!r} carries float64 (assigned line "
                        f"{hit}) into serving-reachable "
                        f"{callee.qualname}; cast to the serving dtype "
                        "at this boundary",
                        related=(
                            self.related(
                                project, fn.path, hit,
                                "float64 source definition",
                            ),
                            self.related(
                                project, callee.path, callee.lineno,
                                "serving-reachable callee",
                            ),
                        ),
                    )

    def _taint_lines(self, fn: FunctionInfo) -> set[int]:
        lines: set[int] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                if node.value is not None and any(
                    True for _ in _float64_sources(node.value)
                ):
                    lines.add(node.lineno)
        return lines

    def _enclosing_stmt(
        self, fn: FunctionInfo, call: ast.Call
    ) -> "ast.stmt | None":
        for node in ast.walk(fn.node):
            if isinstance(node, ast.stmt) and any(
                sub is call for sub in shallow_walk(node)
            ):
                return node
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _exempt(path: str) -> bool:
        return any(path == f"src/repro/{mod}" for mod in ALLOWED_MODULES)
