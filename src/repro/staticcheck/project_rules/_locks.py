"""Shared lock-identification helpers for the whole-program rules.

A *lock key* is a project-global identity for one lock object:

* ``repro.serve.shm._retired_lock`` — a module-level lock global;
* ``repro.api.registry.ModelRegistry._lock`` — an instance lock attr
  (one key per class attr; instances are not distinguished, which is the
  right granularity for ordering: all instances share the class's
  acquisition discipline).

Both the lock-order and fork-safety rules key their reasoning on these.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.engine import dotted_name
from repro.staticcheck.project import FunctionInfo, ModuleInfo, ProjectContext
from repro.staticcheck.rules.concurrency import LOCK_FACTORIES, _field_default_factory

#: ``threading.local`` is not a lock but is equally fork-hostile: an
#: inherited instance carries the *parent's* per-thread slots.  The
#: fork-safety rule treats it like a lock attribute.
FORK_HOSTILE_FACTORIES = frozenset(LOCK_FACTORIES | {"threading.local"})


def is_lock_factory_call(node: ast.AST, *, fork_hostile: bool = False) -> bool:
    factories = FORK_HOSTILE_FACTORIES if fork_hostile else LOCK_FACTORIES
    return isinstance(node, ast.Call) and dotted_name(node.func) in factories


def is_rlock_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and dotted_name(node.func) in (
        "threading.RLock",
        "multiprocessing.RLock",
    )


@dataclass
class LockTable:
    """Every known lock in the project, by key."""

    #: lock key -> (path, lineno of the defining assignment)
    defs: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: lock key -> True when the lock is reentrant (RLock)
    reentrant: dict[str, bool] = field(default_factory=dict)
    #: class qualname -> its lock attr names (lock factories only)
    class_locks: dict[str, list[str]] = field(default_factory=dict)
    #: class qualname -> fork-hostile attrs (locks + threading.local)
    class_fork_hostile: dict[str, list[str]] = field(default_factory=dict)
    #: (class qualname, attr) -> defining assignment site, fork-hostile set
    hostile_defs: dict[tuple[str, str], tuple[str, int]] = field(
        default_factory=dict
    )


def collect_locks(project: ProjectContext) -> LockTable:
    table = LockTable()
    for minfo in project.modules.values():
        # module-level lock globals
        for node in minfo.ctx.tree.body:
            if isinstance(node, ast.Assign) and is_lock_factory_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        key = f"{minfo.name}.{target.id}"
                        table.defs[key] = (minfo.path, node.lineno)
                        table.reentrant[key] = is_rlock_call(node.value)
        # instance lock attrs, from any method that assigns them — or a
        # dataclass field(default_factory=threading.RLock) declaration
        for cinfo in minfo.classes.values():
            for stmt in cinfo.node.body:
                if not (
                    isinstance(stmt, ast.AnnAssign)
                    and stmt.value is not None
                    and isinstance(stmt.target, ast.Name)
                ):
                    continue
                factory = _field_default_factory(stmt.value)
                if factory in LOCK_FACTORIES:
                    attr = stmt.target.id
                    key = f"{cinfo.qualname}.{attr}"
                    table.defs.setdefault(key, (minfo.path, stmt.lineno))
                    table.reentrant.setdefault(
                        key, factory.endswith("RLock")
                    )
                    locks = table.class_locks.setdefault(cinfo.qualname, [])
                    if attr not in locks:
                        locks.append(attr)
                if factory in FORK_HOSTILE_FACTORIES:
                    attr = stmt.target.id
                    attrs = table.class_fork_hostile.setdefault(
                        cinfo.qualname, []
                    )
                    if attr not in attrs:
                        attrs.append(attr)
                    table.hostile_defs.setdefault(
                        (cinfo.qualname, attr), (minfo.path, stmt.lineno)
                    )
            for method in cinfo.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        if is_lock_factory_call(node.value):
                            key = f"{cinfo.qualname}.{target.attr}"
                            if key not in table.defs:
                                table.defs[key] = (minfo.path, node.lineno)
                                table.reentrant[key] = is_rlock_call(node.value)
                            table.class_locks.setdefault(
                                cinfo.qualname, []
                            )
                            if target.attr not in table.class_locks[cinfo.qualname]:
                                table.class_locks[cinfo.qualname].append(target.attr)
                        if is_lock_factory_call(node.value, fork_hostile=True):
                            attrs = table.class_fork_hostile.setdefault(
                                cinfo.qualname, []
                            )
                            if target.attr not in attrs:
                                attrs.append(target.attr)
                            table.hostile_defs.setdefault(
                                (cinfo.qualname, target.attr),
                                (minfo.path, node.lineno),
                            )
    return table


def lock_key_of(
    project: ProjectContext,
    table: LockTable,
    minfo: ModuleInfo,
    fn: FunctionInfo,
    expr: ast.AST,
) -> "str | None":
    """Resolve a lock expression to its key, or None.

    Handles ``self._lock`` (method of a lock-owning class, including
    locks inherited from known bases), a module-global lock name, an
    imported lock global, and ``obj._lock`` where ``obj``'s class is
    locally inferable.
    """
    if isinstance(expr, ast.Attribute):
        base = expr.value
        if isinstance(base, ast.Name):
            cls_qual: "str | None" = None
            if base.id == "self" and fn.class_name is not None:
                cls_qual = f"{fn.module}.{fn.class_name}"
            else:
                cls_qual = project._local_types(fn).get(base.id)
            while cls_qual is not None:
                key = f"{cls_qual}.{expr.attr}"
                if key in table.defs:
                    return key
                cinfo = project.classes.get(cls_qual)
                cls_qual = cinfo.bases[0] if cinfo and cinfo.bases else None
            # module attribute: shm._retired_lock
            resolved = project._resolve_name(minfo, dotted_name(expr))
            if resolved in table.defs:
                return resolved
        return None
    if isinstance(expr, ast.Name):
        resolved = project._resolve_name(minfo, expr.id)
        if resolved in table.defs:
            return resolved
        key = f"{minfo.name}.{expr.id}"
        if key in table.defs:
            return key
    return None
