"""``fork-safety``: state that crosses ``os.fork`` must be re-initialised.

``ServerPool`` forks workers while parent threads may hold locks; a lock
(or ``threading.local``) inherited mid-acquire deadlocks the child
forever, silently, under load.  The repo's convention is that the child
re-initialises every inherited lock before starting its own threads —
historically a hand-maintained list in ``pool.py``.  This rule makes the
list a checked invariant:

1. find every fork site (``pid = os.fork()`` with an ``if pid == 0:``
   child branch) and compute the child-reachable function set from the
   calls in that branch;
2. collect the lock-owning classes whose instances *cross the fork* —
   passed as a parameter into a child-entry function, or obtained in
   child code from a singleton accessor (a module-level function
   returning a module-global instance);
3. a class constructed inside the child (its ``__init__`` is
   child-reachable via a resolved constructor call) is exempt — fresh
   objects own fresh locks;
4. every remaining class must have **all** of its fork-hostile
   attributes (locks and ``threading.local``) re-initialised by some
   child-reachable code: a ``reinit_after_fork``-style method that
   assigns fresh ones, or a direct fresh-lock assignment.  Anything
   uncovered is reported at the fork site, with the attribute's defining
   assignment as the related location.

The rule is deliberately silent about the listener socket (inherited on
purpose — that *is* the design) and about ``SharedMemory`` mappings
(shared on purpose; see docs/serving.md "Shared-memory weight
lifecycle").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.staticcheck.engine import dotted_name
from repro.staticcheck.findings import Finding
from repro.staticcheck.project import FunctionInfo, ProjectContext
from repro.staticcheck.project_rules import ProjectRule
from repro.staticcheck.project_rules._locks import (
    LockTable,
    collect_locks,
    is_lock_factory_call,
)


@dataclass
class _ForkSite:
    fn: FunctionInfo
    fork_line: int
    child_body: list[ast.stmt]
    #: functions the child branch calls directly
    roots: list[FunctionInfo] = field(default_factory=list)


def _find_fork_sites(project: ProjectContext) -> Iterator[_ForkSite]:
    for fn in project.functions.values():
        pid_names: dict[str, int] = {}  # name -> fork lineno
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and dotted_name(node.value.func) == "os.fork"
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        pid_names[target.id] = node.lineno
        if not pid_names:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if (
                isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name)
                and test.left.id in pid_names
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)
                and len(test.comparators) == 1
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value == 0
            ):
                site = _ForkSite(
                    fn=fn,
                    fork_line=pid_names[test.left.id],
                    child_body=node.body,
                )
                minfo = project.modules[fn.module]
                types = project._local_types(fn)
                for sub in node.body:
                    for call in ast.walk(sub):
                        if isinstance(call, ast.Call):
                            callee = project._resolve_call(
                                minfo, fn, types, call
                            )
                            if callee is not None:
                                site.roots.append(callee)
                yield site


class ForkSafetyRule(ProjectRule):
    name = "fork-safety"
    description = (
        "locks/threading.local instances created before os.fork and "
        "reachable in child code must be re-initialised in the child "
        "(fresh-lock assignment or a reinit_after_fork method)"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        table = collect_locks(project)
        for site in _find_fork_sites(project):
            yield from self._check_site(project, table, site)

    # ------------------------------------------------------------------
    def _check_site(
        self, project: ProjectContext, table: LockTable, site: _ForkSite
    ) -> Iterator[Finding]:
        reachable = project.reachable_from(
            [root.qualname for root in site.roots]
        )
        inherited = self._inherited_classes(project, table, site, reachable)
        constructed = self._constructed_in_child(project, reachable)
        covered = self._reinitialised_attrs(project, table, site, reachable)

        for cls_qual in sorted(inherited):
            if cls_qual in constructed:
                continue
            hostile = table.class_fork_hostile.get(cls_qual, [])
            missing = [
                attr for attr in hostile if (cls_qual, attr) not in covered
            ]
            if not missing:
                continue
            related = []
            for attr in missing:
                if (cls_qual, attr) in table.hostile_defs:
                    path, line = table.hostile_defs[(cls_qual, attr)]
                    related.append(
                        self.related(
                            project, path, line,
                            f"fork-hostile attribute {attr!r} defined here",
                        )
                    )
            yield self.finding(
                project,
                site.fn.path,
                site.fork_line,
                f"{cls_qual} crosses this fork into the child but "
                f"attribute(s) {missing} (locks/threading.local created "
                "pre-fork, possibly held by parent threads that do not "
                "exist in the child) are never re-initialised on the "
                "child path; call its reinit_after_fork() (or assign "
                "fresh locks) before the child starts threads",
                related=tuple(related),
            )

    # ------------------------------------------------------------------
    def _inherited_classes(
        self,
        project: ProjectContext,
        table: LockTable,
        site: _ForkSite,
        reachable: set[str],
    ) -> set[str]:
        inherited: set[str] = set()
        # (a) typed parameters of the child-entry functions
        for root in site.roots:
            types = project._local_types(root)
            for cls_qual in types.values():
                if cls_qual in table.class_fork_hostile:
                    inherited.add(cls_qual)
        # (b) singleton accessors called from child-reachable code:
        #     a reachable function whose return annotation is a
        #     lock-owning class and whose body returns a module global
        for qual in reachable:
            fn = project.functions.get(qual)
            if fn is None:
                continue
            cls_qual = project._returned_class(fn)
            if cls_qual is None or cls_qual not in table.class_fork_hostile:
                continue
            if self._returns_module_global(project, fn):
                inherited.add(cls_qual)
        return inherited

    def _returns_module_global(
        self, project: ProjectContext, fn: FunctionInfo
    ) -> bool:
        if fn.class_name is not None:
            return False
        minfo = project.modules[fn.module]
        module_globals = {
            target.id
            for node in minfo.ctx.tree.body
            if isinstance(node, ast.Assign)
            for target in node.targets
            if isinstance(target, ast.Name)
        }
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Return)
                and isinstance(node.value, ast.Name)
                and node.value.id in module_globals
            ):
                return True
        return False

    # ------------------------------------------------------------------
    def _constructed_in_child(
        self, project: ProjectContext, reachable: set[str]
    ) -> set[str]:
        constructed: set[str] = set()
        for qual in reachable:
            fn = project.functions.get(qual)
            if fn is None:
                continue
            for _, callee in project.calls_in(fn):
                if callee.name == "__init__" and callee.class_name is not None:
                    constructed.add(
                        callee.qualname.rsplit(".", 1)[0]
                    )
        return constructed

    # ------------------------------------------------------------------
    def _reinitialised_attrs(
        self,
        project: ProjectContext,
        table: LockTable,
        site: _ForkSite,
        reachable: set[str],
    ) -> set[tuple[str, str]]:
        """(class qualname, attr) pairs re-initialised on the child path.

        Counts fresh-factory assignments both in child-reachable
        functions and directly in the child branch body:

        * ``self.<attr> = threading.Lock()`` inside a method of the class
          (a ``reinit_after_fork``-style method — the method being
          child-reachable is what proves the child calls it);
        * ``<obj>.<attr> = threading.Lock()`` where ``obj``'s class is
          inferable (covers the historical reach-into-privates style).
        """
        covered: set[tuple[str, str]] = set()

        def scan(fn_qual: "str | None", body: Iterable[ast.stmt]) -> None:
            fn = project.functions.get(fn_qual) if fn_qual else None
            for node in ast.walk(ast.Module(body=list(body), type_ignores=[])):
                if not isinstance(node, ast.Assign):
                    continue
                if not is_lock_factory_call(node.value, fork_hostile=True):
                    continue
                for target in node.targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    base = target.value
                    cls_qual: "str | None" = None
                    if isinstance(base, ast.Name):
                        if (
                            base.id == "self"
                            and fn is not None
                            and fn.class_name is not None
                        ):
                            cls_qual = f"{fn.module}.{fn.class_name}"
                        elif fn is not None:
                            cls_qual = project._local_types(fn).get(base.id)
                    elif isinstance(base, ast.Call) and fn is not None:
                        accessor = project._resolve_call(
                            project.modules[fn.module],
                            fn,
                            project._local_types(fn),
                            base,
                        )
                        if accessor is not None:
                            cls_qual = project._returned_class(accessor)
                    if cls_qual is not None:
                        covered.add((cls_qual, target.attr))

        for qual in reachable:
            fn = project.functions.get(qual)
            if fn is not None:
                scan(qual, fn.node.body)
        scan(site.fn.qualname, site.child_body)
        return covered
