"""``repro.staticcheck`` — repo-aware static analysis.

Complementary layers guard the invariants the runtime stack depends
on (see ``docs/static-analysis.md``):

* an AST **lint engine** (:mod:`repro.staticcheck.engine`) running
  per-module rules — autodiff-bypass, precision-policy, determinism,
  concurrency, api-surface — with per-line ``# staticcheck: ignore[rule]``
  pragmas and a committed baseline for grandfathered findings,
* a **whole-program layer** (:mod:`repro.staticcheck.project`) — symbol
  table, call graph and a CFG/dataflow framework
  (:mod:`repro.staticcheck.dataflow`) — running cross-module rules
  (lock-order, fork-safety, resource-lifecycle, precision-taint) under
  ``repro check --project``, and
* a **symbolic shape/dtype checker** (:mod:`repro.staticcheck.shapes`)
  that abstract-interprets the ``repro.nn`` model graphs with symbolic
  node/edge dims, catching wiring mismatches in encoder/conv/readout
  stacks before any training step runs.

All are wired into ``repro check`` (CLI) and the ``static-analysis`` CI
job.  Exports resolve lazily (PEP 562) so importing :mod:`repro` never
pays for the checker.
"""

from typing import Any

__all__ = [
    "Finding",
    "Severity",
    "Rule",
    "ModuleContext",
    "LintEngine",
    "all_rules",
    "rule_names",
    "Baseline",
    "load_baseline",
    "write_baseline",
    "CheckResult",
    "run_lint",
    "run_project",
    "run_shapes",
    "changed_files",
    "filter_changed",
    "iter_source_files",
    "repo_root",
    "render_text",
    "render_json",
    "render_sarif",
    "ProjectContext",
    "ProjectRule",
    "all_project_rules",
    "project_rule_names",
    "check_regressor",
    "check_multitask",
    "check_model_config",
    "check_multitask_config",
    "check_all_shipped",
    "shipped_configs",
    "SymDim",
    "SymTensor",
]

_EXPORTS = {
    "Finding": "repro.staticcheck.findings",
    "Severity": "repro.staticcheck.findings",
    "Rule": "repro.staticcheck.engine",
    "ModuleContext": "repro.staticcheck.engine",
    "LintEngine": "repro.staticcheck.engine",
    "all_rules": "repro.staticcheck.rules",
    "rule_names": "repro.staticcheck.rules",
    "Baseline": "repro.staticcheck.baseline",
    "load_baseline": "repro.staticcheck.baseline",
    "write_baseline": "repro.staticcheck.baseline",
    "CheckResult": "repro.staticcheck.runner",
    "run_lint": "repro.staticcheck.runner",
    "run_project": "repro.staticcheck.runner",
    "run_shapes": "repro.staticcheck.runner",
    "changed_files": "repro.staticcheck.runner",
    "filter_changed": "repro.staticcheck.runner",
    "iter_source_files": "repro.staticcheck.runner",
    "repo_root": "repro.staticcheck.runner",
    "render_text": "repro.staticcheck.reporters",
    "render_json": "repro.staticcheck.reporters",
    "render_sarif": "repro.staticcheck.reporters",
    "ProjectContext": "repro.staticcheck.project",
    "ProjectRule": "repro.staticcheck.project_rules",
    "all_project_rules": "repro.staticcheck.project_rules",
    "project_rule_names": "repro.staticcheck.project_rules",
    "check_regressor": "repro.staticcheck.shapes",
    "check_multitask": "repro.staticcheck.shapes",
    "check_model_config": "repro.staticcheck.shapes",
    "check_multitask_config": "repro.staticcheck.shapes",
    "check_all_shipped": "repro.staticcheck.shapes",
    "shipped_configs": "repro.staticcheck.shapes",
    "SymDim": "repro.staticcheck.shapes",
    "SymTensor": "repro.staticcheck.shapes",
}


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
