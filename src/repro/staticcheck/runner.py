"""File discovery and check orchestration shared by CLI, CI and tests."""

from __future__ import annotations

import os
import subprocess
from dataclasses import dataclass, field

from repro.staticcheck.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    load_baseline,
)
from repro.staticcheck.engine import LintEngine, Rule
from repro.staticcheck.findings import Finding, Severity, sort_findings
from repro.staticcheck.rules import select_rules


def _extra_pragma_rule_names() -> "tuple[str, ...]":
    """Rule names valid in pragmas beyond the rules a run selects.

    Whole-program rules and the shape checker report through the same
    pragma machinery but don't run inside :class:`LintEngine`, and a
    ``--rules`` selection runs only a subset of the lint registry; the
    *full* registry stays pragma-valid so e.g. ``--rules lock-order``
    doesn't flag every ``ignore[precision-policy]`` in the tree as a
    typo.
    """
    from repro.staticcheck.project_rules import project_rule_names
    from repro.staticcheck.rules import rule_names

    return rule_names() + project_rule_names() + ("shape-contract",)


def repo_root() -> str:
    """The repository root, derived from the installed package location.

    ``src/repro/staticcheck/runner.py`` -> three parents up.  Works from
    any working directory, which is what the CLI, pre-commit hook and
    tests all rely on.
    """
    here = os.path.abspath(__file__)
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(here))))


def default_baseline_path(root: "str | None" = None) -> str:
    return os.path.join(root or repo_root(), DEFAULT_BASELINE_NAME)


def iter_source_files(
    root: "str | None" = None, subdir: str = os.path.join("src", "repro")
) -> list[str]:
    """Repo-relative (posix) paths of every library module under *subdir*."""
    root = root or repo_root()
    base = os.path.join(root, subdir)
    out: list[str] = []
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            rel = os.path.relpath(os.path.join(dirpath, filename), root)
            out.append(rel.replace(os.sep, "/"))
    return out


@dataclass
class CheckResult:
    """Outcome of a lint and/or shape run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    stale_baseline: list[dict] = field(default_factory=list)

    def active(self) -> list[Finding]:
        """Findings that are neither pragma-suppressed nor baselined."""
        return [f for f in self.findings if not f.suppressed and not f.baselined]

    def new_errors(self) -> list[Finding]:
        return [f for f in self.active() if f.severity is Severity.ERROR]

    def suppressed_count(self) -> int:
        return sum(1 for f in self.findings if f.suppressed)

    def baselined_count(self) -> int:
        return sum(1 for f in self.findings if f.baselined)

    def ok(self) -> bool:
        return not self.new_errors()

    def merge(self, other: "CheckResult") -> "CheckResult":
        return CheckResult(
            findings=sort_findings(self.findings + other.findings),
            files_checked=self.files_checked + other.files_checked,
            stale_baseline=self.stale_baseline + other.stale_baseline,
        )


def run_lint(
    *,
    root: "str | None" = None,
    paths: "list[str] | None" = None,
    rules: "list[Rule] | None" = None,
    rule_names: "list[str] | None" = None,
    baseline: "Baseline | None" = None,
    baseline_path: "str | os.PathLike | None" = None,
    use_baseline: bool = True,
    compute_stale: bool = True,
) -> CheckResult:
    """Run the lint rules over the repo (or explicit *paths*).

    *paths* are repo-relative or absolute file paths; directories are not
    expanded (use :func:`iter_source_files`).  The baseline is loaded
    from *baseline_path* (default ``<root>/staticcheck-baseline.json``)
    unless an explicit :class:`Baseline` or ``use_baseline=False`` is
    given.  ``compute_stale=False`` defers stale-entry detection to a
    caller that will merge in more findings (project mode computes stale
    over the lint+project union).
    """
    root = root or repo_root()
    engine = LintEngine(
        rules if rules is not None else select_rules(rule_names),
        known_rule_names=_extra_pragma_rule_names(),
    )
    if paths is None:
        relpaths = iter_source_files(root)
    else:
        relpaths = []
        for path in paths:
            full = path if os.path.isabs(path) else os.path.join(root, path)
            rel = os.path.relpath(os.path.abspath(full), root)
            relpaths.append(rel.replace(os.sep, "/"))
    findings = engine.check_files(root, relpaths)
    stale: list[dict] = []
    if baseline is None and use_baseline:
        baseline = load_baseline(baseline_path or default_baseline_path(root))
    if baseline is not None:
        findings = baseline.apply(findings)
        # Stale detection only makes sense over a full-repo, full-registry
        # run; a partial file list (or a --rules subset) would mark every
        # entry outside the selection stale.
        if paths is None and compute_stale and rules is None and rule_names is None:
            stale = baseline.stale_entries(findings)
    return CheckResult(
        findings=findings, files_checked=len(relpaths), stale_baseline=stale
    )


def run_project(
    *,
    root: "str | None" = None,
    rule_names: "list[str] | None" = None,
    baseline: "Baseline | None" = None,
    baseline_path: "str | os.PathLike | None" = None,
    use_baseline: bool = True,
    lint_result: "CheckResult | None" = None,
) -> CheckResult:
    """Run the whole-program rules over the full repo.

    Builds the project-wide symbol table and call graph, runs every
    selected :class:`~repro.staticcheck.project_rules.ProjectRule`,
    applies each finding's primary-file pragmas and the shared baseline.

    When *lint_result* (a per-module run over the same tree, ideally with
    ``compute_stale=False``) is given, the two are merged: lint
    ``precision-policy`` findings inside serving-reachable functions are
    dropped — ``precision-taint`` supersedes the literal scan there —
    and stale baseline entries are computed once over the combined
    findings.
    """
    from repro.staticcheck.project import ProjectContext
    from repro.staticcheck.project_rules import select_project_rules
    from repro.staticcheck.project_rules.precision_taint import (
        PrecisionTaintRule,
    )

    root = root or repo_root()
    project = ProjectContext.from_files(root, iter_source_files(root))
    findings: list[Finding] = []
    for rule in select_project_rules(rule_names):
        for finding in rule.check_project(project):
            info = project.by_path.get(finding.path)
            if info is not None and info.ctx.pragmas.suppresses(
                finding.rule, finding.line
            ):
                finding = finding.with_flags(suppressed=True)
            findings.append(finding)
    if baseline is None and use_baseline:
        baseline = load_baseline(baseline_path or default_baseline_path(root))
    if baseline is not None:
        findings = baseline.apply(findings)
    result = CheckResult(
        findings=sort_findings(findings),
        files_checked=len(project.by_path),
    )
    if lint_result is None:
        return result
    spans = PrecisionTaintRule().superseded_spans(project)
    kept = [
        f
        for f in lint_result.findings
        if not (
            f.rule == "precision-policy"
            and any(lo <= f.line <= hi for lo, hi in spans.get(f.path, ()))
        )
    ]
    merged = CheckResult(
        findings=sort_findings(kept + result.findings),
        files_checked=lint_result.files_checked,
        stale_baseline=lint_result.stale_baseline,
    )
    # Same full-registry caveat as run_lint: under a --rules subset the
    # unselected rules' entries would all look stale.
    if baseline is not None and rule_names is None and not merged.stale_baseline:
        merged.stale_baseline = baseline.stale_entries(merged.findings)
    return merged


def changed_files(base: str, *, root: "str | None" = None) -> "set[str]":
    """Repo-relative paths changed since *base* (per git), plus untracked.

    Backs ``repro check --changed BASE``: CI diffs against the merge
    target so a PR is gated only on findings it could have introduced,
    while the full run stays advisory.
    """
    root = root or repo_root()
    changed: set[str] = set()
    for args in (
        ["git", "diff", "--name-only", base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            args, cwd=root, capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            from repro.errors import StaticCheckError

            raise StaticCheckError(
                f"{' '.join(args)!r} failed: {proc.stderr.strip()}"
            )
        changed.update(
            line.strip().replace(os.sep, "/")
            for line in proc.stdout.splitlines()
            if line.strip()
        )
    return changed


def filter_changed(result: CheckResult, changed: "set[str]") -> CheckResult:
    """Keep findings touching any changed file (primary or related).

    A two-file finding (say a lock-order cycle) is kept when *either*
    side changed — editing one end of a cycle can introduce it even
    though the other file is untouched.  Stale-baseline entries are
    dropped: they describe the full tree, not the diff.
    """
    kept = [
        f
        for f in result.findings
        if f.path in changed or any(r.path in changed for r in f.related)
    ]
    return CheckResult(
        findings=kept,
        files_checked=result.files_checked,
        stale_baseline=[],
    )


def run_shapes(*, configs: "list | None" = None) -> CheckResult:
    """Run the symbolic shape/dtype checker over the shipped model configs."""
    from repro.staticcheck.shapes import check_all_shipped, check_model_config

    if configs is None:
        findings = check_all_shipped()
        from repro.staticcheck.shapes import shipped_configs

        count = len(shipped_configs())
    else:
        findings = []
        for config in configs:
            findings.extend(check_model_config(config))
        count = len(configs)
    return CheckResult(findings=sort_findings(findings), files_checked=count)
