"""File discovery and check orchestration shared by CLI, CI and tests."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.staticcheck.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    load_baseline,
)
from repro.staticcheck.engine import LintEngine, Rule
from repro.staticcheck.findings import Finding, Severity, sort_findings
from repro.staticcheck.rules import select_rules


def repo_root() -> str:
    """The repository root, derived from the installed package location.

    ``src/repro/staticcheck/runner.py`` -> three parents up.  Works from
    any working directory, which is what the CLI, pre-commit hook and
    tests all rely on.
    """
    here = os.path.abspath(__file__)
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(here))))


def default_baseline_path(root: "str | None" = None) -> str:
    return os.path.join(root or repo_root(), DEFAULT_BASELINE_NAME)


def iter_source_files(
    root: "str | None" = None, subdir: str = os.path.join("src", "repro")
) -> list[str]:
    """Repo-relative (posix) paths of every library module under *subdir*."""
    root = root or repo_root()
    base = os.path.join(root, subdir)
    out: list[str] = []
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            rel = os.path.relpath(os.path.join(dirpath, filename), root)
            out.append(rel.replace(os.sep, "/"))
    return out


@dataclass
class CheckResult:
    """Outcome of a lint and/or shape run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    stale_baseline: list[dict] = field(default_factory=list)

    def active(self) -> list[Finding]:
        """Findings that are neither pragma-suppressed nor baselined."""
        return [f for f in self.findings if not f.suppressed and not f.baselined]

    def new_errors(self) -> list[Finding]:
        return [f for f in self.active() if f.severity is Severity.ERROR]

    def suppressed_count(self) -> int:
        return sum(1 for f in self.findings if f.suppressed)

    def baselined_count(self) -> int:
        return sum(1 for f in self.findings if f.baselined)

    def ok(self) -> bool:
        return not self.new_errors()

    def merge(self, other: "CheckResult") -> "CheckResult":
        return CheckResult(
            findings=sort_findings(self.findings + other.findings),
            files_checked=self.files_checked + other.files_checked,
            stale_baseline=self.stale_baseline + other.stale_baseline,
        )


def run_lint(
    *,
    root: "str | None" = None,
    paths: "list[str] | None" = None,
    rules: "list[Rule] | None" = None,
    rule_names: "list[str] | None" = None,
    baseline: "Baseline | None" = None,
    baseline_path: "str | os.PathLike | None" = None,
    use_baseline: bool = True,
) -> CheckResult:
    """Run the lint rules over the repo (or explicit *paths*).

    *paths* are repo-relative or absolute file paths; directories are not
    expanded (use :func:`iter_source_files`).  The baseline is loaded
    from *baseline_path* (default ``<root>/staticcheck-baseline.json``)
    unless an explicit :class:`Baseline` or ``use_baseline=False`` is
    given.
    """
    root = root or repo_root()
    engine = LintEngine(rules if rules is not None else select_rules(rule_names))
    if paths is None:
        relpaths = iter_source_files(root)
    else:
        relpaths = []
        for path in paths:
            full = path if os.path.isabs(path) else os.path.join(root, path)
            rel = os.path.relpath(os.path.abspath(full), root)
            relpaths.append(rel.replace(os.sep, "/"))
    findings = engine.check_files(root, relpaths)
    stale: list[dict] = []
    if baseline is None and use_baseline:
        baseline = load_baseline(baseline_path or default_baseline_path(root))
    if baseline is not None:
        findings = baseline.apply(findings)
        # Stale detection only makes sense over a full-repo run; a partial
        # file list would mark every other file's entries stale.
        if paths is None:
            stale = baseline.stale_entries(findings)
    return CheckResult(
        findings=findings, files_checked=len(relpaths), stale_baseline=stale
    )


def run_shapes(*, configs: "list | None" = None) -> CheckResult:
    """Run the symbolic shape/dtype checker over the shipped model configs."""
    from repro.staticcheck.shapes import check_all_shipped, check_model_config

    if configs is None:
        findings = check_all_shipped()
        from repro.staticcheck.shapes import shipped_configs

        count = len(shipped_configs())
    else:
        findings = []
        for config in configs:
            findings.extend(check_model_config(config))
        count = len(configs)
    return CheckResult(findings=sort_findings(findings), files_checked=count)
