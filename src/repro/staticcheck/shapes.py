"""Symbolic shape/dtype propagation over :mod:`repro.nn` module graphs.

The lint rules look at source text; this checker looks at *constructed
models*.  It abstract-interprets a :class:`~repro.models.base.GNNRegressor`
the way ``forward`` would execute it, but over :class:`SymTensor` values
whose row counts are symbolic (``N`` nodes, ``E[t]`` edges of type ``t``)
while column counts and parameter shapes stay concrete.  Every matrix
multiply, concat, broadcast-add and readout is checked against the actual
parameter arrays on the model, so a corrupted checkpoint, a bad ablation
combination or a refactor that breaks ``concat_skip`` arithmetic is caught
without running a single kernel.

The dtype contract rides along: every parameter must carry the compute
dtype the model was built under (:mod:`repro.nn.precision`), and symbolic
tensors propagate dtypes through each op so a mixed-precision graph is
reported at the layer that introduces it.

:func:`shipped_configs` enumerates the model zoo the repo actually ships —
all five convolution families, the paper's readout depths (4 FC for CAP,
2 for device parameters, 0 for the linear-readout baseline), both
``TrainConfig.dtype`` precisions, every ParaGraph ablation and the
shared-trunk multi-task ensemble (one trunk, 13 readout heads) — and
:func:`check_all_shipped` validates the lot.  Findings use the virtual
path ``model://<label>`` so they flow through the same reporters and CLI
exit codes as the lint rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.staticcheck.findings import Finding, Severity, sort_findings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.models.base import GNNRegressor

RULE_NAME = "shape-contract"

#: Node-feature widths used when a config does not pin its own; mirrors the
#: heterogeneous Table II layout (distinct per-type dims) without importing
#: the circuit stack at module import time.
DEFAULT_MASTER_SEED = 20260806


@dataclass(frozen=True)
class SymDim:
    """A dimension that is either a concrete size or a named symbol.

    Row counts stay symbolic (``N``, ``E[coupling]``); column counts are
    concrete because parameters have real shapes.  Two symbolic dims are
    compatible iff they carry the same name — the checker never needs to
    compare a symbol against a concrete size.
    """

    name: str = ""
    size: "int | None" = None

    @classmethod
    def sym(cls, name: str) -> "SymDim":
        return cls(name=name)

    @classmethod
    def of(cls, size: int) -> "SymDim":
        return cls(size=int(size))

    def is_concrete(self) -> bool:
        return self.size is not None

    def __add__(self, other: "SymDim") -> "SymDim":
        if self.is_concrete() and other.is_concrete():
            return SymDim.of(self.size + other.size)  # type: ignore[operator]
        return SymDim.sym(f"({self}+{other})")

    def compatible(self, other: "SymDim") -> bool:
        if self.is_concrete() and other.is_concrete():
            return self.size == other.size
        if not self.is_concrete() and not other.is_concrete():
            return self.name == other.name
        return False

    def __str__(self) -> str:
        return str(self.size) if self.is_concrete() else self.name


@dataclass(frozen=True)
class SymTensor:
    """A rank-2 abstract value: symbolic rows, concrete-ish cols, a dtype."""

    rows: SymDim
    cols: SymDim
    dtype: np.dtype

    def __str__(self) -> str:
        return f"({self.rows}, {self.cols}):{np.dtype(self.dtype).name}"


@dataclass
class _Checker:
    """Accumulates contract violations for one model."""

    label: str
    expected_dtype: np.dtype
    errors: list[str] = field(default_factory=list)

    def fail(self, where: str, message: str) -> None:
        self.errors.append(f"{where}: {message}")

    # -- primitive transfer functions -----------------------------------
    def param(self, where: str, array: np.ndarray, rank: int) -> tuple:
        if array.ndim != rank:
            self.fail(where, f"parameter has rank {array.ndim}, expected {rank}")
        if array.dtype != self.expected_dtype:
            self.fail(
                where,
                f"parameter dtype {array.dtype} != compute dtype "
                f"{self.expected_dtype.name} the model was built under",
            )
        return array.shape

    def matmul(self, where: str, x: SymTensor, weight: np.ndarray) -> SymTensor:
        shape = self.param(where, weight, 2)
        if len(shape) == 2 and not x.cols.compatible(SymDim.of(shape[0])):
            self.fail(
                where,
                f"matmul mismatch: input {x} @ weight {shape} — "
                f"{x.cols} columns cannot contract against {shape[0]} rows",
            )
        out_cols = SymDim.of(shape[1]) if len(shape) == 2 else x.cols
        return SymTensor(x.rows, out_cols, np.promote_types(x.dtype, weight.dtype))

    def bias_add(self, where: str, x: SymTensor, bias: np.ndarray) -> SymTensor:
        shape = self.param(where, bias, 1)
        if len(shape) == 1 and not x.cols.compatible(SymDim.of(shape[0])):
            self.fail(
                where,
                f"bias broadcast mismatch: {x} + bias {shape}",
            )
        return SymTensor(x.rows, x.cols, np.promote_types(x.dtype, bias.dtype))

    def add(self, where: str, a: SymTensor, b: SymTensor) -> SymTensor:
        if not a.rows.compatible(b.rows) or not a.cols.compatible(b.cols):
            self.fail(where, f"elementwise add mismatch: {a} + {b}")
        return SymTensor(a.rows, a.cols, np.promote_types(a.dtype, b.dtype))

    def concat_cols(self, where: str, parts: list[SymTensor]) -> SymTensor:
        rows = parts[0].rows
        for part in parts[1:]:
            if not part.rows.compatible(rows):
                self.fail(
                    where,
                    f"concat(axis=1) row mismatch: {part} vs rows {rows}",
                )
        cols = parts[0].cols
        for part in parts[1:]:
            cols = cols + part.cols
        dtype = parts[0].dtype
        for part in parts[1:]:
            dtype = np.promote_types(dtype, part.dtype)
        return SymTensor(rows, cols, dtype)

    def gather(self, x: SymTensor, rows: SymDim) -> SymTensor:
        return SymTensor(rows, x.cols, x.dtype)

    def segment_reduce(self, x: SymTensor, rows: SymDim) -> SymTensor:
        return SymTensor(rows, x.cols, x.dtype)

    # -- layer transfer functions ---------------------------------------
    def linear(self, where: str, layer, x: SymTensor) -> SymTensor:
        out = self.matmul(f"{where}.weight", x, layer.weight.data)
        if layer.bias is not None:
            out = self.bias_add(f"{where}.bias", out, layer.bias.data)
        return out

    def mlp(self, where: str, mlp, x: SymTensor) -> SymTensor:
        for i, layer in enumerate(mlp.layers):
            x = self.linear(f"{where}.layers.{i}", layer, x)
        return x

    def encoder(self, enc, feature_dims: "dict[str, int]") -> SymTensor:
        n_rows = SymDim.sym("N")
        embed = SymDim.of(enc.embed_dim)
        missing = sorted(set(feature_dims) - set(enc.transforms))
        if missing:
            self.fail("encoder", f"no transform for node type(s) {missing}")
        for type_name in sorted(enc.transforms):
            transform = enc.transforms[type_name]
            raw_dim = feature_dims.get(type_name, transform.in_features)
            piece = SymTensor(
                SymDim.sym(f"N[{type_name}]"),
                SymDim.of(raw_dim),
                self.expected_dtype,
            )
            out = self.linear(f"encoder.transforms.{type_name}", transform, piece)
            if not out.cols.compatible(embed):
                self.fail(
                    f"encoder.transforms.{type_name}",
                    f"maps into {out.cols} columns, not embed_dim {embed}",
                )
        return SymTensor(n_rows, embed, self.expected_dtype)

    # -- convolution transfer functions ---------------------------------
    def conv(self, where: str, layer, h: SymTensor, edge_types: list[str]) -> SymTensor:
        kind = type(layer).__name__
        handler = getattr(self, f"_conv_{kind}", None)
        if handler is None:
            self.fail(where, f"no shape transfer function for layer {kind!r}")
            return h
        return handler(where, layer, h, edge_types)

    def _conv_GCNConv(self, where, layer, h, edge_types) -> SymTensor:
        e_rows = SymDim.sym("E+N")  # self-loops appended
        messages = self.gather(h, e_rows)
        agg = self.segment_reduce(messages, h.rows)
        return self.linear(f"{where}.linear", layer.linear, agg)

    def _conv_SageConv(self, where, layer, h, edge_types) -> SymTensor:
        messages = self.gather(h, SymDim.sym("E"))
        h_neigh = self.segment_reduce(messages, h.rows)
        h_neigh = self.bias_add(
            f"{where}.neigh_bias", h_neigh, layer.neigh_bias.data
        )
        combined = self.concat_cols(where, [h, h_neigh])
        return self.linear(f"{where}.linear", layer.linear, combined)

    def _conv_RGCNConv(self, where, layer, h, edge_types) -> SymTensor:
        agg = None
        for edge_type in layer.edge_types:
            weight = layer.relation_weights[edge_type]
            messages = self.matmul(
                f"{where}.relation_weights[{edge_type}]",
                self.gather(h, SymDim.sym(f"E[{edge_type}]")),
                weight.data,
            )
            contribution = self.segment_reduce(messages, h.rows)
            agg = (
                contribution
                if agg is None
                else self.add(f"{where} (edge {edge_type})", agg, contribution)
            )
        self_term = self.matmul(f"{where}.self_weight", h, layer.self_weight.data)
        if agg is None:
            return self_term
        return self.add(where, agg, self_term)

    def _conv_GATConv(self, where, layer, h, edge_types) -> SymTensor:
        wh = self.matmul(f"{where}.weight", h, layer.weight.data)
        score_dst = self.matmul(f"{where}.attn_dst", wh, layer.attn_dst.data)
        score_src = self.matmul(f"{where}.attn_src", wh, layer.attn_src.data)
        e_rows = SymDim.sym("E+N")
        logits = self.add(
            f"{where} attention logits",
            self.gather(score_dst, e_rows),
            self.gather(score_src, e_rows),
        )
        if logits.cols.is_concrete() and logits.cols.size != 1:
            self.fail(where, f"attention logits must have 1 column, got {logits}")
        messages = self.gather(wh, e_rows)  # alpha (E,1) broadcasts over cols
        return self.segment_reduce(messages, h.rows)

    def _conv_ParaGraphConv(self, where, layer, h, edge_types) -> SymTensor:
        dim = h.cols
        head_cols: "SymDim | None" = None
        for group in layer.edge_types:
            per_head = []
            for head in range(layer.num_heads):
                key = f"{group}#{head}"
                if key not in layer.type_weights:
                    self.fail(where, f"missing type weight for {key!r}")
                    continue
                e_rows = SymDim.sym(f"E[{group}]")
                wh_src = self.matmul(
                    f"{where}.type_weights[{key}]",
                    self.gather(h, e_rows),
                    layer.type_weights[key].data,
                )
                if layer.use_attention:
                    score = self.add(
                        f"{where} attention logits [{key}]",
                        self.matmul(
                            f"{where}.attn_dst[{key}]", wh_src,
                            layer.attn_dst[key].data,
                        ),
                        self.matmul(
                            f"{where}.attn_src[{key}]", wh_src,
                            layer.attn_src[key].data,
                        ),
                    )
                    if score.cols.is_concrete() and score.cols.size != 1:
                        self.fail(
                            where,
                            f"attention logits must have 1 column, got {score}",
                        )
                per_head.append(self.segment_reduce(wh_src, h.rows))
            if not per_head:
                continue
            group_out = (
                per_head[0]
                if len(per_head) == 1
                else self.concat_cols(f"{where} head concat [{group}]", per_head)
            )
            if not group_out.cols.compatible(dim):
                self.fail(
                    where,
                    f"{layer.num_heads} head(s) of group {group!r} concat to "
                    f"{group_out.cols} columns; must reassemble embed_dim {dim}",
                )
            head_cols = group_out.cols
        agg = SymTensor(h.rows, head_cols if head_cols is not None else dim, h.dtype)
        agg = self.bias_add(f"{where}.agg_bias", agg, layer.agg_bias.data)
        combined = (
            self.concat_cols(f"{where} concat skip", [h, agg])
            if layer.concat_skip
            else agg
        )
        return self.linear(f"{where}.update", layer.update, combined)


def _trunk_embeddings(
    checker: _Checker,
    trunk,
    feature_dims: "dict[str, int]",
    *,
    prefix: str = "",
) -> SymTensor:
    """Symbolic node embeddings after encoder + all convolutions.

    Shared by the single-model and multi-task walks; *prefix* namespaces
    failure sites (``trunk.convs.0`` vs ``convs.0``).
    """
    edge_types = sorted(
        getattr(trunk.convs[0], "edge_types", []) if trunk.convs else []
    )
    h = checker.encoder(trunk.encoder, feature_dims)
    embed = SymDim.of(trunk.embed_dim)
    if not h.cols.compatible(embed):
        checker.fail(f"{prefix}encoder", f"produced {h} but embed_dim is {embed}")
    for i, conv in enumerate(trunk.convs):
        h_next = checker.conv(f"{prefix}convs.{i}", conv, h, edge_types)
        if not h_next.cols.compatible(embed):
            checker.fail(
                f"{prefix}convs.{i}",
                f"layer output {h_next} does not preserve embed_dim {embed}; "
                "stacked convolutions require F -> F",
            )
            h_next = SymTensor(h.rows, embed, h_next.dtype)
        h = h_next
    return h


def _check_head(
    checker: _Checker, where: str, readout, picked: SymTensor
) -> None:
    """One readout MLP: contracts against its input, ends in 1 column."""
    out = checker.mlp(where, readout, picked)
    if out.cols.is_concrete() and out.cols.size != 1:
        checker.fail(
            where,
            f"regression head must end in 1 column, got {out}",
        )
    if out.dtype != checker.expected_dtype:
        checker.fail(
            where,
            f"forward pass promotes to {out.dtype}; expected "
            f"{checker.expected_dtype.name} end to end",
        )


def _to_findings(checker: _Checker) -> list[Finding]:
    return [
        Finding(
            rule=RULE_NAME,
            path=f"model://{checker.label}",
            line=0,
            message=message,
            severity=Severity.ERROR,
        )
        for message in checker.errors
    ]


def check_regressor(
    model: "GNNRegressor",
    *,
    feature_dims: "dict[str, int] | None" = None,
    label: str = "model",
    expected_dtype: "str | np.dtype | None" = None,
) -> list[Finding]:
    """Statically validate one constructed :class:`GNNRegressor`.

    Walks encoder -> L convolutions -> readout with symbolic node/edge row
    counts, checking every parameter's shape and dtype against the data
    flow.  *expected_dtype* defaults to the active compute dtype.
    """
    from repro.nn import precision

    dtype = np.dtype(expected_dtype) if expected_dtype else precision.get_compute_dtype()
    checker = _Checker(label=label, expected_dtype=np.dtype(dtype))
    dims = feature_dims or {
        name: t.in_features for name, t in sorted(model.encoder.transforms.items())
    }
    h = _trunk_embeddings(checker, model, dims)
    picked = checker.gather(h, SymDim.sym("n_targets"))
    _check_head(checker, "readout", model.readout, picked)
    return sort_findings(_to_findings(checker))


def check_multitask(
    model,
    *,
    feature_dims: "dict[str, int] | None" = None,
    label: str = "multitask",
    expected_dtype: "str | np.dtype | None" = None,
) -> list[Finding]:
    """Statically validate one constructed :class:`MultiTaskModel`.

    Walks the :class:`SharedTrunk` once (encoder -> L convolutions), then
    feeds the symbolic embeddings to every :class:`ReadoutHead`: each head
    must contract against the trunk's embedding width, end in 1 column,
    and preserve the compute dtype end to end.
    """
    from repro.nn import precision

    dtype = np.dtype(expected_dtype) if expected_dtype else precision.get_compute_dtype()
    checker = _Checker(label=label, expected_dtype=np.dtype(dtype))
    trunk = model.trunk
    dims = feature_dims or {
        name: t.in_features for name, t in sorted(trunk.encoder.transforms.items())
    }
    h = _trunk_embeddings(checker, trunk, dims, prefix="trunk.")
    if not model.heads:
        checker.fail("heads", "multi-task model has no readout heads")
    for name in sorted(model.heads):
        picked = checker.gather(h, SymDim.sym(f"n[{name}]"))
        _check_head(
            checker, f"heads.{name}.readout", model.heads[name].readout, picked
        )
    return sort_findings(_to_findings(checker))


def _default_feature_dims() -> "dict[str, int]":
    from repro.circuits.devices import NODE_TYPES
    from repro.graph.features import feature_dim

    return {t: feature_dim(t) for t in NODE_TYPES}


def check_model_config(config: dict) -> list[Finding]:
    """Build the model a config describes and run :func:`check_regressor`.

    Config keys mirror ``GNNRegressor`` / ``TrainConfig``: ``conv`` (name),
    plus optional ``embed_dim``, ``num_layers``, ``num_fc_layers``,
    ``dtype``, ``conv_kwargs``, ``feature_dims`` and ``label``.
    ``trunk: "shared"`` (the :class:`TrainPlan` spelling) switches to the
    multi-task ensemble — see :func:`check_multitask_config`.
    """
    from repro import rng as rng_mod
    from repro.models.base import GNNRegressor
    from repro.nn import precision

    if config.get("trunk") == "shared":
        return check_multitask_config(config)
    conv = config["conv"]
    label = config.get("label") or _config_label(config)
    dtype = config.get("dtype", "float64")
    feature_dims = config.get("feature_dims") or _default_feature_dims()
    rng = rng_mod.stream(DEFAULT_MASTER_SEED, "staticcheck", label)
    try:
        with precision.compute_dtype(dtype):
            model = GNNRegressor(
                conv,
                feature_dims,
                rng,
                embed_dim=config.get("embed_dim", 32),
                num_layers=config.get("num_layers", 5),
                num_fc_layers=config.get("num_fc_layers", 4),
                conv_kwargs=config.get("conv_kwargs") or {},
            )
            return check_regressor(
                model, feature_dims=feature_dims, label=label
            )
    except Exception as exc:  # construction itself violated a contract
        return [
            Finding(
                rule=RULE_NAME,
                path=f"model://{label}",
                line=0,
                message=f"model construction failed: {type(exc).__name__}: {exc}",
                severity=Severity.ERROR,
            )
        ]


def _default_head_depths(config: dict) -> "dict[str, int]":
    """Per-target readout depths for a multi-task config.

    Mirrors :func:`repro.models.trainer.resolve_target_scaler`: net targets
    (CAP) read out through 4 FC layers, device parameters through 2, unless
    the config pins ``num_fc_layers`` for every head.
    """
    from repro.data.targets import ALL_TARGETS

    pinned = config.get("num_fc_layers")
    return {
        spec.name: (
            pinned if pinned is not None else (4 if spec.kind == "net" else 2)
        )
        for spec in ALL_TARGETS
    }


def check_multitask_config(config: dict) -> list[Finding]:
    """Build the multi-task model a config describes and check it.

    Accepts the same keys as :func:`check_model_config` plus optional
    ``heads`` (mapping target name -> readout depth; defaults to the
    paper's 13 targets at their per-kind depths).
    """
    from repro import rng as rng_mod
    from repro.models.multitask import MultiTaskModel, ReadoutHead, SharedTrunk
    from repro.nn import precision

    label = config.get("label") or _config_label(config)
    dtype = config.get("dtype", "float64")
    feature_dims = config.get("feature_dims") or _default_feature_dims()
    embed_dim = config.get("embed_dim", 32)
    head_depths = config.get("heads") or _default_head_depths(config)
    try:
        with precision.compute_dtype(dtype):
            trunk = SharedTrunk(
                config["conv"],
                feature_dims,
                rng_mod.stream(DEFAULT_MASTER_SEED, "staticcheck", label, "trunk"),
                embed_dim=embed_dim,
                num_layers=config.get("num_layers", 5),
                conv_kwargs=config.get("conv_kwargs") or {},
            )
            heads = {
                name: ReadoutHead(
                    embed_dim,
                    depth,
                    rng_mod.stream(
                        DEFAULT_MASTER_SEED, "staticcheck", label, "head", name
                    ),
                )
                for name, depth in sorted(head_depths.items())
            }
            model = MultiTaskModel(trunk, heads)
            return check_multitask(
                model, feature_dims=feature_dims, label=label
            )
    except Exception as exc:  # construction itself violated a contract
        return [
            Finding(
                rule=RULE_NAME,
                path=f"model://{label}",
                line=0,
                message=f"model construction failed: {type(exc).__name__}: {exc}",
                severity=Severity.ERROR,
            )
        ]


def _config_label(config: dict) -> str:
    parts = [config["conv"]]
    if config.get("trunk") == "shared":
        parts.append("multitask")
        if config.get("num_fc_layers") is not None:
            parts.append(f"fc{config['num_fc_layers']}")
    else:
        parts.append(f"fc{config.get('num_fc_layers', 4)}")
    parts.append(str(config.get("dtype", "float64")))
    for key, value in sorted((config.get("conv_kwargs") or {}).items()):
        parts.append(f"{key}={value}")
    return "/".join(parts)


def shipped_configs() -> list[dict]:
    """Every model configuration the repo ships.

    Five convolution families x the paper's readout depths (4 FC for CAP,
    2 for device parameters) x both ``TrainConfig.dtype`` precisions, the
    linear-readout baseline (``num_fc_layers=0``), and each ParaGraph
    ablation from §V (attention off, shared edge-type weights, no concat
    skip, multi-head attention).
    """
    from repro.models.convs import GNN_MODEL_NAMES

    configs: list[dict] = []
    for conv in GNN_MODEL_NAMES:
        for num_fc in (4, 2):  # CAP and device-parameter readouts
            for dtype in ("float64", "float32"):
                configs.append(
                    {"conv": conv, "num_fc_layers": num_fc, "dtype": dtype}
                )
    for dtype in ("float64", "float32"):  # linear-readout baseline
        configs.append({"conv": "paragraph", "num_fc_layers": 0, "dtype": dtype})
    for ablation in (
        {"use_attention": False},
        {"group_edge_types": False},
        {"concat_skip": False},
        {"num_heads": 4},
    ):
        configs.append(
            {
                "conv": "paragraph",
                "num_fc_layers": 4,
                "dtype": "float64",
                "conv_kwargs": dict(ablation),
            }
        )
    for dtype in ("float64", "float32"):  # shared-trunk multi-task ensemble
        configs.append({"conv": "paragraph", "trunk": "shared", "dtype": dtype})
    return configs


def check_all_shipped() -> list[Finding]:
    """Validate every shipped configuration; a clean repo returns []."""
    findings: list[Finding] = []
    for config in shipped_configs():
        findings.extend(check_model_config(config))
    return sort_findings(findings)
