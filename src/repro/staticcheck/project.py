"""Whole-program symbol table and call graph for ``repro.staticcheck``.

The per-module lint rules (:mod:`repro.staticcheck.rules`) see one
``ast.Module`` at a time; the whole-program rules
(:mod:`repro.staticcheck.project_rules`) need to know *what calls what*
across the repo — which functions a forked child executes, which locks a
callee acquires while the caller holds another, which helper two modules
away returns a float64 array into the serving hot path.

:class:`ProjectContext` provides that layer:

* **Symbol table** — every module under ``src/repro`` parsed once
  (reusing :class:`~repro.staticcheck.engine.ModuleContext`, so pragmas
  ride along), with its classes, methods, module-level functions and
  import aliases resolved to dotted ``repro.*`` names.
* **Call graph** — per-function resolved callees.  Resolution handles
  direct names (``helper()``), imported names (``from x import f``),
  module-attribute calls (``mod.f()``), constructor calls
  (``ClassName()`` -> ``__init__``), ``self.method()`` through the known
  base classes, and ``obj.method()`` where ``obj``'s class is locally
  inferable (assigned from a known constructor, an annotated parameter,
  or a call whose return type is a known accessor).  As a last resort an
  attribute call resolves by *unique method name* against the known repo
  classes — class-hierarchy analysis in the small.
* **Reachability** — BFS over the call graph from any root set
  (:meth:`ProjectContext.reachable_from`), which is what "code the
  serving path can execute" and "code a forked child runs" mean.

Everything is a heuristic over ``ast`` — no imports are executed.  The
rules that consume this are expected to err on the side of silence when
resolution fails; an unresolved call simply contributes no edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.staticcheck.engine import ModuleContext, dotted_name

#: Method names never resolved by the unique-name CHA fallback: they
#: collide with stdlib container/file/socket/lock APIs, so ``x.items()``
#: on a plain dict would otherwise resolve to whatever repo class happens
#: to define the only ``items`` method.  Explicitly-typed receivers still
#: resolve these normally.
CHA_AMBIGUOUS_NAMES = frozenset(
    {
        # containers
        "keys", "values", "items", "get", "setdefault", "update", "pop",
        "popitem", "clear", "copy", "append", "extend", "insert", "remove",
        "sort", "reverse", "count", "index", "add", "discard",
        # files / mmaps / sockets
        "read", "write", "readline", "readlines", "flush", "seek", "tell",
        "close", "open", "send", "recv", "sendall", "accept", "bind",
        "listen", "connect", "fileno", "detach", "shutdown", "unlink",
        # locks / threads / queues
        "acquire", "release", "locked", "wait", "notify", "notify_all",
        "set", "is_set", "join", "start", "put", "task_done",
        # strings / misc
        "split", "strip", "format", "encode", "decode", "lower", "upper",
    }
)


def module_name_of(path: str) -> str:
    """``src/repro/serve/pool.py`` -> ``repro.serve.pool``."""
    parts = path.split("/")
    if parts[:1] == ["src"]:
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method, addressable by its dotted qualname."""

    qualname: str  # "repro.serve.pool.ServerPool.start"
    module: str  # "repro.serve.pool"
    path: str  # "src/repro/serve/pool.py"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: str | None = None  # owning class (None for module level)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class: its methods and resolved repo base classes."""

    qualname: str  # "repro.serve.pool.ServerPool"
    module: str
    path: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: dotted qualnames of base classes that resolve to repo classes
    bases: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ModuleInfo:
    """Parsed facts about one module."""

    name: str  # dotted
    path: str
    ctx: ModuleContext
    #: local alias -> dotted target ("np" -> "numpy",
    #: "Engine" -> "repro.api.engine.Engine")
    imports: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-global name -> class qualname, from ``_X = ClassName(...)``
    #: assignments at module level (resolved lazily, None = not yet)
    global_types: "dict[str, str] | None" = None


def _collect_imports(tree: ast.Module, module: str) -> dict[str, str]:
    aliases: dict[str, str] = {}
    package = module.rsplit(".", 1)[0] if "." in module else module
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname is None and "." in alias.name:
                    # `import a.b.c` binds `a`, but calls spell a.b.c.f —
                    # keep the full dotted form resolvable too
                    aliases[alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:  # relative import: resolve against the package
                anchor = module.split(".")
                # level 1 = current package for module files
                anchor = anchor[: len(anchor) - node.level + (0 if "." in module else 0)]
                prefix = ".".join(anchor)
                base = f"{prefix}.{base}" if base else prefix
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
    del package
    return aliases


class ProjectContext:
    """The project-wide view whole-program rules consume."""

    def __init__(self, contexts: Iterable[ModuleContext]):
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        #: every known class, keyed by dotted qualname
        self.classes: dict[str, ClassInfo] = {}
        #: every known function/method, keyed by dotted qualname
        self.functions: dict[str, FunctionInfo] = {}
        #: method name -> class qualnames defining it (for CHA fallback)
        self._method_sites: dict[str, list[str]] = {}
        self._local_types_cache: dict[str, dict[str, str]] = {}
        for ctx in contexts:
            self._index_module(ctx)
        self._resolve_bases()
        #: caller qualname -> set of callee qualnames
        self.call_graph: dict[str, set[str]] = {}
        for info in self.functions.values():
            self.call_graph[info.qualname] = set(
                callee.qualname for _, callee in self.calls_in(info)
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_files(cls, root: str, relpaths: Iterable[str]) -> "ProjectContext":
        import os

        contexts = []
        for rel in relpaths:
            full = os.path.join(root, rel.replace("/", os.sep))
            with open(full, encoding="utf-8") as handle:
                source = handle.read()
            contexts.append(ModuleContext.from_source(rel.replace(os.sep, "/"), source))
        return cls(contexts)

    def _index_module(self, ctx: ModuleContext) -> None:
        name = module_name_of(ctx.path)
        info = ModuleInfo(name=name, path=ctx.path, ctx=ctx)
        info.imports = _collect_imports(ctx.tree, name)
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{name}.{node.name}"
                fn = FunctionInfo(qual, name, ctx.path, node)
                info.functions[node.name] = fn
                self.functions[qual] = fn
            elif isinstance(node, ast.ClassDef):
                cqual = f"{name}.{node.name}"
                cinfo = ClassInfo(cqual, name, ctx.path, node)
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mqual = f"{cqual}.{stmt.name}"
                        fn = FunctionInfo(mqual, name, ctx.path, stmt, node.name)
                        cinfo.methods[stmt.name] = fn
                        self.functions[mqual] = fn
                        self._method_sites.setdefault(stmt.name, []).append(cqual)
                info.classes[node.name] = cinfo
                self.classes[cqual] = cinfo
        self.modules[name] = info
        self.by_path[ctx.path] = info

    def _resolve_bases(self) -> None:
        for info in self.modules.values():
            for cinfo in info.classes.values():
                for base in cinfo.node.bases:
                    resolved = self._resolve_name(info, dotted_name(base))
                    if resolved in self.classes:
                        cinfo.bases.append(resolved)

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def _resolve_name(self, module: ModuleInfo, dotted: str) -> str:
        """Resolve a dotted name used in *module* to a project qualname.

        ``Engine`` -> ``repro.api.engine.Engine`` via the import table;
        ``pool.ServerPool`` -> through the module alias; already-local
        names resolve against the module's own tables.  Returns the input
        unchanged when nothing matches (callers test membership).
        """
        if not dotted:
            return ""
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is not None:
            resolved = f"{target}.{rest}" if rest else target
        elif head in module.classes or head in module.functions:
            resolved = f"{module.name}.{dotted}"
        else:
            resolved = dotted
        # an import of a module member may itself need one more hop:
        # `from repro.serve import pool` then `pool.ServerPool`
        if (
            resolved not in self.classes
            and resolved not in self.functions
            and resolved not in self.modules
        ):
            prefix, _, attr = resolved.rpartition(".")
            if prefix in self.modules and attr:
                sub = self.modules[prefix]
                target = sub.imports.get(attr)
                if target is not None:
                    resolved = target
        return resolved

    def resolve_class(self, module: ModuleInfo, dotted: str) -> ClassInfo | None:
        resolved = self._resolve_name(module, dotted)
        return self.classes.get(resolved)

    def lookup_method(self, cls: ClassInfo, method: str) -> FunctionInfo | None:
        """Method lookup through the known part of the MRO."""
        seen: set[str] = set()
        stack = [cls.qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            info = self.classes.get(qual)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack.extend(info.bases)
        return None

    # ------------------------------------------------------------------
    # Local type inference (per function body)
    # ------------------------------------------------------------------
    def _local_types(self, fn: FunctionInfo) -> dict[str, str]:
        """Map local variable names to class qualnames where inferable.

        Sources: ``x = ClassName(...)`` constructor calls, annotated
        parameters / assignments naming a known class, and ``self`` inside
        methods.
        """
        cached = self._local_types_cache.get(fn.qualname)
        if cached is not None:
            return cached
        module = self.modules[fn.module]
        types: dict[str, str] = {}
        if fn.class_name is not None:
            types["self"] = f"{fn.module}.{fn.class_name}"
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                ann = _annotation_name(arg.annotation)
                resolved = self._resolve_name(module, ann) if ann else ""
                if resolved in self.classes:
                    types[arg.arg] = resolved
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = self._resolve_name(module, dotted_name(node.value.func))
                target_cls = None
                if callee in self.classes:
                    target_cls = callee
                elif callee in self.functions:
                    target_cls = self._returned_class(self.functions[callee])
                if target_cls:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = target_cls
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                ann = _annotation_name(node.annotation)
                resolved = self._resolve_name(module, ann) if ann else ""
                if resolved in self.classes:
                    types[node.target.id] = resolved
        self._local_types_cache[fn.qualname] = types
        return types

    def _global_types(self, module: ModuleInfo) -> dict[str, str]:
        """Types of module-level singletons: ``_TRACER = Tracer()``."""
        if module.global_types is None:
            types: dict[str, str] = {}
            for node in module.ctx.tree.body:
                if not (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                callee = self._resolve_name(
                    module, dotted_name(node.value.func)
                )
                if callee in self.classes:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = callee
            module.global_types = types
        return module.global_types

    def _returned_class(self, fn: FunctionInfo) -> str | None:
        """Class qualname a function returns, via its return annotation or
        a trivially-analysable ``return <global>`` of a known instance."""
        returns = getattr(fn.node, "returns", None)
        if returns is not None:
            ann = _annotation_name(returns)
            if ann:
                resolved = self._resolve_name(self.modules[fn.module], ann)
                if resolved in self.classes:
                    return resolved
        return None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def calls_in(
        self, fn: FunctionInfo
    ) -> Iterator[tuple[ast.Call, FunctionInfo]]:
        """Yield ``(call_node, resolved_callee)`` for calls inside *fn*.

        Nested defs are included (their bodies execute as part of the
        enclosing function when called; closures in this repo are
        overwhelmingly immediately-wired callbacks).
        """
        module = self.modules[fn.module]
        types = self._local_types(fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self._resolve_call(module, fn, types, node)
            if callee is not None:
                yield node, callee

    def _resolve_call(
        self,
        module: ModuleInfo,
        fn: FunctionInfo,
        types: dict[str, str],
        call: ast.Call,
    ) -> FunctionInfo | None:
        func = call.func
        # obj.method(...) with an inferable receiver type
        if isinstance(func, ast.Attribute):
            base = func.value
            # chained accessor: obs.registry().attach(...)
            if isinstance(base, ast.Call):
                accessor = self._resolve_name(module, dotted_name(base.func))
                accessor_fn = self.functions.get(accessor)
                if accessor_fn is not None:
                    cls_qual = self._returned_class(accessor_fn)
                    if cls_qual is not None:
                        cls = self.classes[cls_qual]
                        resolved = self.lookup_method(cls, func.attr)
                        if resolved is not None:
                            return resolved
            if isinstance(base, ast.Name):
                cls_qual = types.get(base.id) or self._global_types(module).get(
                    base.id
                )
                if cls_qual is not None:
                    cls = self.classes.get(cls_qual)
                    if cls is not None:
                        resolved = self.lookup_method(cls, func.attr)
                        if resolved is not None:
                            return resolved
        dotted = dotted_name(func)
        if dotted:
            resolved_name = self._resolve_name(module, dotted)
            if resolved_name in self.functions:
                return self.functions[resolved_name]
            if resolved_name in self.classes:  # constructor
                init = self.lookup_method(self.classes[resolved_name], "__init__")
                if init is not None:
                    return init
        # CHA fallback: attribute call whose method name is defined by
        # exactly one known repo class — and is not a stdlib-colliding
        # name (``.values()`` on a plain dict must not resolve)
        if (
            isinstance(func, ast.Attribute)
            and not isinstance(func.value, ast.Call)
            and func.attr not in CHA_AMBIGUOUS_NAMES
        ):
            sites = self._method_sites.get(func.attr, [])
            if len(sites) == 1:
                return self.classes[sites[0]].methods[func.attr]
        return None

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Qualnames of every function reachable from *roots* (inclusive)."""
        seen: set[str] = set()
        stack = [qual for qual in roots if qual in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            stack.extend(self.call_graph.get(qual, ()))
        return seen

    def reachable_paths(self, roots: Iterable[str]) -> set[str]:
        """Repo-relative paths of modules holding reachable functions."""
        return {
            self.functions[qual].path
            for qual in self.reachable_from(roots)
            if qual in self.functions
        }

    def callers_of(self, qual: str) -> set[str]:
        return {
            caller
            for caller, callees in self.call_graph.items()
            if qual in callees
        }


def _annotation_name(node: ast.AST) -> str:
    """Best-effort dotted name of a type annotation.

    Handles plain names, ``a.b.C``, string annotations, and strips one
    layer of ``Optional[...]`` / ``X | None``.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        # "ClassName | None" and "Optional[ClassName]" both reduce
        text = text.replace("Optional[", "").rstrip("]")
        text = text.split("|")[0].strip()
        return text.strip('"')
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_name(node.left)
        return left if left and left != "None" else _annotation_name(node.right)
    if isinstance(node, ast.Subscript):
        base = _annotation_name(node.value)
        if base in ("Optional",):
            return _annotation_name(node.slice)
        return base
    return dotted_name(node)
