"""Committed baseline of grandfathered findings.

The baseline lets the checker be introduced into a codebase with existing
findings without a big-bang cleanup: known findings are recorded by
fingerprint (rule + path + normalised source snippet, so they survive
line-number drift) and ``repro check`` only fails on findings *not* in the
file.  Shrink it over time; ``repro check --update-baseline`` rewrites it
from the current findings and drops entries that no longer fire.

Format (``staticcheck-baseline.json`` at the repo root)::

    {
      "version": 1,
      "findings": [
        {"fingerprint": "...", "rule": "...", "path": "...",
         "count": 2, "snippet": "..."}
      ]
    }

``count`` carries multiplicity: two identical lines in one file need two
baseline slots, so a *new* third occurrence still fails.
"""

from __future__ import annotations

import collections
import json
import os
from dataclasses import dataclass, field

from repro.errors import StaticCheckError
from repro.staticcheck.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "staticcheck-baseline.json"


@dataclass
class Baseline:
    """Fingerprint -> allowed occurrence count."""

    counts: dict[str, int] = field(default_factory=dict)
    #: metadata rows for serialisation, keyed by fingerprint
    meta: dict[str, dict] = field(default_factory=dict)
    path: str | None = None

    def __len__(self) -> int:
        return sum(self.counts.values())

    def apply(self, findings: "list[Finding]") -> "list[Finding]":
        """Mark findings covered by the baseline (first-come within budget)."""
        budget = collections.Counter(self.counts)
        out: list[Finding] = []
        for finding in findings:
            fp = finding.fingerprint()
            if not finding.suppressed and budget[fp] > 0:
                budget[fp] -= 1
                out.append(finding.with_flags(baselined=True))
            else:
                out.append(finding)
        return out

    def stale_entries(self, findings: "list[Finding]") -> "list[dict]":
        """Baseline rows whose finding no longer fires (cleanup candidates)."""
        live = collections.Counter(f.fingerprint() for f in findings)
        stale = []
        for fp, count in sorted(self.counts.items()):
            unused = count - min(live[fp], count)
            if unused > 0:
                row = dict(self.meta.get(fp, {"fingerprint": fp}))
                row["count"] = unused
                stale.append(row)
        return stale

    @classmethod
    def from_findings(cls, findings: "list[Finding]") -> "Baseline":
        baseline = cls()
        for finding in findings:
            if finding.suppressed:
                continue
            fp = finding.fingerprint()
            baseline.counts[fp] = baseline.counts.get(fp, 0) + 1
            baseline.meta.setdefault(
                fp,
                {
                    "fingerprint": fp,
                    "rule": finding.rule,
                    "path": finding.path,
                    "snippet": finding.snippet,
                },
            )
        return baseline


def load_baseline(path: "str | os.PathLike") -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    path = os.fspath(path)
    if not os.path.exists(path):
        return Baseline(path=path)
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise StaticCheckError(f"unreadable baseline {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise StaticCheckError(f"{path!r} is not a staticcheck baseline")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise StaticCheckError(
            f"baseline {path!r} has version {version!r}; "
            f"this checker reads version {BASELINE_VERSION}"
        )
    baseline = Baseline(path=path)
    for row in payload["findings"]:
        fp = row.get("fingerprint")
        if not isinstance(fp, str) or not fp:
            raise StaticCheckError(f"baseline {path!r} has a row without a fingerprint")
        count = int(row.get("count", 1))
        baseline.counts[fp] = baseline.counts.get(fp, 0) + count
        baseline.meta.setdefault(fp, {k: v for k, v in row.items() if k != "count"})
    return baseline


def write_baseline(path: "str | os.PathLike", baseline: Baseline) -> str:
    """Serialise a baseline deterministically (sorted by path, then rule)."""
    rows = []
    for fp, count in baseline.counts.items():
        row = dict(baseline.meta.get(fp, {"fingerprint": fp}))
        row["count"] = count
        rows.append(row)
    rows.sort(key=lambda r: (r.get("path", ""), r.get("rule", ""), r["fingerprint"]))
    payload = {"version": BASELINE_VERSION, "findings": rows}
    path = os.fspath(path)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path
