"""Finding and severity types shared by the lint engine and shape checker."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings fail ``repro check`` (and CI) unless baselined or
    suppressed by a pragma; ``WARNING`` findings are reported but never
    affect the exit code.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RelatedLocation:
    """A secondary location a whole-program finding depends on.

    Whole-program rules (call-graph / dataflow) anchor a finding in one
    file but reason about code in another — a lock acquired here while
    held there, a float64 source flowing into a serving function two
    modules away.  The related location carries that second site; its
    ``snippet`` (not its line number) joins the fingerprint so the
    finding's identity survives line drift in *both* files.
    """

    path: str
    line: int = 0
    snippet: str = ""
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "snippet": self.snippet,
            "note": self.note,
        }


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding, from a lint rule or the shape checker.

    ``path`` is repo-relative with forward slashes for files, or a
    ``model://`` pseudo-path for shape-contract findings.  ``snippet`` is
    the stripped source line the finding anchors to; the baseline
    fingerprint hashes it instead of the line number so findings survive
    unrelated edits above them.  ``related`` carries the secondary
    locations of whole-program findings (the other end of a lock cycle,
    the taint source feeding a sink) — their snippets join the
    fingerprint, so identity survives line drift across every involved
    file.
    """

    rule: str
    path: str
    line: int
    message: str
    severity: Severity = Severity.ERROR
    col: int = 0
    snippet: str = ""
    related: tuple[RelatedLocation, ...] = ()
    suppressed: bool = field(default=False, compare=False)
    baselined: bool = field(default=False, compare=False)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Hashes rule + path + normalised snippet, plus (path, snippet) of
        every related location — never a line number, so entries survive
        unrelated edits above any of the involved sites.
        """
        parts = [self.rule, self.path, " ".join(self.snippet.split())]
        for loc in self.related:
            parts.append(loc.path)
            parts.append(" ".join(loc.snippet.split()))
        payload = "\x1f".join(parts)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path

    def as_dict(self) -> dict:
        row = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }
        if self.related:
            row["related"] = [loc.as_dict() for loc in self.related]
        return row

    def with_flags(
        self, *, suppressed: bool | None = None, baselined: bool | None = None
    ) -> "Finding":
        return replace(
            self,
            suppressed=self.suppressed if suppressed is None else suppressed,
            baselined=self.baselined if baselined is None else baselined,
        )


def sort_findings(findings: "list[Finding]") -> "list[Finding]":
    """Deterministic report order: path, then line, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
