"""Finding and severity types shared by the lint engine and shape checker."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings fail ``repro check`` (and CI) unless baselined or
    suppressed by a pragma; ``WARNING`` findings are reported but never
    affect the exit code.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding, from a lint rule or the shape checker.

    ``path`` is repo-relative with forward slashes for files, or a
    ``model://`` pseudo-path for shape-contract findings.  ``snippet`` is
    the stripped source line the finding anchors to; the baseline
    fingerprint hashes it instead of the line number so findings survive
    unrelated edits above them.
    """

    rule: str
    path: str
    line: int
    message: str
    severity: Severity = Severity.ERROR
    col: int = 0
    snippet: str = ""
    suppressed: bool = field(default=False, compare=False)
    baselined: bool = field(default=False, compare=False)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (rule + path + snippet)."""
        payload = "\x1f".join((self.rule, self.path, " ".join(self.snippet.split())))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    def with_flags(
        self, *, suppressed: bool | None = None, baselined: bool | None = None
    ) -> "Finding":
        return replace(
            self,
            suppressed=self.suppressed if suppressed is None else suppressed,
            baselined=self.baselined if baselined is None else baselined,
        )


def sort_findings(findings: "list[Finding]") -> "list[Finding]":
    """Deterministic report order: path, then line, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
