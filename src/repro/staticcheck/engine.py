"""The pluggable AST lint engine.

A :class:`Rule` inspects one parsed module (:class:`ModuleContext`) and
yields :class:`~repro.staticcheck.findings.Finding` objects.  The
:class:`LintEngine` parses each file once, runs every rule over it,
applies ``# staticcheck: ignore[...]`` pragmas, and validates that
pragmas reference real rule names (a typo'd pragma would otherwise
silently suppress nothing while looking load-bearing).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import StaticCheckError
from repro.staticcheck.findings import Finding, Severity, sort_findings
from repro.staticcheck.pragmas import PragmaIndex, parse_pragmas


@dataclass
class ModuleContext:
    """Everything a rule needs about one module, parsed once."""

    path: str  # repo-relative, forward slashes
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    pragmas: PragmaIndex = field(default_factory=PragmaIndex)

    @classmethod
    def from_source(cls, path: str, source: str) -> "ModuleContext":
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise StaticCheckError(f"cannot parse {path!r}: {exc}") from exc
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            pragmas=parse_pragmas(source),
        )

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_package(self, *parts: str) -> bool:
        """True when the module lives under ``src/repro/<parts...>``."""
        prefix = "/".join(("src", "repro", *parts))
        return self.path == prefix or self.path.startswith(prefix + "/")

    def is_any(self, *names: str) -> bool:
        """True when the module is exactly one of ``src/repro/<name>``."""
        return any(self.path == f"src/repro/{name}" for name in names)


class Rule:
    """Base class for lint rules.

    Subclasses set ``name`` / ``severity`` / ``description`` and implement
    :meth:`check_module`.  ``name`` is the identity used by pragmas, the
    baseline, CLI ``--rules`` filters and reports.
    """

    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: ModuleContext,
        node: "ast.AST | None",
        message: str,
        *,
        line: int | None = None,
        severity: Severity | None = None,
    ) -> Finding:
        lineno = line if line is not None else getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            rule=self.name,
            path=ctx.path,
            line=lineno,
            col=col,
            message=message,
            severity=severity or self.severity,
            snippet=ctx.line_at(lineno),
        )


class LintEngine:
    """Run a set of rules over source files, applying pragmas."""

    def __init__(
        self,
        rules: Sequence[Rule],
        known_rule_names: Iterable[str] = (),
    ):
        names = [rule.name for rule in rules]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise StaticCheckError(f"duplicate rule names: {sorted(dupes)}")
        self.rules = list(rules)
        # Rule names that are valid pragma targets even though this engine
        # does not run them (whole-program rules, the shape checker):
        # pragmas for those live on source lines this engine *does* parse.
        self.known_rule_names = frozenset(known_rule_names)

    def rule_names(self) -> tuple[str, ...]:
        return tuple(rule.name for rule in self.rules)

    # ------------------------------------------------------------------
    def check_source(self, path: str, source: str) -> list[Finding]:
        """Lint one module given its source text (repo-relative *path*)."""
        ctx = ModuleContext.from_source(path, source)
        findings: list[Finding] = []
        for rule in self.rules:
            for finding in rule.check_module(ctx):
                if ctx.pragmas.suppresses(finding.rule, finding.line):
                    finding = finding.with_flags(suppressed=True)
                findings.append(finding)
        findings.extend(self._pragma_findings(ctx))
        return sort_findings(findings)

    def check_file(self, root: str, relpath: str) -> list[Finding]:
        full = os.path.join(root, relpath.replace("/", os.sep))
        with open(full, encoding="utf-8") as handle:
            source = handle.read()
        return self.check_source(relpath.replace(os.sep, "/"), source)

    def check_files(self, root: str, relpaths: Iterable[str]) -> list[Finding]:
        findings: list[Finding] = []
        for relpath in relpaths:
            findings.extend(self.check_file(root, relpath))
        return sort_findings(findings)

    # ------------------------------------------------------------------
    def _pragma_findings(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Report malformed pragmas and pragmas naming unknown rules."""
        known = set(self.rule_names()) | self.known_rule_names
        unknown = ctx.pragmas.rules_mentioned() - known
        if unknown:
            # anchor on the first line that mentions an unknown rule
            for lineno, rules in sorted(ctx.pragmas.by_line.items()):
                bad = sorted(set(rules) & unknown)
                if bad:
                    yield Finding(
                        rule="invalid-pragma",
                        path=ctx.path,
                        line=lineno,
                        message=(
                            f"pragma suppresses unknown rule(s) {bad}; "
                            f"known rules: {sorted(known)}"
                        ),
                        severity=Severity.ERROR,
                        snippet=ctx.line_at(lineno),
                    )
            bad_file_wide = sorted(ctx.pragmas.file_wide & unknown)
            if bad_file_wide:
                yield Finding(
                    rule="invalid-pragma",
                    path=ctx.path,
                    line=1,
                    message=(
                        f"ignore-file pragma names unknown rule(s) "
                        f"{bad_file_wide}; known rules: {sorted(known)}"
                    ),
                    severity=Severity.ERROR,
                    snippet=ctx.line_at(1),
                )
        for lineno, text in ctx.pragmas.malformed:
            yield Finding(
                rule="invalid-pragma",
                path=ctx.path,
                line=lineno,
                message=f"unparseable staticcheck pragma: {text!r}",
                severity=Severity.ERROR,
                snippet=ctx.line_at(lineno),
            )


# ----------------------------------------------------------------------
# Shared AST helpers used by several rules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str:
    """``np.random.default_rng`` -> that string; '' for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def assigned_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples flattened)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from assigned_names(elt)


def is_mutable_literal(node: ast.AST) -> bool:
    """``{}``/``[]``/``set()``/``dict()``/``list()``/comprehensions."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter"}
    return False
