"""Intraprocedural dataflow framework for whole-program rules.

Builds a statement-level control-flow graph over a function's ``ast``
body — including the exception edges that make try/finally analysis
honest — and runs a worklist fixpoint with a pluggable abstract domain.
The project rules use it two ways:

* :class:`ReachingDefs` — the classic instance: which assignments can
  reach each statement.  The precision-taint rule rides on it.
* Path queries — :meth:`CFG.paths_missing` answers "is there an exit
  path from *node* that never passes through a statement satisfying
  *pred*?", which is exactly the resource-lifecycle question ("opened
  here, is close() guaranteed on every exit — including the exception
  exits?").

The CFG is deliberately statement-grained, not basic-block-grained: the
functions in this repo are small, the fixpoint converges in microseconds,
and statement granularity keeps findings anchored to real lines.

Exception modelling: every statement inside a ``try`` body gets an edge
to each handler (and to ``finally``); any statement that *contains a
call* (or a ``raise``) also gets an edge to the function's exceptional
exit — a call can always raise.  That is the approximation under which
"close() on all paths" means what a reviewer expects it to mean.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Generic, Hashable, Iterable, TypeVar

__all__ = [
    "CFGNode",
    "CFG",
    "build_cfg",
    "Domain",
    "fixpoint",
    "ReachingDefs",
    "shallow_exprs",
    "shallow_walk",
]


@dataclass
class CFGNode:
    """One statement (or synthetic entry/exit) in the flow graph."""

    index: int
    stmt: ast.stmt | None  # None for entry / exit / except-entry
    label: str = ""  # "entry", "exit", "exc-exit", or ""
    succs: list[int] = field(default_factory=list)
    #: successors taken only when the statement raises
    exc_succs: list[int] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        return self.stmt.lineno if self.stmt is not None else 0

    def all_succs(self) -> list[int]:
        return self.succs + self.exc_succs


class CFG:
    """Statement-level control-flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        #: exit taken when an exception escapes the function
        self.exc_exit = self._new(None, "exc-exit")

    def _new(self, stmt: ast.stmt | None, label: str = "") -> int:
        node = CFGNode(len(self.nodes), stmt, label)
        self.nodes.append(node)
        return node.index

    def add_edge(self, src: int, dst: int, *, exceptional: bool = False) -> None:
        bucket = self.nodes[src].exc_succs if exceptional else self.nodes[src].succs
        if dst not in bucket:
            bucket.append(dst)

    def preds(self) -> dict[int, list[int]]:
        result: dict[int, list[int]] = {n.index: [] for n in self.nodes}
        for node in self.nodes:
            for succ in node.all_succs():
                result[succ].append(node.index)
        return result

    def node_for(self, stmt: ast.stmt) -> CFGNode | None:
        for node in self.nodes:
            if node.stmt is stmt:
                return node
        return None

    # ------------------------------------------------------------------
    # Path queries
    # ------------------------------------------------------------------
    def paths_missing(
        self,
        start: int,
        satisfies: Callable[[CFGNode], bool],
        *,
        include_exceptional: bool = True,
    ) -> list[CFGNode]:
        """Exit nodes reachable from *start* without passing a satisfying
        statement.

        Walks forward from *start*'s successors; a node where
        ``satisfies(node)`` holds stops that branch (the obligation was
        met).  Returns the exit/exc-exit nodes still reachable — an empty
        list means every path discharges the obligation.  When
        *include_exceptional* is false, exception edges are ignored
        (answers "on normal control flow only").

        *start*'s own exception edges are never followed: if the
        allocating statement itself raises, the obligation was never
        incurred.
        """
        seen: set[int] = set()
        stack = list(self.nodes[start].succs)
        leaks: list[CFGNode] = []
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            node = self.nodes[idx]
            if node.stmt is not None and satisfies(node):
                continue
            if node.label in ("exit", "exc-exit"):
                if node.label == "exc-exit" and not include_exceptional:
                    continue
                leaks.append(node)
                continue
            stack.extend(node.succs)
            if include_exceptional:
                stack.extend(node.exc_succs)
        return leaks


def shallow_exprs(stmt: ast.stmt) -> Iterable[ast.expr]:
    """Expressions belonging to *stmt* itself, not to nested statements.

    A compound statement (``if``/``for``/``with``/``try``) is one CFG
    node but ``ast.walk`` would descend into its body — whose statements
    are separate CFG nodes.  Predicates over a single node must look only
    at the statement's own header expressions; this yields them.
    """
    for _, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield item
                elif isinstance(item, ast.withitem):
                    yield item.context_expr
                    if item.optional_vars is not None:
                        yield item.optional_vars


def shallow_walk(stmt: ast.stmt) -> Iterable[ast.AST]:
    """``ast.walk`` restricted to *stmt*'s own header expressions."""
    yield stmt
    for expr in shallow_exprs(stmt):
        yield from ast.walk(expr)


def _contains_call(stmt: ast.stmt) -> bool:
    # Only the statement's own header can raise *at this node* — nested
    # statements of a compound are their own CFG nodes, and a nested
    # def/lambda body runs later, not here.
    if isinstance(stmt, ast.Raise):
        return True
    return any(isinstance(node, ast.Call) for node in shallow_walk(stmt))


class _Builder:
    """Recursive-descent CFG construction.

    Each ``_stmts`` call threads a *frontier* — the set of node indices
    whose normal successor is the next statement — and honours three
    stacks: loop headers/exits for break/continue, the enclosing
    ``finally`` chain for early exits, and the active exception targets
    (handlers + function exc-exit) for raising statements.
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        # (continue_target, break_exit_collector)
        self.loops: list[tuple[int, list[int]]] = []
        # statements that leave early (return/raise) must run finally
        # bodies first; each entry is the head node of a finally body
        self.finally_heads: list[int] = []
        # where a raise inside the current region lands
        self.exc_targets: list[list[int]] = [[cfg.exc_exit]]

    def current_exc_targets(self) -> list[int]:
        return self.exc_targets[-1]

    def _route_exit(self, src: int, final_dst: int) -> None:
        """Edge from *src* to *final_dst*, via enclosing finally bodies."""
        if self.finally_heads:
            self.cfg.add_edge(src, self.finally_heads[-1])
        else:
            self.cfg.add_edge(src, final_dst)

    def _stmts(self, body: list[ast.stmt], frontier: list[int]) -> list[int]:
        for stmt in body:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        cfg = self.cfg
        idx = cfg._new(stmt)
        for src in frontier:
            cfg.add_edge(src, idx)
        # raising potential: calls and raises can transfer to handlers
        if _contains_call(stmt) or isinstance(stmt, ast.Raise):
            for target in self.current_exc_targets():
                if self.finally_heads and target == cfg.exc_exit:
                    cfg.add_edge(idx, self.finally_heads[-1], exceptional=True)
                else:
                    cfg.add_edge(idx, target, exceptional=True)

        if isinstance(stmt, (ast.Return, ast.Raise)):
            if isinstance(stmt, ast.Return):
                self._route_exit(idx, cfg.exit)
            else:
                for target in self.current_exc_targets():
                    if self.finally_heads and target == cfg.exc_exit:
                        cfg.add_edge(idx, self.finally_heads[-1])
                    else:
                        cfg.add_edge(idx, target)
            return []
        if isinstance(stmt, ast.Break):
            if self.loops:
                self.loops[-1][1].append(idx)
            return []
        if isinstance(stmt, ast.Continue):
            if self.loops:
                cfg.add_edge(idx, self.loops[-1][0])
            return []
        if isinstance(stmt, (ast.If,)):
            then_out = self._stmts(stmt.body, [idx])
            else_out = self._stmts(stmt.orelse, [idx]) if stmt.orelse else [idx]
            return then_out + else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: list[int] = []
            self.loops.append((idx, breaks))
            body_out = self._stmts(stmt.body, [idx])
            for src in body_out:
                cfg.add_edge(src, idx)  # back edge
            self.loops.pop()
            else_out = self._stmts(stmt.orelse, [idx]) if stmt.orelse else [idx]
            return else_out + breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._stmts(stmt.body, [idx])
        if isinstance(stmt, ast.Try):
            return self._try(stmt, idx)
        # plain statement
        return [idx]

    def _try(self, stmt: ast.Try, idx: int) -> list[int]:
        cfg = self.cfg
        has_finally = bool(stmt.finalbody)
        finally_head: int | None = None
        if has_finally:
            # synthetic head so early exits from the body have a single
            # place to land before the finally statements
            finally_head = cfg._new(None, "finally")
        handler_heads: list[int] = []
        handler_nodes: list[tuple[ast.ExceptHandler, int]] = []
        for handler in stmt.handlers:
            head = cfg._new(None, "except")
            handler_heads.append(head)
            handler_nodes.append((handler, head))

        # --- try body: raises go to handlers (or finally, then out)
        body_exc: list[int] = list(handler_heads)
        if not handler_heads:
            body_exc = [finally_head] if has_finally else [cfg.exc_exit]
        self.exc_targets.append(body_exc)
        if has_finally:
            self.finally_heads.append(finally_head)  # type: ignore[arg-type]
        body_out = self._stmts(stmt.body, [idx])
        else_out = (
            self._stmts(stmt.orelse, body_out) if stmt.orelse else body_out
        )
        if has_finally:
            self.finally_heads.pop()
        self.exc_targets.pop()

        # --- handlers: run with the *outer* exception context
        handler_outs: list[int] = []
        for handler, head in handler_nodes:
            if has_finally:
                self.finally_heads.append(finally_head)  # type: ignore[arg-type]
            outs = self._stmts(handler.body, [head])
            if has_finally:
                self.finally_heads.pop()
            handler_outs.extend(outs)

        # --- finally: every normal out flows through it
        if has_finally:
            fin_out = self._stmts(stmt.finalbody, [finally_head])  # type: ignore[list-item]
            for src in body_out + else_out + handler_outs:
                if src not in (finally_head,):
                    cfg.add_edge(src, finally_head)  # type: ignore[arg-type]
            # finally may complete an escaping exception or early return:
            # conservatively also connect it onward to both exits
            for out in fin_out:
                cfg.add_edge(out, cfg.exit)
                cfg.add_edge(out, cfg.exc_exit, exceptional=True)
            return fin_out
        return body_out + else_out + handler_outs


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the statement-level CFG of one function body."""
    cfg = CFG()
    builder = _Builder(cfg)
    out = builder._stmts(fn.body, [cfg.entry])
    for src in out:
        cfg.add_edge(src, cfg.exit)
    return cfg


# ----------------------------------------------------------------------
# Worklist fixpoint with a pluggable domain
# ----------------------------------------------------------------------

T = TypeVar("T")


class Domain(Generic[T]):
    """Abstract domain plugged into :func:`fixpoint`.

    Subclasses provide the lattice (``initial``/``join``/``equals``) and
    the per-statement ``transfer`` function.  Facts flow forward.
    """

    def initial(self) -> T:
        raise NotImplementedError

    def transfer(self, node: CFGNode, fact: T) -> T:
        raise NotImplementedError

    def join(self, left: T, right: T) -> T:
        raise NotImplementedError

    def equals(self, left: T, right: T) -> bool:
        return bool(left == right)


def fixpoint(cfg: CFG, domain: Domain[T]) -> dict[int, T]:
    """Forward worklist fixpoint; returns the fact *entering* each node."""
    preds = cfg.preds()
    facts: dict[int, T] = {cfg.entry: domain.initial()}
    out_facts: dict[int, T] = {}
    work = [n.index for n in cfg.nodes]
    iterations = 0
    limit = 50 * max(1, len(cfg.nodes))
    while work and iterations < limit:
        iterations += 1
        idx = work.pop(0)
        node = cfg.nodes[idx]
        incoming: T | None = None
        for pred in preds[idx]:
            if pred in out_facts:
                incoming = (
                    out_facts[pred]
                    if incoming is None
                    else domain.join(incoming, out_facts[pred])
                )
        if idx == cfg.entry:
            incoming = domain.initial()
        if incoming is None:
            continue
        facts[idx] = incoming
        new_out = domain.transfer(node, incoming)
        if idx in out_facts and domain.equals(out_facts[idx], new_out):
            continue
        out_facts[idx] = new_out
        for succ in node.all_succs():
            if succ not in work:
                work.append(succ)
    return facts


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------

Def = tuple[str, int]  # (variable name, defining statement lineno)


class ReachingDefs(Domain[frozenset]):
    """Classic reaching definitions: which ``(name, lineno)`` assignments
    can reach each program point.  Assignment kills prior defs of the
    same name; augmented assignment both uses and redefines."""

    def initial(self) -> frozenset:
        return frozenset()

    def transfer(self, node: CFGNode, fact: frozenset) -> frozenset:
        stmt = node.stmt
        if stmt is None:
            return fact
        defined = _defined_names(stmt)
        if not defined:
            return fact
        kept = frozenset(d for d in fact if d[0] not in defined)
        return kept | frozenset((name, stmt.lineno) for name in defined)

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def analyse(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[ast.stmt, frozenset]:
        """Facts entering each statement, keyed by the stmt node."""
        cfg = build_cfg(fn)
        facts = fixpoint(cfg, self)
        return {
            node.stmt: facts.get(node.index, frozenset())
            for node in cfg.nodes
            if node.stmt is not None
        }


def _defined_names(stmt: ast.stmt) -> set[str]:
    names: set[str] = set()

    def targets_of(target: ast.expr) -> Iterable[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from targets_of(elt)
        elif isinstance(target, ast.Starred):
            yield from targets_of(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.update(targets_of(target))
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        names.update(targets_of(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.update(targets_of(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.update(targets_of(item.optional_vars))
    return names
