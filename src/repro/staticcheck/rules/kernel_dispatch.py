"""``kernel-dispatch``: raw segment reductions outside the kernel backends.

The pluggable backend layer (:mod:`repro.nn.backend`) is the single
dispatch point for segment reductions: it keeps every consumer on the
CSR/plan kernels, lets ``use_backend``/``REPRO_BACKEND`` swap in the
accelerated implementations, and keeps backend parity testable in one
place.  Code that calls ``np.bincount``, ``np.<ufunc>.reduceat`` or
``np.<ufunc>.at`` directly silently opts out of all three — it stays on
the slow composite path whatever backend is active, and its numerics are
invisible to the cross-backend parity tests.

Only the kernel engine itself — ``nn/plan.py`` (the CSR schedules),
``nn/ops.py`` (the dispatching entry points and their legacy fallback)
and the backend implementations ``nn/backend.py`` / ``nn/_numba.py`` —
may use the raw numpy primitives.  Everything else goes through
``repro.nn.ops`` (or a :class:`~repro.nn.plan.SegmentPlan`), or carries
a ``# staticcheck: ignore[kernel-dispatch]`` pragma with a reason.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.staticcheck.engine import ModuleContext, Rule, dotted_name
from repro.staticcheck.findings import Finding

#: The kernel engine: the only modules allowed to touch the primitives.
ALLOWED_MODULES = (
    "nn/plan.py",
    "nn/ops.py",
    "nn/backend.py",
    "nn/_numba.py",
)

_NUMPY_ROOTS = ("np", "numpy")


def _is_raw_reduction(name: str) -> str | None:
    """The offending primitive when *name* is one, else None."""
    parts = name.split(".")
    if parts[0] not in _NUMPY_ROOTS:
        return None
    if len(parts) == 2 and parts[1] == "bincount":
        return "bincount"
    if len(parts) == 3 and parts[2] in ("reduceat", "at"):
        return parts[2]
    return None


class KernelDispatchRule(Rule):
    name = "kernel-dispatch"
    description = (
        "raw np.bincount / np.*.reduceat / np.*.at segment reduction "
        "outside the kernel backends (repro/nn/{plan,ops,backend,_numba}"
        ".py); dispatch through repro.nn.ops or a SegmentPlan"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.is_any(*ALLOWED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            primitive = _is_raw_reduction(dotted_name(node.func))
            if primitive is None:
                continue
            yield self.finding(
                ctx,
                node,
                f"raw numpy {primitive} reduction bypasses the pluggable "
                "kernel backends (repro.nn.backend); use repro.nn.ops / "
                "SegmentPlan so the active backend applies",
            )
