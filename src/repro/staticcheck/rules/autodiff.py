"""``autodiff-bypass``: raw numpy mutation of autodiff state.

Gradients only flow through operations recorded on the tape; code that
mutates ``Tensor.data`` in place, or scatters with ``np.add.at`` /
``ufunc.at`` outside the kernel plan, silently produces wrong gradients
(and loses the SegmentPlan speedup).  Only the engine itself —
``nn/plan.py`` (the kernel schedules), ``nn/tensor.py`` (the Tensor),
``nn/module.py`` (state-dict loading) and ``nn/optim.py`` (in-place
parameter updates are the *definition* of an optimizer step) — may do
either; everything else must go through ``repro.nn.ops``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.staticcheck.engine import ModuleContext, Rule, dotted_name
from repro.staticcheck.findings import Finding

#: Engine modules where in-place mutation is the implementation.
ALLOWED_MODULES = (
    "nn/plan.py",
    "nn/tensor.py",
    "nn/module.py",
    "nn/optim.py",
)


def _mutates_data(target: ast.AST) -> bool:
    """True for ``x.data = ...``, ``x.data[i] = ...`` style targets."""
    if isinstance(target, ast.Attribute) and target.attr == "data":
        return True
    if isinstance(target, ast.Subscript):
        value = target.value
        return isinstance(value, ast.Attribute) and value.attr == "data"
    if isinstance(target, (ast.Tuple, ast.List)):
        return any(_mutates_data(elt) for elt in target.elts)
    return False


class AutodiffBypassRule(Rule):
    name = "autodiff-bypass"
    description = (
        "in-place mutation of Tensor.data or np.*.at scatter outside the "
        "autodiff engine (repro/nn/{plan,tensor,module,optim}.py)"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.is_any(*ALLOWED_MODULES):
            return
        yield from self._check(ctx)

    def _check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name.endswith(".at")
                    and name.count(".") == 2
                    and name.split(".", 1)[0] in ("np", "numpy")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() bypasses the autodiff tape and the "
                        "SegmentPlan kernels; use repro.nn.ops segment "
                        "operations (or a SegmentPlan) instead",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if _mutates_data(target):
                        yield self.finding(
                            ctx,
                            node,
                            "direct assignment to Tensor.data bypasses the "
                            "autodiff tape; build a new Tensor through "
                            "repro.nn.ops instead",
                        )
                        break
            elif isinstance(node, ast.AugAssign) and _mutates_data(node.target):
                yield self.finding(
                    ctx,
                    node,
                    "in-place arithmetic on Tensor.data bypasses the "
                    "autodiff tape; use Tensor operations instead",
                )
