"""``api-surface``: ``__all__`` drift vs definitions and lazy exports.

The curated packages export through ``__all__`` plus (for the lazy ones)
a PEP 562 ``_EXPORTS``-style table driving ``__getattr__``.  The two can
silently drift: a name listed in ``__all__`` that nothing defines raises
``AttributeError`` only when someone finally imports it, and a lazy-table
entry missing from ``__all__`` hides a supported export from
``from pkg import *`` and ``dir()``.  This rule checks, for every module
that declares ``__all__``:

* each ``__all__`` name resolves — to a top-level binding (def / class /
  import / assignment) or a key of the lazy-export table;
* each lazy-export key appears in ``__all__``;
* ``__all__`` holds no duplicates.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.staticcheck.engine import ModuleContext, Rule, assigned_names
from repro.staticcheck.findings import Finding


def _top_level_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module top level (descending into if/try blocks)."""
    names: set[str] = set()

    def scan(body: list) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    names.update(assigned_names(target))
            elif isinstance(node, ast.AnnAssign):
                names.update(assigned_names(node.target))
            elif isinstance(node, ast.If):
                scan(node.body)
                scan(node.orelse)
            elif isinstance(node, ast.Try):
                scan(node.body)
                scan(node.orelse)
                scan(node.finalbody)
                for handler in node.handlers:
                    scan(handler.body)

    scan(tree.body)
    return names


def _string_list(node: ast.AST) -> "list[str] | None":
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: list[str] = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append(elt.value)
    return out


def _lazy_table(tree: ast.Module) -> "tuple[str, list[str]] | None":
    """(table name, keys) of the dict ``__getattr__`` subscripts, if any."""
    getattr_def = next(
        (
            node
            for node in tree.body
            if isinstance(node, ast.FunctionDef) and node.name == "__getattr__"
        ),
        None,
    )
    if getattr_def is None:
        return None
    subscripted: set[str] = set()
    for node in ast.walk(getattr_def):
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            subscripted.add(node.value.id)
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and target.id in subscripted
                and isinstance(node.value, ast.Dict)
            ):
                keys = [
                    key.value
                    for key in node.value.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                ]
                return target.id, keys
    return None


class ApiSurfaceRule(Rule):
    name = "api-surface"
    description = (
        "__all__ drift: unresolvable exports, lazy-export (PEP 562) table "
        "keys missing from __all__, duplicate entries"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        all_node: ast.AST | None = None
        all_names: list[str] | None = None
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                all_node = node
                all_names = _string_list(node.value)
        if all_node is None:
            return
        if all_names is None:
            yield self.finding(
                ctx,
                all_node,
                "__all__ is not a literal list of strings; the api-surface "
                "contract cannot be checked",
            )
            return
        yield from self._check_all(ctx, all_node, all_names)

    def _check_all(
        self, ctx: ModuleContext, all_node: ast.AST, all_names: list[str]
    ) -> Iterator[Finding]:
        seen: set[str] = set()
        for name in all_names:
            if name in seen:
                yield self.finding(
                    ctx, all_node, f"duplicate __all__ entry {name!r}"
                )
            seen.add(name)

        bindings = _top_level_bindings(ctx.tree)
        lazy = _lazy_table(ctx.tree)
        lazy_keys = set(lazy[1]) if lazy else set()
        for name in all_names:
            if name not in bindings and name not in lazy_keys:
                where = (
                    f"neither defined at top level nor a key of {lazy[0]}"
                    if lazy
                    else "not defined at top level"
                )
                yield self.finding(
                    ctx,
                    all_node,
                    f"__all__ exports {name!r} but it is {where}; importing "
                    "it would raise AttributeError",
                )
        if lazy:
            table_name, keys = lazy
            key_seen: set[str] = set()
            for key in keys:
                if key in key_seen:
                    yield self.finding(
                        ctx,
                        all_node,
                        f"duplicate key {key!r} in lazy-export table "
                        f"{table_name}",
                    )
                key_seen.add(key)
            for key in keys:
                if key not in seen:
                    yield self.finding(
                        ctx,
                        all_node,
                        f"lazy export {key!r} ({table_name}) is missing "
                        "from __all__; star-imports and dir() will not "
                        "see it",
                    )
