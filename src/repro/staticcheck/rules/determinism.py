"""``determinism``: unseeded randomness and wall-clock reads in library code.

Every stochastic component must draw from a named substream of
:mod:`repro.rng` (``rng: np.random.Generator`` threaded through the call
chain), so builds are bit-for-bit reproducible.  Flags:

* ``np.random.default_rng()`` with no (or ``None``) seed,
* the legacy global-state numpy RNG (``np.random.random`` & friends,
  ``np.random.seed``),
* the stdlib ``random`` module,
* ``time.time()`` — wall-clock reads make outputs run-dependent; use
  ``time.perf_counter()`` for durations.  Observability timestamps are
  intentionally wall-clock and carry a pragma.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.staticcheck.engine import ModuleContext, Rule, dotted_name
from repro.staticcheck.findings import Finding

#: Global-state numpy RNG entry points (np.random.<name>).
GLOBAL_NP_RANDOM = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "choice",
        "uniform",
        "normal",
        "shuffle",
        "permutation",
    }
)

#: stdlib random entry points worth calling out by name.
STDLIB_RANDOM = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "seed",
        "betavariate",
        "expovariate",
        "normalvariate",
    }
)


def _is_unseeded(node: ast.Call) -> bool:
    if node.args and not (
        isinstance(node.args[0], ast.Constant) and node.args[0].value is None
    ):
        return False
    if any(kw.arg == "seed" and not (
        isinstance(kw.value, ast.Constant) and kw.value.value is None
    ) for kw in node.keywords):
        return False
    return True


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "unseeded np.random.default_rng()/global RNG/stdlib random/"
        "time.time() in library code; thread rng via repro.rng instead"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        yield from self._check(ctx)

    def _check(self, ctx: ModuleContext) -> Iterator[Finding]:
        uses_stdlib_random = any(
            isinstance(node, ast.Import)
            and any(alias.name == "random" for alias in node.names)
            for node in ast.walk(ctx.tree)
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in ("np.random.default_rng", "numpy.random.default_rng"):
                if _is_unseeded(node):
                    yield self.finding(
                        ctx,
                        node,
                        "unseeded np.random.default_rng(); derive a seeded "
                        "generator from repro.rng.stream(master_seed, ...) "
                        "and thread it as `rng: np.random.Generator`",
                    )
            elif name.startswith(("np.random.", "numpy.random.")):
                leaf = name.rsplit(".", 1)[1]
                if leaf in GLOBAL_NP_RANDOM:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() uses numpy's global RNG state; thread a "
                        "seeded np.random.Generator from repro.rng instead",
                    )
            elif uses_stdlib_random and name.startswith("random."):
                leaf = name.split(".", 1)[1]
                if leaf in STDLIB_RANDOM:
                    yield self.finding(
                        ctx,
                        node,
                        f"stdlib {name}() is process-global and unseeded "
                        "here; use repro.rng.stream(...) instead",
                    )
            elif name == "time.time":
                yield self.finding(
                    ctx,
                    node,
                    "time.time() makes library output depend on the wall "
                    "clock; use time.perf_counter() for durations (pragma "
                    "this if a wall-clock timestamp is the point)",
                )
