"""``precision-policy``: hard-coded float dtypes outside the policy.

The engine's compute dtype is a thread-local policy
(:mod:`repro.nn.precision`); a literal ``np.float64`` / ``np.float32`` /
``dtype="float32"`` in compute-path code silently pins one precision and
breaks float32 training (or silently upcasts it).  Only ``precision.py``
itself and ``serialize.py`` (checkpoints are float64-canonical on disk)
may name a float dtype.  Integer dtypes (indices) are never flagged.

Legitimate float64-canonical sites — raw dataset feature storage,
Algorithm 2 combination in SI units, checkpoint history arrays — carry a
``# staticcheck: ignore[precision-policy]`` pragma with a justification,
or live in the committed baseline.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.staticcheck.engine import ModuleContext, Rule, dotted_name
from repro.staticcheck.findings import Finding

ALLOWED_MODULES = ("nn/precision.py", "nn/serialize.py")

#: Attribute spellings that pin a float precision.
FLOAT_ATTRS = frozenset(
    {
        "np.float32",
        "np.float64",
        "numpy.float32",
        "numpy.float64",
        "np.single",
        "np.double",
        "numpy.single",
        "numpy.double",
    }
)

#: String literals that pin a float precision when used as a dtype.
FLOAT_STRINGS = frozenset({"float32", "float64", "f4", "f8", "<f4", "<f8"})

_HINT = (
    "; route through repro.nn.precision (get_compute_dtype / the active "
    "tensor's dtype) or justify with a staticcheck pragma"
)


def _is_float_string(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value in FLOAT_STRINGS


class PrecisionPolicyRule(Rule):
    name = "precision-policy"
    description = (
        "hard-coded np.float64/np.float32/dtype= float literal outside "
        "repro/nn/{precision,serialize}.py"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.is_any(*ALLOWED_MODULES):
            return
        yield from self._check(ctx)

    def _check(self, ctx: ModuleContext) -> Iterator[Finding]:
        flagged_lines: set[tuple[int, int]] = set()

        def emit(node: ast.AST, what: str) -> Iterator[Finding]:
            key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
            if key in flagged_lines:
                return
            flagged_lines.add(key)
            yield self.finding(ctx, node, f"hard-coded {what}{_HINT}")

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name in FLOAT_ATTRS:
                    yield from emit(node, name)
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "dtype" and _is_float_string(kw.value):
                        yield from emit(kw.value, f'dtype="{kw.value.value}"')
                func = dotted_name(node.func)
                if (
                    func.endswith(".astype") or func in ("np.dtype", "numpy.dtype")
                ) and node.args and _is_float_string(node.args[0]):
                    yield from emit(node.args[0], f'"{node.args[0].value}" dtype')
