"""``concurrency``: shared mutable state in the threaded subsystems.

``repro.serve``, ``repro.obs`` and ``repro.api`` run under concurrent
load (HTTP handler threads, the micro-batching executor, instrumented
training threads).  This rule enforces the repo's locking convention on
those packages:

* module-level mutable containers must only be mutated inside a
  ``with <lock>`` block over a module-level ``threading.Lock`` /
  ``RLock`` / ``Condition``;
* a class whose instances carry mutable containers (``self.x = {}`` in
  ``__init__``, or a dataclass ``field(default_factory=dict)``) must own
  a lock attribute, and methods must mutate those containers under
  ``with self.<lock>``;
* bare ``.acquire()`` calls are flagged — ``with`` (or try/finally) is
  the only sanctioned way to hold a lock.

Heuristics, not proofs: construction-time mutation (``__init__`` /
``__post_init__``) is exempt, and single-threaded-by-design state can be
waived with a pragma carrying the justification.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.staticcheck.engine import (
    ModuleContext,
    Rule,
    assigned_names,
    dotted_name,
    is_mutable_literal,
)
from repro.staticcheck.findings import Finding

#: Packages under src/repro that serve concurrent traffic.
THREADED_PACKAGES = ("serve", "obs", "api")

LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        # the pre-fork pool (repro.serve.pool) guards parent-side state
        # that may also be touched around fork with process-safe locks
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "multiprocessing.Condition",
        "multiprocessing.Semaphore",
        "multiprocessing.BoundedSemaphore",
    }
)

MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "collections.defaultdict", "collections.OrderedDict",
     "collections.Counter", "collections.deque"}
)

#: Method calls that mutate a container in place.
MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

INIT_METHODS = ("__init__", "__post_init__")

#: Factory methods on the obs metrics registry that hand out live metric
#: objects.  Direct ``.value`` writes on those objects bypass the registry
#: lock, so outside ``repro.obs`` they must go through the helpers.
METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})


def _is_lock_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and dotted_name(node.func) in LOCK_FACTORIES


def _field_default_factory(node: ast.AST) -> str:
    """Dotted name of ``field(default_factory=X)``, or ''."""
    if not (isinstance(node, ast.Call) and dotted_name(node.func).endswith("field")):
        return ""
    for kw in node.keywords:
        if kw.arg == "default_factory":
            return dotted_name(kw.value)
    return ""


@dataclass
class _ClassInfo:
    node: ast.ClassDef
    mutable_attrs: dict[str, int] = field(default_factory=dict)  # attr -> lineno
    lock_attrs: set[str] = field(default_factory=set)


def _self_attr(node: ast.AST) -> "str | None":
    """``self.x`` -> ``"x"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _MutationScanner(ast.NodeVisitor):
    """Find mutations of watched names/attrs outside their lock scope.

    ``watched`` maps a key (``("name", n)`` for module globals,
    ``("self", attr)`` for instance attrs) to nothing in particular; the
    scanner records mutation nodes for keys seen while no watched lock is
    held.  Locks: ``("name", n)`` module locks, ``("self", attr)``
    instance locks.
    """

    def __init__(self, watched: set, locks: set):
        self.watched = watched
        self.locks = locks
        self.held = 0
        self.hits: list[tuple[tuple, ast.AST]] = []

    # -- lock scope -----------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        holds = any(
            self._lock_key(item.context_expr) in self.locks
            for item in node.items
        )
        if holds:
            self.held += 1
        self.generic_visit(node)
        if holds:
            self.held -= 1

    def _lock_key(self, expr: ast.AST) -> tuple:
        if isinstance(expr, ast.Name):
            return ("name", expr.id)
        attr = _self_attr(expr)
        if attr is not None:
            return ("self", attr)
        return ("", "")

    # -- mutations ------------------------------------------------------
    def _key_of(self, expr: ast.AST) -> tuple:
        if isinstance(expr, ast.Name):
            return ("name", expr.id)
        attr = _self_attr(expr)
        if attr is not None:
            return ("self", attr)
        return ("", "")

    def _record(self, expr: ast.AST, node: ast.AST) -> None:
        key = self._key_of(expr)
        if key in self.watched and self.held == 0:
            self.hits.append((key, node))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
            self._record(func.value, node)
        self.generic_visit(node)

    def _record_target(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, ast.Subscript):
            self._record(target.value, node)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target, node)
        self.generic_visit(node)


def _is_metric_factory_call(node: ast.AST) -> bool:
    """``<anything>.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in METRIC_FACTORIES
    )


class _MetricValueScanner(ast.NodeVisitor):
    """Find unlocked ``.value`` writes on obs metric objects.

    Tracks names bound from metric-factory calls (``c = reg.counter(...)``)
    and flags ``c.value = ...`` / ``c.value += ...`` — plus the chained form
    ``reg.counter(...).value += 1`` — unless a lock-ish context manager
    (any ``with`` over an expression whose dotted name mentions ``lock``)
    is held.  Reads of ``.value`` are fine; only writes race.
    """

    def __init__(self) -> None:
        self.metric_names: set[str] = set()
        self.held = 0
        self.hits: list[ast.AST] = []

    def visit_With(self, node: ast.With) -> None:
        holds = any(
            "lock" in dotted_name(item.context_expr).lower()
            for item in node.items
        )
        if holds:
            self.held += 1
        self.generic_visit(node)
        if holds:
            self.held -= 1

    def _check_target(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt, node)
            return
        if not (isinstance(target, ast.Attribute) and target.attr == "value"):
            return
        base = target.value
        is_metric = (
            isinstance(base, ast.Name) and base.id in self.metric_names
        ) or _is_metric_factory_call(base)
        if is_metric and self.held == 0:
            self.hits.append(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_metric_factory_call(node.value):
            for target in node.targets:
                self.metric_names.update(assigned_names(target))
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and _is_metric_factory_call(node.value):
            self.metric_names.update(assigned_names(node.target))
        self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)
        self.generic_visit(node)


class ConcurrencyRule(Rule):
    name = "concurrency"
    description = (
        "mutable shared state in serve/obs/api mutated without holding a "
        "threading lock via `with`; bare .acquire() calls; direct .value "
        "writes on obs metric objects outside repro.obs"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package("obs"):
            yield from self._check_metric_objects(ctx)
        if not any(ctx.in_package(pkg) for pkg in THREADED_PACKAGES):
            return
        yield from self._check_bare_acquire(ctx)
        yield from self._check_module_state(ctx)
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    # ------------------------------------------------------------------
    def _check_metric_objects(self, ctx: ModuleContext) -> Iterator[Finding]:
        scanner = _MetricValueScanner()
        scanner.visit(ctx.tree)
        for site in scanner.hits:
            yield self.finding(
                ctx,
                site,
                "direct .value write on an obs metric object bypasses the "
                "registry lock and the multiprocess mirror; use obs.inc()/"
                "obs.set_gauge()/obs.observe() (or the MetricsRegistry "
                "inc/set/observe helpers) instead",
            )

    # ------------------------------------------------------------------
    def _check_bare_acquire(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "bare .acquire(): hold locks via `with lock:` so every "
                    "exit path releases (try/finally at minimum)",
                )

    # ------------------------------------------------------------------
    def _check_module_state(self, ctx: ModuleContext) -> Iterator[Finding]:
        module_locks: set[tuple] = set()
        module_mutables: dict[str, int] = {}
        for node in ctx.tree.body:
            targets: list[ast.AST] = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for name in (n for t in targets for n in assigned_names(t)):
                if _is_lock_call(value):
                    module_locks.add(("name", name))
                elif is_mutable_literal(value) and name != "__all__":
                    module_mutables[name] = node.lineno
        if not module_mutables:
            return
        watched = {("name", name) for name in module_mutables}
        scanner = _MutationScanner(watched, module_locks)
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                scanner.visit(node)
        for (_, name), site in scanner.hits:
            yield self.finding(
                ctx,
                site,
                f"module-level {name!r} (defined line "
                f"{module_mutables[name]}) is mutated without holding a "
                "module-level threading lock via `with`",
            )

    # ------------------------------------------------------------------
    def _collect_class_info(self, node: ast.ClassDef) -> _ClassInfo:
        info = _ClassInfo(node=node)
        is_dataclass = any(
            dotted_name(dec).split(".")[-1] == "dataclass"
            or (
                isinstance(dec, ast.Call)
                and dotted_name(dec.func).split(".")[-1] == "dataclass"
            )
            for dec in node.decorator_list
        )
        if is_dataclass:
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) or stmt.value is None:
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                factory = _field_default_factory(stmt.value)
                if factory in MUTABLE_FACTORIES:
                    info.mutable_attrs[stmt.target.id] = stmt.lineno
                elif factory in LOCK_FACTORIES:
                    info.lock_attrs.add(stmt.target.id)
                elif is_mutable_literal(stmt.value):
                    info.mutable_attrs[stmt.target.id] = stmt.lineno
        for stmt in node.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name in INIT_METHODS
            ):
                for sub in ast.walk(stmt):
                    if not isinstance(sub, ast.Assign):
                        continue
                    for target in sub.targets:
                        attr = _self_attr(target)
                        if attr is None:
                            continue
                        if _is_lock_call(sub.value):
                            info.lock_attrs.add(attr)
                        elif is_mutable_literal(sub.value):
                            info.mutable_attrs[attr] = sub.lineno
        return info

    def _check_class(self, ctx: ModuleContext, node: ast.ClassDef) -> Iterator[Finding]:
        info = self._collect_class_info(node)
        if not info.mutable_attrs:
            return
        watched = {("self", attr) for attr in info.mutable_attrs}
        locks = {("self", attr) for attr in info.lock_attrs}
        hits: list[tuple[str, ast.AST]] = []
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in INIT_METHODS:
                continue
            scanner = _MutationScanner(watched, locks)
            scanner.visit(stmt)
            hits.extend((key[1], site) for key, site in scanner.hits)
        if not hits:
            return
        if not info.lock_attrs:
            attrs = sorted({attr for attr, _ in hits})
            yield self.finding(
                ctx,
                node,
                f"class {node.name!r} mutates shared instance state "
                f"{attrs} from methods but owns no threading lock; add a "
                "lock attribute and mutate under `with self._lock`",
            )
            return
        for attr, site in hits:
            yield self.finding(
                ctx,
                site,
                f"self.{attr} is mutated outside `with self."
                f"{'/self.'.join(sorted(info.lock_attrs))}`; shared "
                "containers must be mutated under the instance lock",
            )
