"""Rule registry: every repo-specific lint rule, instantiated fresh.

Adding a rule = writing a :class:`~repro.staticcheck.engine.Rule`
subclass in a module here and listing it in :data:`RULE_CLASSES`.
"""

from __future__ import annotations

from repro.errors import StaticCheckError
from repro.staticcheck.engine import Rule
from repro.staticcheck.rules.autodiff import AutodiffBypassRule
from repro.staticcheck.rules.precision import PrecisionPolicyRule
from repro.staticcheck.rules.determinism import DeterminismRule
from repro.staticcheck.rules.concurrency import ConcurrencyRule
from repro.staticcheck.rules.api_surface import ApiSurfaceRule
from repro.staticcheck.rules.kernel_dispatch import KernelDispatchRule

RULE_CLASSES: tuple[type[Rule], ...] = (
    AutodiffBypassRule,
    PrecisionPolicyRule,
    DeterminismRule,
    ConcurrencyRule,
    ApiSurfaceRule,
    KernelDispatchRule,
)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in RULE_CLASSES]


def rule_names() -> tuple[str, ...]:
    return tuple(cls.name for cls in RULE_CLASSES)


def select_rules(names: "list[str] | None") -> list[Rule]:
    """Rules filtered to *names* (all when None).

    Raises
    ------
    StaticCheckError
        For unknown rule names; the message lists the registry.
    """
    rules = all_rules()
    if names is None:
        return rules
    known = {rule.name: rule for rule in rules}
    unknown = [name for name in names if name not in known]
    if unknown:
        raise StaticCheckError(
            f"unknown rule(s) {unknown}; available: {sorted(known)}"
        )
    return [known[name] for name in names]
