"""Suppression pragmas: ``# staticcheck: ignore[rule]``.

Syntax (anywhere in a comment)::

    x = foo()  # staticcheck: ignore[precision-policy]
    y = bar()  # staticcheck: ignore[rule-a,rule-b] -- justification
    z = baz()  # staticcheck: ignore  (suppresses every rule on the line)

    # staticcheck: ignore-file[determinism] -- whole-module waiver

A pragma on its own comment line also covers the next code line (blank
lines and wrapped justification comments in between are skipped), so
multi-line statements can carry a suppression above them.  Above a
decorated ``def``/``class`` the coverage extends through the decorator
stack to the definition line, where such findings anchor.
``ignore-file`` applies to the whole module and is parsed anywhere, by
convention near the top.  Unknown rule names in a pragma are reported by
the engine as ``invalid-pragma`` findings rather than silently ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: Sentinel rule set meaning "every rule".
ALL_RULES = frozenset({"*"})

_PRAGMA_RE = re.compile(
    r"#\s*staticcheck:\s*(?P<kind>ignore-file|ignore)"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\s\*-]*)\])?"
)


@dataclass
class PragmaIndex:
    """Parsed suppressions for one module."""

    #: line number -> rule names suppressed there ("*" = all)
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    #: module-wide suppressed rule names ("*" = all)
    file_wide: frozenset[str] = field(default_factory=frozenset)
    #: (line, pragma text) pairs whose rule list failed to parse
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def suppresses(self, rule: str, line: int) -> bool:
        if "*" in self.file_wide or rule in self.file_wide:
            return True
        rules = self.by_line.get(line)
        return rules is not None and ("*" in rules or rule in rules)

    def rules_mentioned(self) -> set[str]:
        """Every explicit rule name used in a pragma (for validation)."""
        names: set[str] = set()
        for rules in self.by_line.values():
            names.update(rules)
        names.update(self.file_wide)
        names.discard("*")
        return names


def _parse_rules(raw: "str | None") -> frozenset[str]:
    if raw is None:
        return ALL_RULES
    names = frozenset(name.strip() for name in raw.split(",") if name.strip())
    return names if names else ALL_RULES


def _iter_comments(source: str) -> "list[tuple[int, int, str]]":
    """(line, col, text) of every real COMMENT token.

    Tokenising (rather than splitting lines on ``#``) keeps pragma-like
    text inside string literals and docstrings from being treated as a
    pragma — this module's own regex would otherwise suppress itself.
    """
    out: list[tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports unparseable modules separately; pragmas
        # found before the bad token still count.
        pass
    return out


def parse_pragmas(source: str) -> PragmaIndex:
    """Extract the pragma index from a module's source text."""
    index = PragmaIndex()
    for lineno, col, text in _iter_comments(source):
        match = _PRAGMA_RE.search(text)
        if match is None:
            if "staticcheck:" in text:
                index.malformed.append((lineno, text.strip()))
            continue
        rules = _parse_rules(match.group("rules"))
        if match.group("kind") == "ignore-file":
            index.file_wide = index.file_wide | rules
            continue
        covered = [lineno]
        # A pragma-only comment line also shields the next code line
        # (skipping blank lines and the rest of a wrapped justification
        # comment), so statements can carry the suppression above them.
        # Decorator lines are skipped through as well: findings on a
        # decorated ``def``/``class`` anchor at the definition line, so a
        # pragma above the decorator stack must reach it.
        lines = source.splitlines()
        if col == 0 or not lines[lineno - 1][:col].strip():
            cursor = lineno + 1
            in_decorators = False
            while cursor <= len(lines):
                stripped = lines[cursor - 1].strip()
                covered.append(cursor)
                if stripped.startswith("@"):
                    in_decorators = True
                elif stripped and not stripped.startswith("#"):
                    if not in_decorators or stripped.startswith(
                        ("def ", "async def ", "class ")
                    ):
                        break
                cursor += 1
        for line in covered:
            existing = index.by_line.get(line, frozenset())
            index.by_line[line] = existing | rules
    return index
