"""Engineering-unit helpers.

All quantities inside the library are plain SI floats (farads, metres,
seconds, ...).  This module converts between those floats and the
SPICE-style engineering notation used in netlists and reports
(``4.5f`` = 4.5 fF, ``16n`` = 16 nm, ``2.2u``, ``10p`` ...).
"""

from __future__ import annotations

import math
import re

from repro.errors import UnitError

#: SPICE suffix -> multiplier.  ``meg`` must be matched before ``m``.
_SUFFIXES: dict[str, float] = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "x": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}

_VALUE_RE = re.compile(
    r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([a-zA-Z]*)\s*$"
)

#: Exponent-of-1000 -> display suffix, for :func:`format_eng`.
_DISPLAY = {
    -6: "a",
    -5: "f",
    -4: "p",
    -3: "n",
    -2: "u",
    -1: "m",
    0: "",
    1: "k",
    2: "meg",  # SPICE-safe: a bare "M" would parse as milli
    3: "G",
    4: "T",
}


def parse_value(text: str | float | int) -> float:
    """Parse a SPICE-style engineering value into a plain float.

    Accepts floats/ints unchanged.  Unit tails after the scale suffix are
    tolerated and ignored, as SPICE does (``10pF`` == ``10p``)::

        >>> parse_value("4.5f")
        4.5e-15
        >>> parse_value("2meg")
        2000000.0

    Raises
    ------
    UnitError
        If *text* is not a number followed by an optional known suffix.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _VALUE_RE.match(text)
    if not match:
        raise UnitError(f"cannot parse engineering value {text!r}")
    number, tail = match.groups()
    value = float(number)
    tail = tail.lower()
    if not tail:
        return value
    if tail.startswith("meg"):
        return value * 1e6
    suffix = tail[0]
    if suffix in _SUFFIXES:
        return value * _SUFFIXES[suffix]
    # A bare unit such as "F" or "Hz" with no scale prefix.
    if tail.isalpha():
        return value
    raise UnitError(f"unknown engineering suffix {tail!r} in {text!r}")


def format_eng(value: float, unit: str = "", digits: int = 4) -> str:
    """Format *value* with an engineering (power-of-1000) prefix.

    >>> format_eng(4.5e-15, "F")
    '4.5fF'
    >>> format_eng(0.0, "F")
    '0F'
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:g}{unit}"
    exponent = int(math.floor(math.log10(abs(value)) / 3))
    exponent = max(min(exponent, max(_DISPLAY)), min(_DISPLAY))
    scaled = value / 1000.0**exponent
    text = f"{scaled:.{digits}g}"
    return f"{text}{_DISPLAY[exponent]}{unit}"


def femto(value: float) -> float:
    """Convert a number expressed in femto-units to SI (4.5 -> 4.5e-15)."""
    return value * 1e-15


def pico(value: float) -> float:
    """Convert a number expressed in pico-units to SI."""
    return value * 1e-12


def nano(value: float) -> float:
    """Convert a number expressed in nano-units to SI."""
    return value * 1e-9


def micro(value: float) -> float:
    """Convert a number expressed in micro-units to SI."""
    return value * 1e-6


def to_femto(value: float) -> float:
    """Express an SI value in femto-units (4.5e-15 -> 4.5)."""
    return value * 1e15
