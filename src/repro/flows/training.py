"""Multi-target training: the full ParaGraph model suite in one call.

The paper trains an independent model per target (13 paper targets + the
RES extension).  :func:`train_all_targets` drives that loop and returns a
:class:`MultiTargetModel` that predicts everything for a schematic at once —
the object a designer would actually hold.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable

from repro.circuits.netlist import Circuit
from repro.data import ALL_TARGETS, DatasetBundle
from repro.errors import ModelError
from repro.models.trainer import TargetPredictor, TrainConfig


@dataclass
class MultiTargetModel:
    """A bundle of per-target predictors sharing one training dataset."""

    predictors: dict[str, TargetPredictor] = field(default_factory=dict)

    def predict_all(self, circuit: Circuit) -> dict[str, dict[str, float]]:
        """``{target: {net_or_instance: value}}`` for a schematic."""
        return {
            name: predictor.predict_circuit(circuit)
            for name, predictor in self.predictors.items()
        }

    def predictor(self, target: str) -> TargetPredictor:
        try:
            return self.predictors[target]
        except KeyError:
            raise ModelError(
                f"no trained predictor for {target!r}; have {sorted(self.predictors)}"
            ) from None

    def save_dir(self, directory: str | os.PathLike) -> None:
        """Save every predictor as ``<directory>/<target>.npz``."""
        os.makedirs(directory, exist_ok=True)
        for name, predictor in self.predictors.items():
            predictor.save(os.path.join(directory, f"{name}.npz"))

    @classmethod
    def load_dir(cls, directory: str | os.PathLike) -> "MultiTargetModel":
        """Load every ``*.npz`` predictor from a directory."""
        model = cls()
        for entry in sorted(os.listdir(directory)):
            if entry.endswith(".npz"):
                predictor = TargetPredictor.load(os.path.join(directory, entry))
                model.predictors[predictor.spec.name] = predictor
        if not model.predictors:
            raise ModelError(f"no .npz models found in {directory}")
        return model


def train_all_targets(
    bundle: DatasetBundle,
    targets: Iterable[str] | None = None,
    conv: str = "paragraph",
    config: TrainConfig | None = None,
    verbose: bool = False,
) -> MultiTargetModel:
    """Train one predictor per target name (defaults to the 13 paper targets)."""
    names = list(targets) if targets is not None else [t.name for t in ALL_TARGETS]
    base = config or TrainConfig(epochs=60)
    model = MultiTargetModel()
    for name in names:
        cfg_kwargs = dict(base.__dict__)
        if name != "CAP":
            cfg_kwargs["max_v"] = None
        predictor = TargetPredictor(conv, name, TrainConfig(**cfg_kwargs))
        predictor.fit(bundle)
        if verbose:
            metrics = predictor.evaluate(bundle.records("test"))
            print(f"  {name}: R2={metrics['r2']:.3f}")
        model.predictors[name] = predictor
    return model
