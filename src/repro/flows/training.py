"""The multi-target model container and per-target worker entry point.

The paper trains an independent model per target (13 paper targets + the
RES extension).  :class:`MultiTargetModel` is the object a designer
actually holds — it predicts everything for a schematic at once.  The
driving loop lives in :func:`repro.flows.train` (a :class:`TrainPlan`
consumer); the historical :func:`train_all_targets` survives as a
warn-once shim in :mod:`repro.flows.compat`, re-exported here for
existing imports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.circuits.netlist import Circuit
from repro.data import DatasetBundle
from repro.errors import ModelError
from repro.flows.compat import train_all_targets  # noqa: F401 - legacy import path
from repro.flows.runtime import RuntimeConfig
from repro.models.trainer import TargetPredictor, TrainConfig


@dataclass
class MultiTargetModel:
    """A bundle of per-target predictors sharing one training dataset."""

    predictors: dict[str, TargetPredictor] = field(default_factory=dict)

    def predict_all(self, circuit: Circuit) -> dict[str, dict[str, float]]:
        """Deprecated: ``{target: {net_or_instance: value}}`` for a schematic.

        Use :meth:`repro.api.Engine.predict` — one graph build for all
        targets, cacheable, and batchable — instead.
        """
        from repro.api.compat import warn_deprecated
        from repro.api.engine import predict_one

        warn_deprecated(
            "MultiTargetModel.predict_all",
            "repro.api.Engine.predict(circuit)",
        )
        result = predict_one(self, circuit, targets=tuple(self.predictors))
        return {name: result.named(name) for name in self.predictors}

    def predictor(self, target: str) -> TargetPredictor:
        try:
            return self.predictors[target]
        except KeyError:
            raise ModelError(
                f"no trained predictor for {target!r}; have {sorted(self.predictors)}"
            ) from None

    def save_dir(self, directory: str | os.PathLike) -> None:
        """Save every predictor as ``<directory>/<target>.npz``."""
        os.makedirs(directory, exist_ok=True)
        for name, predictor in self.predictors.items():
            predictor.save(os.path.join(directory, f"{name}.npz"))

    @classmethod
    def load_dir(cls, directory: str | os.PathLike) -> "MultiTargetModel":
        """Load every ``*.npz`` predictor from a directory."""
        model = cls()
        for entry in sorted(os.listdir(directory)):
            if entry.endswith(".npz"):
                predictor = TargetPredictor.load(os.path.join(directory, entry))
                model.predictors[predictor.spec.name] = predictor
        if not model.predictors:
            raise ModelError(f"no .npz models found in {directory}")
        return model


def _train_target_job(
    job: tuple[str, str, TrainConfig, DatasetBundle, RuntimeConfig | None, str],
) -> TargetPredictor:
    """Worker entry point for process-parallel training (must be picklable)."""
    conv, name, cfg, bundle, runtime, batching = job
    return TargetPredictor(conv, name, cfg)._fit_quiet(
        bundle, runtime=runtime, batching=batching
    )
