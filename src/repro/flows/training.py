"""Multi-target training: the full ParaGraph model suite in one call.

The paper trains an independent model per target (13 paper targets + the
RES extension).  :func:`train_all_targets` drives that loop and returns a
:class:`MultiTargetModel` that predicts everything for a schematic at once —
the object a designer would actually hold.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable

from repro.circuits.netlist import Circuit
from repro.data import ALL_TARGETS, DatasetBundle
from repro.errors import ModelError
from repro.flows.runtime import MergedInputsCache, RuntimeConfig
from repro.models.trainer import TargetPredictor, TrainConfig


@dataclass
class MultiTargetModel:
    """A bundle of per-target predictors sharing one training dataset."""

    predictors: dict[str, TargetPredictor] = field(default_factory=dict)

    def predict_all(self, circuit: Circuit) -> dict[str, dict[str, float]]:
        """Deprecated: ``{target: {net_or_instance: value}}`` for a schematic.

        Use :meth:`repro.api.Engine.predict` — one graph build for all
        targets, cacheable, and batchable — instead.
        """
        from repro.api.compat import warn_deprecated
        from repro.api.engine import predict_one

        warn_deprecated(
            "MultiTargetModel.predict_all",
            "repro.api.Engine.predict(circuit)",
        )
        result = predict_one(self, circuit, targets=tuple(self.predictors))
        return {name: result.named(name) for name in self.predictors}

    def predictor(self, target: str) -> TargetPredictor:
        try:
            return self.predictors[target]
        except KeyError:
            raise ModelError(
                f"no trained predictor for {target!r}; have {sorted(self.predictors)}"
            ) from None

    def save_dir(self, directory: str | os.PathLike) -> None:
        """Save every predictor as ``<directory>/<target>.npz``."""
        os.makedirs(directory, exist_ok=True)
        for name, predictor in self.predictors.items():
            predictor.save(os.path.join(directory, f"{name}.npz"))

    @classmethod
    def load_dir(cls, directory: str | os.PathLike) -> "MultiTargetModel":
        """Load every ``*.npz`` predictor from a directory."""
        model = cls()
        for entry in sorted(os.listdir(directory)):
            if entry.endswith(".npz"):
                predictor = TargetPredictor.load(os.path.join(directory, entry))
                model.predictors[predictor.spec.name] = predictor
        if not model.predictors:
            raise ModelError(f"no .npz models found in {directory}")
        return model


def _train_target_job(
    job: tuple[str, str, TrainConfig, DatasetBundle, RuntimeConfig | None],
) -> TargetPredictor:
    """Worker entry point for process-parallel training (must be picklable)."""
    conv, name, cfg, bundle, runtime = job
    return TargetPredictor(conv, name, cfg).fit(bundle, runtime=runtime)


def train_all_targets(
    bundle: DatasetBundle,
    targets: Iterable[str] | None = None,
    conv: str = "paragraph",
    config: TrainConfig | None = None,
    verbose: bool = False,
    runtime: RuntimeConfig | None = None,
    inputs_cache: MergedInputsCache | None = None,
    parallel_workers: int = 0,
) -> MultiTargetModel:
    """Train one predictor per target name (defaults to the 13 paper targets).

    All targets share one merged training graph, so the serial path (the
    default) builds the merged :class:`GraphInputs` exactly once through a
    shared :class:`MergedInputsCache` instead of once per target.  With
    ``parallel_workers >= 2`` the per-target loops run in a process pool
    instead; each worker rebuilds its own inputs, trading the shared cache
    for multi-core training.  Both paths use the same per-target seeds, so
    results are identical.  ``runtime`` (callbacks must be picklable for
    the parallel path) applies to every per-target ``fit``.
    """
    names = list(targets) if targets is not None else [t.name for t in ALL_TARGETS]
    base = config or TrainConfig(epochs=60)
    jobs = []
    for name in names:
        cfg_kwargs = dict(base.__dict__)
        if name != "CAP":
            cfg_kwargs["max_v"] = None
        jobs.append((conv, name, TrainConfig(**cfg_kwargs), bundle, runtime))

    model = MultiTargetModel()
    if parallel_workers and parallel_workers > 1:
        with ProcessPoolExecutor(max_workers=parallel_workers) as pool:
            fitted = list(pool.map(_train_target_job, jobs))
        for (_, name, *_), predictor in zip(jobs, fitted):
            model.predictors[name] = predictor
    else:
        cache = inputs_cache if inputs_cache is not None else MergedInputsCache()
        for _, name, cfg, _, _ in jobs:
            predictor = TargetPredictor(conv, name, cfg).fit(
                bundle, runtime=runtime, inputs_cache=cache
            )
            model.predictors[name] = predictor
    if verbose:
        for name, predictor in model.predictors.items():
            metrics = predictor.evaluate(bundle.records("test"))
            print(f"  {name}: R2={metrics['r2']:.3f}")
    return model
