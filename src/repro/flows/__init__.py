"""High-level user workflows built on the core library."""

from repro.flows.report import PrelayoutReport, prelayout_report
from repro.flows.training import MultiTargetModel, train_all_targets

__all__ = [
    "PrelayoutReport",
    "prelayout_report",
    "MultiTargetModel",
    "train_all_targets",
]
