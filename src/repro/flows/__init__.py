"""High-level user workflows built on the core library.

Submodules are imported lazily (PEP 562): the trainer imports
``repro.flows.runtime`` while ``repro.flows.training`` imports the trainer,
so an eager package ``__init__`` would create an import cycle.
"""

from typing import Any

__all__ = [
    "PrelayoutReport",
    "prelayout_report",
    "MultiTargetModel",
    "TrainPlan",
    "TrainResult",
    "train",
    "train_all_targets",
    "MergedInputsCache",
    "RuntimeConfig",
    "TrainCallback",
    "ConsoleProgressReporter",
    "JsonlMetricsWriter",
    "save_checkpoint",
    "load_checkpoint",
]

_EXPORTS = {
    "PrelayoutReport": "repro.flows.report",
    "prelayout_report": "repro.flows.report",
    "MultiTargetModel": "repro.flows.training",
    "TrainPlan": "repro.flows.plan",
    "TrainResult": "repro.flows.plan",
    "train": "repro.flows.plan",
    "train_all_targets": "repro.flows.compat",
    "MergedInputsCache": "repro.flows.runtime",
    "RuntimeConfig": "repro.flows.runtime",
    "TrainCallback": "repro.flows.runtime",
    "ConsoleProgressReporter": "repro.flows.runtime",
    "JsonlMetricsWriter": "repro.flows.runtime",
    "save_checkpoint": "repro.flows.runtime",
    "load_checkpoint": "repro.flows.runtime",
}


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
