"""The typed training plan: one entry point for every training shape.

Historically each training shape had its own call pattern —
``TargetPredictor.fit`` for one target, ``train_all_targets`` for the
suite, keyword soup for runtime knobs.  :class:`TrainPlan` replaces them
with one declarative value ("which targets, which conv, shared trunk or
per-target models, mega-batched or per-graph inputs, which runtime") and
:func:`train` with one verb that consumes it.  The old entry points
survive as warn-once shims (:mod:`repro.flows.compat`,
:meth:`TargetPredictor.fit <repro.models.trainer.TargetPredictor.fit>`)
that route here and produce bit-identical artifacts.

Plan validation happens at construction, so an invalid combination fails
before any training compute is spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.targets import ALL_TARGETS, target_by_name
from repro.errors import ModelError
from repro.flows.runtime import BATCHING_MODES, MergedInputsCache, RuntimeConfig
from repro.models.trainer import TargetPredictor, TrainConfig, TrainHistory

#: Trunk-sharing modes: independent model per target (the paper's setup)
#: or one shared trunk with per-target readout heads.
TRUNK_MODES = ("per_target", "shared")


@dataclass(frozen=True)
class TrainPlan:
    """Declarative description of one training run.

    Parameters
    ----------
    targets:
        Target names to fit; ``None`` means the 13 paper targets.
    conv:
        GNN flavour (``paragraph``, ``sage``, ``rgcn``, ``gat``, ``gcn``).
    config:
        Hyper-parameters shared by every target; ``None`` uses
        ``TrainConfig(epochs=60)`` (the historical suite default).
        ``max_v`` applies to the CAP model only.
    trunk:
        ``"per_target"`` trains an independent model per target (paper
        §V); ``"shared"`` trains one :class:`SharedTrunk` with per-target
        readout heads — one trunk pass per epoch for all targets.
    batching:
        Merged-input construction: ``"mega"`` disjoint-unions per-graph
        :class:`GraphInputs` with stitched segment plans, ``"graph"``
        merges the hetero graphs first.  Bit-identical results.
    loss_weights:
        Per-target weights for the shared-trunk loss (unlisted targets
        weigh 1.0).  Only meaningful with ``trunk="shared"``.
    runtime:
        Callbacks / retries / early stopping / checkpointing, applied to
        every per-target fit (or the single multi-task fit).
    parallel_workers:
        Process-pool width for the per-target path; ``0``/``1`` trains
        serially through a shared input cache.
    resume_from:
        Checkpoint path to continue from; requires a single-target plan
        or a shared trunk (one checkpoint describes one model).
    """

    targets: tuple[str, ...] | None = None
    conv: str = "paragraph"
    config: TrainConfig | None = None
    trunk: str = "per_target"
    batching: str = "mega"
    loss_weights: dict[str, float] | None = None
    runtime: RuntimeConfig | None = None
    parallel_workers: int = 0
    resume_from: str | None = None

    def __post_init__(self) -> None:
        if self.trunk not in TRUNK_MODES:
            raise ModelError(
                f"unknown trunk mode {self.trunk!r}; choose from {TRUNK_MODES}"
            )
        if self.batching not in BATCHING_MODES:
            raise ModelError(
                f"unknown batching mode {self.batching!r}; "
                f"choose from {BATCHING_MODES}"
            )
        if self.targets is not None:
            if not self.targets:
                raise ModelError("plan needs at least one target")
            object.__setattr__(self, "targets", tuple(self.targets))
            seen: set[str] = set()
            for name in self.targets:
                target_by_name(name)  # raises on unknown targets
                if name in seen:
                    raise ModelError(f"duplicate target {name!r} in plan")
                seen.add(name)
        if self.loss_weights is not None and self.trunk != "shared":
            raise ModelError(
                "loss_weights only apply to trunk='shared' plans; "
                "per-target models each minimise their own loss"
            )
        if self.trunk == "shared" and self.parallel_workers > 1:
            raise ModelError(
                "trunk='shared' trains one joint model; "
                "parallel_workers does not apply"
            )
        if (
            self.resume_from is not None
            and self.trunk == "per_target"
            and len(self.target_names) != 1
        ):
            raise ModelError(
                "resume_from requires a single-target plan (or a shared "
                "trunk); a checkpoint describes exactly one model"
            )

    @property
    def target_names(self) -> tuple[str, ...]:
        """Resolved target names (the 13 paper targets when unset)."""
        if self.targets is not None:
            return self.targets
        return tuple(spec.name for spec in ALL_TARGETS)


@dataclass
class TrainResult:
    """What :func:`train` hands back.

    ``model`` is a :class:`~repro.flows.training.MultiTargetModel` for
    per-target plans and a
    :class:`~repro.models.multitask.MultiTaskPredictor` for shared-trunk
    plans; ``histories`` maps target name (or ``"multitask"``) to its
    :class:`~repro.models.trainer.TrainHistory`.
    """

    model: object
    histories: dict[str, TrainHistory] = field(default_factory=dict)
    plan: TrainPlan | None = None


def train(
    bundle,
    plan: TrainPlan | None = None,
    *,
    inputs_cache: MergedInputsCache | None = None,
) -> TrainResult:
    """Train according to *plan* (default: all 13 targets, per-target).

    The single entry point of the redesigned training API; every legacy
    pattern (``TargetPredictor.fit``, ``train_all_targets``) routes here
    via its deprecation shim with bit-identical results.
    """
    return _train_with_predictors(bundle, plan or TrainPlan(), inputs_cache=inputs_cache)


def _train_with_predictors(
    bundle,
    plan: TrainPlan,
    *,
    inputs_cache: MergedInputsCache | None = None,
    predictors: dict[str, TargetPredictor] | None = None,
) -> TrainResult:
    """Engine behind :func:`train`, with predictor injection.

    *predictors* lets the ``TargetPredictor.fit`` shim train **its own**
    object through the plan path (preserving identity semantics and the
    predictor's exact config, including a non-CAP ``max_v`` the suite
    path would clear).  Injected plans always train serially.
    """
    if plan.trunk == "shared":
        from repro.models.multitask import MultiTaskPredictor

        predictor = MultiTaskPredictor(
            conv=plan.conv,
            targets=list(plan.target_names),
            config=plan.config or TrainConfig(epochs=60),
            loss_weights=plan.loss_weights,
        )
        predictor._fit_quiet(
            bundle,
            runtime=plan.runtime,
            inputs_cache=(
                inputs_cache if inputs_cache is not None else MergedInputsCache()
            ),
            resume_from=plan.resume_from,
            batching=plan.batching,
        )
        return TrainResult(
            model=predictor,
            histories={"multitask": predictor.history},
            plan=plan,
        )

    from repro.flows.training import MultiTargetModel, _train_target_job

    names = plan.target_names
    base = plan.config or TrainConfig(epochs=60)
    resume = plan.resume_from if len(names) == 1 else None
    jobs = []
    for name in names:
        injected = predictors.get(name) if predictors else None
        if injected is not None:
            jobs.append((name, injected))
            continue
        cfg_kwargs = dict(base.__dict__)
        if name != "CAP":
            # max_v is the §IV CAP training clamp; other targets train on
            # their full value range
            cfg_kwargs["max_v"] = None
        jobs.append((name, TargetPredictor(plan.conv, name, TrainConfig(**cfg_kwargs))))

    model = MultiTargetModel()
    if predictors is None and plan.parallel_workers > 1:
        from concurrent.futures import ProcessPoolExecutor

        worker_jobs = [
            (plan.conv, name, predictor.config, bundle, plan.runtime, plan.batching)
            for name, predictor in jobs
        ]
        with ProcessPoolExecutor(max_workers=plan.parallel_workers) as pool:
            fitted = list(pool.map(_train_target_job, worker_jobs))
        for (name, _), predictor in zip(jobs, fitted):
            model.predictors[name] = predictor
    else:
        cache = inputs_cache if inputs_cache is not None else MergedInputsCache()
        for name, predictor in jobs:
            predictor._fit_quiet(
                bundle,
                runtime=plan.runtime,
                inputs_cache=cache,
                resume_from=resume,
                batching=plan.batching,
            )
            model.predictors[name] = predictor
    return TrainResult(
        model=model,
        histories={
            name: model.predictors[name].history for name in model.predictors
        },
        plan=plan,
    )
