"""Pre-layout report generation.

Produces the designer-facing artefact of the paper's flow: for a schematic,
a text report of predicted net parasitics (with the designer heuristic for
comparison) and predicted per-transistor layout parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.netlist import Circuit
from repro.flows.training import MultiTargetModel
from repro.layout.estimator import designer_estimate
from repro.analysis.tables import render_table
from repro.units import format_eng


@dataclass
class PrelayoutReport:
    """Structured pre-layout predictions for one circuit."""

    circuit_name: str
    net_rows: list[dict] = field(default_factory=list)
    device_rows: list[dict] = field(default_factory=list)
    targets: tuple[str, ...] = ()

    def render(self) -> str:
        sections = [f"Pre-layout prediction report: {self.circuit_name}"]
        if self.net_rows:
            headers = ["net", "predicted CAP", "designer CAP"]
            if any("RES" in row for row in self.net_rows):
                headers.append("predicted RES")
            body = []
            for row in self.net_rows:
                line = [
                    row["net"],
                    format_eng(row["CAP"], "F"),
                    format_eng(row["designer"], "F"),
                ]
                if "RES" in row:
                    line.append(format_eng(row["RES"], "Ohm"))
                body.append(line)
            sections.append(render_table(headers, body, title="Net parasitics"))
        if self.device_rows:
            device_targets = [t for t in self.targets if t not in ("CAP", "RES")]
            headers = ["device", *device_targets]
            body = [
                [row["device"], *[format_eng(row[t]) for t in device_targets]]
                for row in self.device_rows
            ]
            sections.append(render_table(headers, body, title="Device parameters"))
        return "\n\n".join(sections)


def prelayout_report(
    circuit: Circuit, model: MultiTargetModel
) -> PrelayoutReport:
    """Build a :class:`PrelayoutReport` from a trained multi-target model."""
    predictions = model.predict_all(circuit)
    targets = tuple(predictions)
    report = PrelayoutReport(circuit_name=circuit.name, targets=targets)

    designer = designer_estimate(circuit)
    if "CAP" in predictions:
        for net in sorted(predictions["CAP"]):
            row = {
                "net": net,
                "CAP": predictions["CAP"][net],
                "designer": designer[net],
            }
            if "RES" in predictions:
                row["RES"] = predictions["RES"][net]
            report.net_rows.append(row)

    device_targets = [t for t in targets if t not in ("CAP", "RES")]
    if device_targets:
        devices = sorted(predictions[device_targets[0]])
        for device in devices:
            row = {"device": device}
            for target in device_targets:
                row[target] = predictions[target][device]
            report.device_rows.append(row)
    return report
