"""Training runtime: shared input caching, instrumentation, fault tolerance.

A full paper reproduction trains ~18 independent models (13 paper targets,
the RES extension, and the 4-member §IV CAP ensemble) over the *same* merged
training graph.  This module factors the runtime concerns out of the
per-target training loop:

* :class:`MergedInputsCache` — builds the merged :class:`GraphInputs` once
  per (record set, feature scaler) pair and shares it across every target
  and every ensemble member, instead of re-merging per model.
* :class:`TrainCallback` — a pluggable observer protocol for per-epoch
  instrumentation, with two stock implementations:
  :class:`JsonlMetricsWriter` (append-only metrics log) and
  :class:`ConsoleProgressReporter` (human-readable progress lines).
* :class:`RuntimeConfig` — robustness knobs: NaN/Inf divergence detection
  with re-seeded retries, early stopping on loss plateau, and periodic
  checkpointing that :meth:`TargetPredictor.fit` can resume from
  bit-for-bit.
* :func:`save_checkpoint` / :func:`load_checkpoint` — ``.npz`` snapshots of
  model weights plus optimizer state plus the epoch counter.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro import obs
from repro.data.dataset import CircuitRecord
from repro.data.normalize import FeatureScaler
from repro.data.targets import TargetSpec
from repro.errors import ModelError
from repro.graph.hetero import merge_graphs
from repro.nn.module import Module
from repro.nn.optim import Optimizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guards, typing only
    from repro.models.inputs import GraphInputs
    from repro.models.trainer import TrainHistory


# ----------------------------------------------------------------------
# Shared merged-input cache
# ----------------------------------------------------------------------
@dataclass
class MergedSplit:
    """A merged training split: shared inputs plus per-record node offsets."""

    inputs: GraphInputs
    offsets: np.ndarray  # global node-id offset of each record's graph
    records: list[CircuitRecord]

    def target_arrays(self, spec: TargetSpec) -> tuple[np.ndarray, np.ndarray]:
        """(global node_ids, ground-truth values) for one target spec."""
        ids, values = [], []
        for record, offset in zip(self.records, self.offsets):
            node_ids, vals = record.target_arrays(spec)
            ids.append(node_ids + offset)
            values.append(vals)
        return np.concatenate(ids), np.concatenate(values)


#: Supported merged-input construction modes (see :meth:`MergedInputsCache.merged`).
BATCHING_MODES = ("mega", "graph")


class MergedInputsCache:
    """Cache of merged ``GraphInputs`` keyed by mega-batch composition.

    The merge + feature-scaling work in the training driver is identical for
    every target trained on the same node population, so ``repro.flows.train``
    and ``train_capacitance_ensemble`` share one cache across all their
    per-target loops.  Entries are keyed by **content**, not identity: the
    ordered circuit fingerprints of the batch, the feature-scaler
    fingerprint, and the batching mode.  Two differently-composed batches
    (different circuits, a changed circuit, a different record order — node
    offsets depend on it — or a different construction mode) can therefore
    never share an entry, while re-built record objects with identical
    content still hit.  ``hits``/``misses`` count lookups for tests and
    diagnostics.
    """

    def __init__(self) -> None:
        self._merged: dict[tuple, MergedSplit] = {}
        self._targets: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(
        records: list[CircuitRecord], scaler: FeatureScaler, mode: str
    ) -> tuple:
        from repro.data.fingerprint import record_fingerprint, scaler_fingerprint

        return (
            tuple(record_fingerprint(record) for record in records),
            scaler_fingerprint(scaler),
            mode,
        )

    def merged(
        self,
        records: list[CircuitRecord],
        scaler: FeatureScaler,
        mode: str = "mega",
    ) -> MergedSplit:
        """Merged inputs for a record list, built at most once.

        ``mode="mega"`` builds per-record :class:`GraphInputs` and
        disjoint-unions them through :meth:`GraphInputs.merge_graphs`
        (segment plans stitched from the per-graph plans);
        ``mode="graph"`` is the legacy path (merge the
        :class:`HeteroGraph` objects, then scale once).  Both produce
        bit-identical arrays and plans; they are cached separately because
        callers may hold references into either construction.
        """
        if mode not in BATCHING_MODES:
            raise ModelError(
                f"unknown batching mode {mode!r}; choose from {BATCHING_MODES}"
            )
        key = self._key(records, scaler, mode)
        split = self._merged.get(key)
        if split is not None:
            self.hits += 1
            obs.inc("cache.merged_inputs_hits_total")
            return split
        self.misses += 1
        obs.inc("cache.merged_inputs_misses_total")
        # Imported here rather than at module top: repro.models.__init__
        # imports the trainer, which imports this module.
        from repro.models.inputs import GraphInputs

        with obs.span("cache.merge_inputs", records=len(records), mode=mode):
            if mode == "mega":
                batch = GraphInputs.merge_graphs(
                    [GraphInputs.from_record(record, scaler) for record in records]
                )
                inputs, offsets = batch.inputs, batch.offsets
            else:
                merged = merge_graphs([record.graph for record in records])
                inputs = GraphInputs.from_graph(merged, scaler)
                offsets = np.cumsum(
                    [0] + [r.graph.num_nodes for r in records[:-1]]
                )
            split = MergedSplit(
                inputs=inputs, offsets=offsets, records=list(records)
            )
        self._merged[key] = split
        return split

    def merged_target(
        self,
        records: list[CircuitRecord],
        scaler: FeatureScaler,
        spec: TargetSpec,
        mode: str = "mega",
    ) -> tuple[GraphInputs, np.ndarray, np.ndarray]:
        """(shared inputs, target node_ids, target values) for one spec.

        The returned arrays are cached and shared between callers — treat
        them as read-only (filter with boolean indexing, never in place).
        """
        split = self.merged(records, scaler, mode)
        key = (self._key(records, scaler, mode), spec.name)
        arrays = self._targets.get(key)
        if arrays is None:
            arrays = split.target_arrays(spec)
            self._targets[key] = arrays
        return split.inputs, arrays[0], arrays[1]


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------
@dataclass
class TrainContext:
    """Immutable description of one training attempt, passed to callbacks."""

    conv: str
    target: str
    total_epochs: int
    attempt: int
    run_seed: int
    predictor: Any = None  # the TargetPredictor being fitted
    model: Any = None  # the live GNNRegressor of this attempt


@dataclass
class EpochMetrics:
    """Instrumentation captured at the end of every epoch."""

    epoch: int  # 1-based, global across resume
    loss: float
    grad_norm: float
    lr: float
    seconds: float
    attempt: int = 0

    def as_row(self) -> dict:
        return {
            "epoch": self.epoch,
            "loss": self.loss,
            "grad_norm": self.grad_norm,
            "lr": self.lr,
            "seconds": self.seconds,
            "attempt": self.attempt,
        }


class TrainCallback:
    """Observer protocol for the training loop (all hooks optional)."""

    def on_train_start(self, ctx: TrainContext) -> None: ...

    def on_epoch_end(self, ctx: TrainContext, metrics: EpochMetrics) -> None: ...

    def on_divergence(self, ctx: TrainContext, epoch: int, reason: str) -> None: ...

    def on_checkpoint(self, ctx: TrainContext, path: str) -> None: ...

    def on_train_end(self, ctx: TrainContext, history: "TrainHistory") -> None: ...


class ConsoleProgressReporter(TrainCallback):
    """Print a progress line every *every* epochs (and on lifecycle events).

    Each line carries the observed training rate (epochs/s) and the ETA for
    the remaining epochs, from the cumulative epoch seconds of the current
    attempt.  When ``total_epochs < every`` the final epoch still prints,
    so short runs always produce exactly one progress line.
    """

    def __init__(self, every: int = 10):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self._seconds = 0.0
        self._epochs = 0

    def _tag(self, ctx: TrainContext) -> str:
        retry = f" retry {ctx.attempt}" if ctx.attempt else ""
        return f"[{ctx.conv}/{ctx.target}{retry}]"

    @staticmethod
    def _format_eta(seconds: float) -> str:
        if seconds >= 3600:
            return f"{seconds / 3600:.1f}h"
        if seconds >= 60:
            return f"{seconds / 60:.1f}m"
        return f"{seconds:.0f}s"

    def on_train_start(self, ctx: TrainContext) -> None:
        self._seconds = 0.0
        self._epochs = 0

    def on_epoch_end(self, ctx: TrainContext, metrics: EpochMetrics) -> None:
        self._seconds += metrics.seconds
        self._epochs += 1
        if metrics.epoch % self.every == 0 or metrics.epoch == ctx.total_epochs:
            if self._seconds > 0:
                rate = self._epochs / self._seconds
                remaining = max(ctx.total_epochs - metrics.epoch, 0)
                pace = f" {rate:.1f}ep/s eta {self._format_eta(remaining / rate)}"
            else:
                pace = ""
            print(
                f"{self._tag(ctx)} epoch {metrics.epoch}/{ctx.total_epochs}: "
                f"loss={metrics.loss:.5f} |g|={metrics.grad_norm:.3e} "
                f"{metrics.seconds * 1e3:.0f}ms{pace}",
                flush=True,
            )

    def on_divergence(self, ctx: TrainContext, epoch: int, reason: str) -> None:
        print(f"{self._tag(ctx)} diverged at epoch {epoch}: {reason}", flush=True)

    def on_train_end(self, ctx: TrainContext, history) -> None:
        note = " (early stop)" if history.stopped_early else ""
        print(
            f"{self._tag(ctx)} done: {len(history.losses)} epochs, "
            f"final loss={history.final_loss:.5f}{note}",
            flush=True,
        )


class JsonlMetricsWriter(TrainCallback):
    """Append one JSON object per event to a ``.jsonl`` file.

    The writer holds only the path (opened per write in append mode), so it
    is picklable and safe to pass to process-parallel training.  Schema:
    every row has ``event`` (``start``/``epoch``/``divergence``/
    ``checkpoint``/``end``), ``conv``, ``target`` and ``attempt``; ``epoch``
    rows add the :class:`EpochMetrics` fields, ``end`` rows add
    ``epochs_run``, ``final_loss`` and ``stopped_early``.

    Crash safety: ``checkpoint`` rows are flushed and fsynced so the log on
    disk always covers the state a resume restarts from, and the first
    append of a run terminates any partial last line a crash mid-write left
    behind (readers skip the one malformed line; later rows stay parseable).
    """

    def __init__(self, path: str | os.PathLike):
        self.path = str(path)
        self._checked_partial = False

    def _repair_partial_line(self) -> None:
        """Newline-terminate a truncated last line left by a crash."""
        self._checked_partial = True
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                last = handle.read(1)
        except (FileNotFoundError, OSError):
            return  # no file yet, or empty: nothing to repair
        if last not in (b"\n", b""):
            with open(self.path, "a") as handle:
                handle.write("\n")

    def _write(
        self, ctx: TrainContext, event: str, durable: bool = False, **fields
    ) -> None:
        row = {
            "event": event,
            "conv": ctx.conv,
            "target": ctx.target,
            "attempt": ctx.attempt,
            **fields,
        }
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if not self._checked_partial:
            self._repair_partial_line()
        with open(self.path, "a") as handle:
            handle.write(json.dumps(row) + "\n")
            if durable:
                handle.flush()
                os.fsync(handle.fileno())

    def on_train_start(self, ctx: TrainContext) -> None:
        self._write(ctx, "start", total_epochs=ctx.total_epochs, run_seed=ctx.run_seed)

    def on_epoch_end(self, ctx: TrainContext, metrics: EpochMetrics) -> None:
        row = metrics.as_row()
        row.pop("attempt")  # already in the envelope
        self._write(ctx, "epoch", **row)

    def on_divergence(self, ctx: TrainContext, epoch: int, reason: str) -> None:
        self._write(ctx, "divergence", epoch=epoch, reason=reason)

    def on_checkpoint(self, ctx: TrainContext, path: str) -> None:
        self._write(ctx, "checkpoint", durable=True, path=path)

    def on_train_end(self, ctx: TrainContext, history) -> None:
        self._write(
            ctx,
            "end",
            epochs_run=len(history.losses),
            final_loss=history.final_loss,
            stopped_early=history.stopped_early,
        )


class CallbackList(TrainCallback):
    """Fan a training event out to several callbacks."""

    def __init__(self, callbacks: list[TrainCallback]):
        self.callbacks = list(callbacks)

    def on_train_start(self, ctx):
        for cb in self.callbacks:
            cb.on_train_start(ctx)

    def on_epoch_end(self, ctx, metrics):
        for cb in self.callbacks:
            cb.on_epoch_end(ctx, metrics)

    def on_divergence(self, ctx, epoch, reason):
        for cb in self.callbacks:
            cb.on_divergence(ctx, epoch, reason)

    def on_checkpoint(self, ctx, path):
        for cb in self.callbacks:
            cb.on_checkpoint(ctx, path)

    def on_train_end(self, ctx, history):
        for cb in self.callbacks:
            cb.on_train_end(ctx, history)


# ----------------------------------------------------------------------
# Runtime configuration
# ----------------------------------------------------------------------
@dataclass
class RuntimeConfig:
    """Robustness and instrumentation knobs for ``TargetPredictor.fit``.

    Attributes
    ----------
    callbacks:
        Extra :class:`TrainCallback` observers.
    metrics_jsonl:
        When set, append a :class:`JsonlMetricsWriter` at this path.
    progress_every:
        When > 0, report console progress every N epochs.
    max_retries:
        Divergence retries: a NaN/Inf loss or gradient aborts the attempt
        and retrains from scratch with a re-seeded initialisation, up to
        this many extra attempts.
    patience:
        When > 0, stop early after this many consecutive epochs without the
        loss improving by more than ``min_delta``.
    min_delta:
        Minimum loss improvement that resets the patience counter.
    checkpoint_dir / checkpoint_every:
        When both set, write a resumable snapshot every N epochs.
    """

    callbacks: list[TrainCallback] = field(default_factory=list)
    metrics_jsonl: str | None = None
    progress_every: int = 0
    max_retries: int = 0
    patience: int = 0
    min_delta: float = 0.0
    checkpoint_dir: str | None = None
    checkpoint_every: int = 0

    def build_callbacks(self) -> list[TrainCallback]:
        """The effective callback list (configured + stock writers)."""
        callbacks = list(self.callbacks)
        if self.metrics_jsonl:
            callbacks.append(JsonlMetricsWriter(self.metrics_jsonl))
        if self.progress_every:
            callbacks.append(ConsoleProgressReporter(self.progress_every))
        if obs.is_enabled():
            from repro.obs.callback import ObsTrainCallback

            callbacks.append(ObsTrainCallback())
        return callbacks


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------
@dataclass
class Checkpoint:
    """A resumable training snapshot loaded from disk."""

    params: dict[str, np.ndarray]
    optimizer_state: dict[str, np.ndarray]
    epoch: int
    attempt: int
    losses: list[float]
    grad_norms: list[float]
    meta: dict


def save_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer,
    *,
    epoch: int,
    attempt: int,
    losses: list[float],
    grad_norms: list[float],
    meta: dict | None = None,
) -> str:
    """Write a resumable snapshot: weights + optimizer state + epoch.

    The payload reuses :meth:`TargetPredictor.save`'s layout (``param/*``
    entries) and adds ``opt/*`` arrays plus the training history needed to
    continue deterministically.
    """
    path = str(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    payload: dict[str, np.ndarray] = {
        f"param/{name}": value for name, value in model.state_dict().items()
    }
    for name, value in optimizer.state_dict().items():
        payload[f"opt/{name}"] = value
    # staticcheck: ignore[precision-policy] -- checkpoints are
    # float64-canonical on disk regardless of the training precision
    payload["history/losses"] = np.asarray(losses, dtype=np.float64)
    payload["history/grad_norms"] = np.asarray(grad_norms, dtype=np.float64)  # staticcheck: ignore[precision-policy]
    payload["ckpt_meta"] = np.array(
        json.dumps({"epoch": epoch, "attempt": attempt, **(meta or {})})
    )
    np.savez(path, **payload)
    return path


def load_checkpoint(path: str | os.PathLike) -> Checkpoint:
    """Load a snapshot written by :func:`save_checkpoint`."""
    path = str(path)
    if not os.path.exists(path):
        raise ModelError(f"checkpoint {path!r} does not exist")
    with np.load(path) as archive:
        if "ckpt_meta" not in archive.files:
            raise ModelError(f"{path!r} is not a training checkpoint")
        meta = json.loads(str(archive["ckpt_meta"]))
        params = {
            name[len("param/"):]: archive[name]
            for name in archive.files
            if name.startswith("param/")
        }
        optimizer_state = {
            name[len("opt/"):]: archive[name]
            for name in archive.files
            if name.startswith("opt/")
        }
        losses = archive["history/losses"].tolist()
        grad_norms = archive["history/grad_norms"].tolist()
    return Checkpoint(
        params=params,
        optimizer_state=optimizer_state,
        epoch=int(meta.pop("epoch")),
        attempt=int(meta.pop("attempt", 0)),
        losses=losses,
        grad_norms=grad_norms,
        meta=meta,
    )
