"""Deprecation shims for the pre-``TrainPlan`` training entry points.

Same contract as :mod:`repro.api.compat` (which supplies the warn-once
machinery): each legacy call pattern keeps working, emits one
:class:`DeprecationWarning` per process naming its replacement, and
produces **bit-identical** models and checkpoints by routing through the
:class:`~repro.flows.plan.TrainPlan` engine rather than a forked code
path.
"""

from __future__ import annotations

from typing import Iterable

from repro.api.compat import (  # noqa: F401 - re-exported warn machinery
    reset_deprecation_warnings,
    warn_deprecated,
)


def train_all_targets(
    bundle,
    targets: Iterable[str] | None = None,
    conv: str = "paragraph",
    config=None,
    verbose: bool = False,
    runtime=None,
    inputs_cache=None,
    parallel_workers: int = 0,
):
    """Deprecated: use ``repro.flows.train(bundle, TrainPlan(...))``.

    Trains one predictor per target name (defaults to the 13 paper
    targets) and returns a
    :class:`~repro.flows.training.MultiTargetModel`, exactly as the
    historical function did — the body is now a :class:`TrainPlan`
    translation, so results are bit-identical to :func:`repro.flows.train`.
    """
    warn_deprecated(
        "train_all_targets",
        "repro.flows.train(bundle, TrainPlan(targets=..., conv=..., ...))",
    )
    from repro.flows.plan import TrainPlan, train

    plan = TrainPlan(
        targets=tuple(targets) if targets is not None else None,
        conv=conv,
        config=config,
        runtime=runtime,
        parallel_workers=parallel_workers,
    )
    model = train(bundle, plan, inputs_cache=inputs_cache).model
    if verbose:
        for name, predictor in model.predictors.items():
            metrics = predictor.evaluate(bundle.records("test"))
            print(f"  {name}: R2={metrics['r2']:.3f}")
    return model
