"""Designer rule-of-thumb parasitic estimator (Table V baseline).

The paper's "Designer's Estimation" column annotates pre-layout simulations
with per-net capacitances guessed from experience.  This estimator encodes a
typical heuristic — a fixed base cap plus a per-fanout increment plus a
fraction of the connected gate load — that, like the real thing, helps some
metrics and badly misjudges parasitic-sensitive ones (it knows nothing about
wire length or floorplan).
"""

from __future__ import annotations

import hashlib

from repro.circuits import devices as dev
from repro.circuits.netlist import Circuit
from repro.layout.parasitics import pin_capacitance
from repro.layout.tech import DEFAULT_TECH, Technology

#: Base capacitance a designer pencils in for any routed net.  Designers
#: guard-band: the base is generous, which overestimates short local nets
#: (hurting fast paths) while still missing long floorplan-dominated wires.
BASE_CAP = 1.0e-15
#: Increment per additional pin beyond the first.
PER_FANOUT_CAP = 0.6e-15
#: Fraction of connected-pin capacitance the heuristic accounts for.
PIN_FRACTION = 1.0
#: Spread of the per-net judgement factor: estimates vary by up to this
#: factor either way ("estimation accuracy ... can vary between cases and
#: individual designers", paper §I).
JUDGEMENT_SPREAD = 4.0


def _judgement_factor(net_name: str) -> float:
    """Deterministic per-net multiplier in [1/spread, spread].

    Hash-derived so the same net always gets the same guess — this models a
    designer's judgement call, not random noise.
    """
    digest = hashlib.sha256(net_name.encode()).digest()
    unit = int.from_bytes(digest[:4], "little") / 2**32
    return JUDGEMENT_SPREAD ** (2.0 * unit - 1.0)


def designer_estimate(
    circuit: Circuit, tech: Technology = DEFAULT_TECH
) -> dict[str, float]:
    """Heuristic per-net capacitance estimates for all signal nets."""
    estimates: dict[str, float] = {}
    for net in circuit.signal_nets():
        pins = circuit.instances_on_net(net.name)
        pin_load = sum(
            pin_capacitance(inst, terminal, tech) for inst, terminal in pins
        )
        base = (
            BASE_CAP + PER_FANOUT_CAP * max(0, len(pins) - 1) + PIN_FRACTION * pin_load
        )
        estimates[net.name] = base * _judgement_factor(net.name)
    return estimates


def designer_device_estimate(circuit: Circuit) -> dict[str, dict[str, float]]:
    """Heuristic device parameters: assumes no diffusion sharing.

    Designers typically size assuming worst-case (unshared) diffusion; this
    gives the same value regardless of actual MTS structure.
    """
    from repro.layout.geometry import device_geometry
    from repro.layout.mts import ChainLink

    estimates: dict[str, dict[str, float]] = {}
    for inst in circuit.instances():
        if not dev.is_mos(inst.device_type):
            continue
        geometry = device_geometry(ChainLink(inst), DEFAULT_TECH)
        estimates[inst.name] = {
            "SA": geometry.source_area,
            "DA": geometry.drain_area,
            "SP": geometry.source_perimeter,
            "DP": geometry.drain_perimeter,
        }
    return estimates
