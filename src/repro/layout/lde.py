"""Layout-dependent-effect (LDE) parameters (paper Table I: LDE1..LDE8).

Eight per-transistor LDE parameters, averaged across fingers as in the
paper.  All carry heavy layout-uncertainty noise — which is what makes
their prediction MAPE large (>100% in paper Figure 7) while SA stays well
predicted — but each retains a *structural* component a graph model can
learn: LOD terms follow the diffusion geometry, and the well-proximity
terms follow the composition of the hosting diffusion chain (wells wrap
diffusion islands, so a device's distance to the well edge is set by its
neighbours' widths).

========  =================================================
LDE1      left length-of-diffusion (LOD-L)
LDE2      right length-of-diffusion (LOD-R)
LDE3      mean LOD across fingers
LDE4      distance to the left well edge of the diffusion island
LDE5      distance to the right well edge of the diffusion island
LDE6      vertical distance to the well edge
LDE7      neighbouring poly-gate spacing
LDE8      total diffusion length of the hosting chain
========  =================================================
"""

from __future__ import annotations

import numpy as np

from repro.layout.geometry import DiffusionGeometry
from repro.layout.mts import ChainLink, DiffusionChain
from repro.layout.placement import Placement
from repro.layout.tech import Technology

#: Number of LDE parameters (paper Table I: x = 1..8).
NUM_LDE = 8

#: Minimum well-edge distance (design rule floor).
_WELL_MARGIN = 0.2e-6


def chain_diffusion_length(chain: DiffusionChain, tech: Technology) -> float:
    """Total diffusion length of a chain (strain/LOD context for LDE8)."""
    total = 0.0
    for link in chain.links:
        nf = max(1, int(link.inst.param("NF")))
        total += nf * tech.poly_pitch
        left = tech.diff_inner / 2 if link.left_shared else tech.diff_end
        right = tech.diff_inner / 2 if link.right_shared else tech.diff_end
        total += left + right
    return total


def _device_strip_width(link: ChainLink, tech: Technology) -> float:
    """Horizontal extent of one device inside its diffusion strip."""
    nf = max(1, int(link.inst.param("NF")))
    return nf * tech.poly_pitch + tech.diff_inner


def lde_parameters(
    link: ChainLink,
    chain: DiffusionChain,
    geometry: DiffusionGeometry,
    placement: Placement,
    tech: Technology,
    rng: np.random.Generator,
) -> list[float]:
    """The eight LDE values for one device, in metres."""
    del placement  # well distances follow the chain, not absolute placement

    def lognoise(sigma: float) -> float:
        return float(np.exp(rng.normal(0.0, sigma)))

    lod_l = geometry.left_lod * lognoise(tech.noise_lod)
    lod_r = geometry.right_lod * lognoise(tech.noise_lod)
    lod_mean = 0.5 * (geometry.left_lod + geometry.right_lod) * lognoise(
        tech.noise_lod / 2
    )

    # Well edges wrap the diffusion island: the distance from this device to
    # the island's left/right edge is the accumulated width of its chain
    # predecessors/successors (learnable 2-hop structure), plus margin.
    position = next(
        i for i, other in enumerate(chain.links) if other.inst.name == link.inst.name
    )
    left_extent = sum(
        _device_strip_width(other, tech) for other in chain.links[:position]
    )
    right_extent = sum(
        _device_strip_width(other, tech) for other in chain.links[position + 1:]
    )
    well_left = (_WELL_MARGIN + left_extent) * lognoise(tech.noise_well)
    well_right = (_WELL_MARGIN + right_extent) * lognoise(tech.noise_well)
    nfin = max(1, int(link.inst.param("NFIN")))
    vertical_gap = max(tech.cell_height - nfin * tech.fin_pitch, tech.fin_pitch)
    well_vert = (_WELL_MARGIN + vertical_gap) * lognoise(tech.noise_well)

    neighbour_spacing = tech.poly_pitch * (
        1.0 if (link.left_shared or link.right_shared) else 2.0
    ) * lognoise(tech.noise_lod)
    chain_length = chain_diffusion_length(chain, tech) * lognoise(tech.noise_lod / 2)

    return [
        lod_l,
        lod_r,
        lod_mean,
        well_left,
        well_right,
        well_vert,
        neighbour_spacing,
        chain_length,
    ]
