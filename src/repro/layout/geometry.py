"""Source/drain diffusion geometry (paper Table I: SA, DA, SP, DP).

Implements the finger-level diffusion model of paper Figure 2: a device with
NF fingers has NF+1 diffusion regions alternating source/drain; regions
between gates have the inner (compact) length, outer regions the end length
unless they abut a neighbouring device in the diffusion chain, in which case
the boundary region is shared and each device owns half of an inner-length
region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import Instance
from repro.layout.mts import ChainLink
from repro.layout.tech import Technology


@dataclass(frozen=True)
class DiffusionGeometry:
    """Geometric device parameters, SI units (m^2 for areas, m for perimeters)."""

    source_area: float
    drain_area: float
    source_perimeter: float
    drain_perimeter: float
    left_lod: float
    right_lod: float
    width: float


def finger_regions(nf: int) -> list[str]:
    """Terminal assignment of the NF+1 diffusion regions, left to right.

    Fingers alternate S-G-D-G-S-...; by convention the leftmost region is a
    source, so even finger counts end on a source (symmetric device) and odd
    counts end on a drain.
    """
    if nf < 1:
        raise ValueError("finger count must be >= 1")
    return ["source" if i % 2 == 0 else "drain" for i in range(nf + 1)]


def device_geometry(link: ChainLink, tech: Technology) -> DiffusionGeometry:
    """Compute SA/DA/SP/DP and per-side LOD for one chain link.

    Sharing reduces the outer region to half an inner region, which is what
    makes the source diffusion of paper Figure 2's device A twice its drain
    diffusion.  All quantities scale with MULTI (parallel copies are laid
    out as separate identical structures).
    """
    inst: Instance = link.inst
    nf = max(1, int(inst.param("NF")))
    nfin = max(1, int(inst.param("NFIN")))
    multi = max(1, int(inst.param("MULTI")))
    width = nfin * tech.fin_pitch

    regions = finger_regions(nf)
    areas = {"source": 0.0, "drain": 0.0}
    perims = {"source": 0.0, "drain": 0.0}
    region_lengths: list[float] = []
    for index, terminal in enumerate(regions):
        is_left_end = index == 0
        is_right_end = index == len(regions) - 1
        if is_left_end:
            length = tech.diff_inner / 2 if link.left_shared else tech.diff_end
        elif is_right_end:
            length = tech.diff_inner / 2 if link.right_shared else tech.diff_end
        else:
            length = tech.diff_inner
        region_lengths.append(length)
        areas[terminal] += length * width
        perimeter = 2.0 * length
        if (is_left_end and not link.left_shared) or (
            is_right_end and not link.right_shared
        ):
            perimeter += width  # exposed outer edge
        perims[terminal] += perimeter

    # LOD: distance from the nearest gate to the diffusion edge on each side.
    left_lod = region_lengths[0] + (nf - 1) * tech.poly_pitch / 2
    right_lod = region_lengths[-1] + (nf - 1) * tech.poly_pitch / 2

    return DiffusionGeometry(
        source_area=areas["source"] * multi,
        drain_area=areas["drain"] * multi,
        source_perimeter=perims["source"] * multi,
        drain_perimeter=perims["drain"] * multi,
        left_lod=left_lod,
        right_lod=right_lod,
        width=width,
    )


def device_footprint(inst: Instance, tech: Technology) -> tuple[float, float]:
    """(width_x, height_y) of a device's layout footprint, MULTI included."""
    nf = max(1, int(inst.param("NF")))
    nfin = max(1, int(inst.param("NFIN")))
    multi = max(1, int(inst.param("MULTI")))
    x = multi * (nf * tech.poly_pitch + 2 * tech.diff_end)
    y = max(nfin * tech.fin_pitch, tech.cell_height)
    return x, y
