"""Net routing-length estimation.

Wire length per signal net is estimated from placement as half-perimeter
wirelength (HPWL) of the connected pins, inflated by a fanout-dependent
detour factor (Steiner overhead), plus a per-pin escape length.  This is the
deterministic part of the capacitance ground truth; layout-uncertainty noise
is applied later in :mod:`repro.layout.parasitics`.
"""

from __future__ import annotations

import math

from repro.circuits.netlist import Circuit
from repro.layout.placement import Placement

#: Escape/via stub length added per connected pin.
PIN_ESCAPE_LENGTH = 0.08e-6


def detour_factor(fanout: int) -> float:
    """Steiner-tree detour over HPWL as a function of pin count.

    1.0 for two-pin nets, growing logarithmically (classical RSMT/HPWL
    ratios: ~1.06 at 3 pins, ~1.2 at 5, ~1.5 at 10+).
    """
    if fanout <= 2:
        return 1.0
    return 1.0 + 0.25 * math.log2(fanout - 1.0)


def net_length(circuit: Circuit, placement: Placement, net_name: str) -> float:
    """Estimated routed length of one net, in metres.

    Nets whose pins sit at a single point still get the per-pin escape
    length, so no connected net has exactly zero capacitance.
    """
    pins = [
        placement.position_of(inst.name)
        for inst, _terminal in circuit.instances_on_net(net_name)
    ]
    if not pins:
        return 0.0
    xs = [p[0] for p in pins]
    ys = [p[1] for p in pins]
    hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
    length = hpwl * detour_factor(len(pins)) + PIN_ESCAPE_LENGTH * len(pins)
    # High-fanout nets route as trunks with per-pin branches: the Steiner
    # tree length grows roughly linearly in pin count beyond a threshold.
    if len(pins) > 8:
        length += hpwl * 0.10 * (len(pins) - 8)
    return length


def all_net_lengths(circuit: Circuit, placement: Placement) -> dict[str, float]:
    """Routing-length estimates for every signal net."""
    return {
        net.name: net_length(circuit, placement, net.name)
        for net in circuit.signal_nets()
    }
