"""Layout synthesizer: the ground-truth substitute for post-layout extraction."""

from repro.layout.estimator import designer_device_estimate, designer_estimate
from repro.layout.geometry import DiffusionGeometry, device_geometry, finger_regions
from repro.layout.lde import NUM_LDE, lde_parameters
from repro.layout.mts import (
    ChainLink,
    DiffusionChain,
    find_diffusion_chains,
    sharing_summary,
)
from repro.layout.parasitics import net_capacitance, net_resistance, pin_capacitance
from repro.layout.placement import Placement, place_circuit
from repro.layout.routing import all_net_lengths, detour_factor, net_length
from repro.layout.synthesizer import (
    DEVICE_TARGET_NAMES,
    DeviceTargets,
    LayoutResult,
    synthesize_layout,
    transistor_names,
)
from repro.layout.coupling import (
    CouplingResult,
    extract_coupling,
    ground_cap_after_coupling,
)
from repro.layout.tech import DEFAULT_TECH, Technology, corner

__all__ = [
    "designer_device_estimate",
    "designer_estimate",
    "DiffusionGeometry",
    "device_geometry",
    "finger_regions",
    "NUM_LDE",
    "lde_parameters",
    "ChainLink",
    "DiffusionChain",
    "find_diffusion_chains",
    "sharing_summary",
    "net_capacitance",
    "net_resistance",
    "pin_capacitance",
    "Placement",
    "place_circuit",
    "all_net_lengths",
    "detour_factor",
    "net_length",
    "DEVICE_TARGET_NAMES",
    "DeviceTargets",
    "LayoutResult",
    "synthesize_layout",
    "transistor_names",
    "DEFAULT_TECH",
    "Technology",
    "corner",
    "CouplingResult",
    "extract_coupling",
    "ground_cap_after_coupling",
]
