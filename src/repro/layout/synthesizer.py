"""Layout synthesis driver: schematic -> parasitic/parameter ground truth.

This is the library's substitute for the paper's post-layout extraction
flow.  Given a circuit it runs diffusion-sharing analysis, placement,
geometry and LDE computation, routing estimation, and capacitance
extraction, returning every prediction target of paper Table I:

* per-net CAP,
* per-transistor LDE1..8, SA, DA, SP, DP.

All randomness (layout uncertainty) is drawn from streams derived from
``(seed, circuit.name)``, so ground truth is reproducible and *consistent*:
re-synthesising the same circuit yields identical targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.circuits import devices as dev
from repro.circuits.netlist import Circuit
from repro.errors import LayoutError
from repro.layout.geometry import device_geometry
from repro.layout.lde import NUM_LDE, lde_parameters
from repro.layout.mts import DiffusionChain, find_diffusion_chains
from repro.layout.parasitics import extract_capacitances, extract_resistances
from repro.layout.placement import Placement, place_circuit
from repro.layout.routing import all_net_lengths
from repro.layout.tech import DEFAULT_TECH, Technology
from repro.rng import SeedSequenceNamer

#: Device-parameter target names in canonical order (paper Table I).
DEVICE_TARGET_NAMES = tuple(f"LDE{i}" for i in range(1, NUM_LDE + 1)) + (
    "SA",
    "DA",
    "SP",
    "DP",
)


@dataclass
class DeviceTargets:
    """Ground-truth layout parameters for one transistor."""

    lde: list[float]
    sa: float
    da: float
    sp: float
    dp: float

    def as_dict(self) -> dict[str, float]:
        values = {f"LDE{i + 1}": v for i, v in enumerate(self.lde)}
        values.update({"SA": self.sa, "DA": self.da, "SP": self.sp, "DP": self.dp})
        return values

    def value(self, target: str) -> float:
        try:
            return self.as_dict()[target]
        except KeyError:
            raise LayoutError(f"unknown device target {target!r}") from None


@dataclass
class LayoutResult:
    """All ground-truth targets extracted from a synthesized layout."""

    circuit_name: str
    net_caps: dict[str, float]
    device_params: dict[str, DeviceTargets]
    placement: Placement
    chains: list[DiffusionChain] = field(default_factory=list)
    net_res: dict[str, float] = field(default_factory=dict)

    def cap_of(self, net_name: str) -> float:
        try:
            return self.net_caps[net_name]
        except KeyError:
            raise LayoutError(
                f"no extracted capacitance for net {net_name!r}"
            ) from None

    def res_of(self, net_name: str) -> float:
        try:
            return self.net_res[net_name]
        except KeyError:
            raise LayoutError(
                f"no extracted resistance for net {net_name!r}"
            ) from None


def synthesize_layout(
    circuit: Circuit,
    seed: int = 0,
    tech: Technology = DEFAULT_TECH,
) -> LayoutResult:
    """Produce the full set of layout targets for *circuit*.

    Raises
    ------
    LayoutError
        If the circuit has no signal nets (nothing to extract).
    """
    if not circuit.signal_nets():
        raise LayoutError(f"circuit {circuit.name!r} has no signal nets")
    namer = SeedSequenceNamer(seed, "layout", circuit.name)

    with obs.span("layout.synthesize", circuit=circuit.name):
        with obs.span("layout.chains"):
            chains = find_diffusion_chains(circuit)
        with obs.span("layout.place"):
            placement = place_circuit(
                circuit, chains, tech, namer.stream("placement")
            )

        device_params: dict[str, DeviceTargets] = {}
        geometry_rng = namer.stream("geometry")
        lde_rng = namer.stream("lde")
        with obs.span("layout.device_params"):
            for chain in chains:
                for link in chain.links:
                    geometry = device_geometry(link, tech)
                    geo_noise = np.exp(
                        geometry_rng.normal(0.0, tech.noise_geometry, size=4)
                    )
                    device_params[link.inst.name] = DeviceTargets(
                        lde=lde_parameters(
                            link, chain, geometry, placement, tech, lde_rng
                        ),
                        sa=geometry.source_area * geo_noise[0],
                        da=geometry.drain_area * geo_noise[1],
                        sp=geometry.source_perimeter * geo_noise[2],
                        dp=geometry.drain_perimeter * geo_noise[3],
                    )

        with obs.span("layout.route"):
            lengths = all_net_lengths(circuit, placement)
        with obs.span("layout.extract"):
            net_caps = extract_capacitances(
                circuit, lengths, tech, namer.stream("parasitics")
            )
            net_res = extract_resistances(
                circuit, lengths, tech, namer.stream("resistance")
            )
    obs.inc("layouts_synthesized_total")
    obs.inc("layout.devices_total", len(device_params))
    return LayoutResult(
        circuit_name=circuit.name,
        net_caps=net_caps,
        device_params=device_params,
        placement=placement,
        chains=chains,
        net_res=net_res,
    )


def transistor_names(circuit: Circuit) -> list[str]:
    """Names of all MOSFET instances (the device-parameter population)."""
    return [
        inst.name for inst in circuit.instances() if dev.is_mos(inst.device_type)
    ]
