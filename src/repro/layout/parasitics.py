"""Net parasitic capacitance extraction (paper Table I: CAP).

Per-net lumped capacitance = wire capacitance (length x per-length
coefficient, with layout-uncertainty noise) + the pin capacitances of every
connected device terminal.  The noise level grows with net size, modelling
the paper's observation that large (floorplan-dominated) nets are inherently
harder to predict.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.circuits import devices as dev
from repro.circuits.netlist import Circuit, Instance
from repro.layout.tech import Technology


def pin_capacitance(inst: Instance, terminal: str, tech: Technology) -> float:
    """Capacitance contributed by one device pin, in farads."""
    if dev.is_mos(inst.device_type):
        nf = max(1, int(inst.param("NF")))
        nfin = max(1, int(inst.param("NFIN")))
        multi = max(1, int(inst.param("MULTI")))
        scale = tech.thick_cap_scale if inst.device_type == dev.TRANSISTOR_THICKGATE else 1.0
        if terminal == "gate":
            return tech.gate_cap_per_fin * nfin * nf * multi * scale
        if terminal in ("source", "drain"):
            # roughly half the diffusion regions belong to each terminal
            regions = (nf + 1) / 2.0
            return tech.sd_cap_per_fin * nfin * regions * multi * scale
        return 0.0  # bulk ties are in-cell
    if inst.device_type == dev.CAPACITOR:
        # Plate parasitics scale with the explicit capacitor value: big MOM/MIM
        # structures drag a bottom-plate fraction onto the net.
        multi = max(1, int(inst.param("MULTI")))
        value = inst.param("C", 25e-15 * multi)
        return tech.pin_cap_passive * multi + tech.cap_value_fraction * value
    if inst.device_type == dev.RESISTOR:
        return tech.pin_cap_passive * (0.5 + inst.param("L") / 4e-6)
    if inst.device_type == dev.DIODE:
        return tech.pin_cap_passive * max(1, int(inst.param("NF")))
    if inst.device_type == dev.BJT:
        return 2.0 * tech.pin_cap_passive
    return 0.0


def wire_capacitance(
    length: float, tech: Technology, rng: np.random.Generator
) -> float:
    """Noisy wire capacitance for a routed length.

    The lognormal sigma starts at ``tech.noise_cap`` and grows with length
    (up to +0.25) to model floorplan uncertainty on long nets.
    """
    if length <= 0:
        return 0.0
    sigma = tech.noise_cap + 0.25 * min(1.0, length / 20e-6)
    noise = math.exp(rng.normal(0.0, sigma))
    return length * tech.cap_per_length * noise


def net_capacitance(
    circuit: Circuit,
    net_name: str,
    length: float,
    tech: Technology,
    rng: np.random.Generator,
) -> float:
    """Total lumped parasitic capacitance of one net, in farads."""
    total = wire_capacitance(length, tech, rng)
    for inst, terminal in circuit.instances_on_net(net_name):
        total += pin_capacitance(inst, terminal, tech)
    return total


def extract_capacitances(
    circuit: Circuit,
    lengths: dict[str, float],
    tech: Technology,
    rng: np.random.Generator,
) -> dict[str, float]:
    """CAP ground truth for every signal net (deterministic given the rng)."""
    caps: dict[str, float] = {}
    for net in circuit.signal_nets():
        caps[net.name] = net_capacitance(
            circuit, net.name, lengths.get(net.name, 0.0), tech, rng
        )
    obs.inc("layout.caps_extracted_total", len(caps))
    return caps


def net_resistance(
    circuit: Circuit,
    net_name: str,
    length: float,
    tech: Technology,
    rng: np.random.Generator,
) -> float:
    """Effective lumped trace resistance of one net, in ohms.

    The paper defers resistance to future work because multi-path trace
    resistance explodes netlist size; the lumped effective value here is the
    trace resistance of the estimated route (parallelised across branches
    for high-fanout nets) plus per-pin via resistance.
    """
    pins = max(1, circuit.fanout(net_name))
    branches = 1.0 + 0.5 * (pins - 1)  # current spreads over branches
    trace = length * tech.res_per_length / branches
    noise = math.exp(rng.normal(0.0, tech.noise_cap * 1.5))
    return trace * noise + tech.via_resistance * pins


def extract_resistances(
    circuit: Circuit,
    lengths: dict[str, float],
    tech: Technology,
    rng: np.random.Generator,
) -> dict[str, float]:
    """RES ground truth for every signal net (extension target)."""
    res: dict[str, float] = {}
    for net in circuit.signal_nets():
        res[net.name] = net_resistance(
            circuit, net.name, lengths.get(net.name, 0.0), tech, rng
        )
    obs.inc("layout.res_extracted_total", len(res))
    return res
