"""Row-based procedural placement.

Diffusion chains are placed left-to-right into rows of fixed width; passive
devices follow.  The resulting coordinates drive routing-length estimation
and the well-proximity LDE parameters.  A small seeded jitter models the
placement freedom a human layouter has.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits import devices as dev
from repro.circuits.netlist import Circuit, Instance, is_supply_name
from repro.layout.geometry import device_footprint
from repro.layout.mts import DiffusionChain
from repro.layout.tech import Technology


@dataclass
class PlacedDevice:
    """Placement record for one instance."""

    name: str
    x: float  # left edge
    y: float  # row baseline
    width: float
    height: float
    row: int

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2, self.y + self.height / 2)


@dataclass
class Placement:
    """Full placement of a circuit."""

    devices: dict[str, PlacedDevice] = field(default_factory=dict)
    num_rows: int = 0
    die_width: float = 0.0
    die_height: float = 0.0

    def position_of(self, inst_name: str) -> tuple[float, float]:
        return self.devices[inst_name].center


def _passive_footprint(inst: Instance, tech: Technology) -> tuple[float, float]:
    if inst.device_type == dev.RESISTOR:
        return inst.param("L"), 4 * tech.cell_height
    if inst.device_type == dev.CAPACITOR:
        multi = max(1, int(inst.param("MULTI")))
        return multi * 1.0e-6, 4 * tech.cell_height
    if inst.device_type == dev.DIODE:
        nf = max(1, int(inst.param("NF")))
        return nf * 0.3e-6, 2 * tech.cell_height
    if inst.device_type == dev.BJT:
        return 2.0e-6, 8 * tech.cell_height
    raise ValueError(f"not a passive device: {inst.device_type}")


#: Nets with more pins than this are treated as global (ignored when
#: clustering units for placement — a placer cannot keep a 50-pin net local).
LOCAL_NET_MAX_FANOUT = 8


def _connectivity_order(
    circuit: Circuit, units: list[list[Instance]]
) -> list[int]:
    """BFS order over placement units connected through local signal nets.

    Keeping connected units adjacent is what a wirelength-driven placer
    does; without it, local-net lengths would grow with die size and the
    CAP ground truth would not be learnable from schematic structure.
    """
    net_to_units: dict[str, list[int]] = {}
    for index, unit in enumerate(units):
        for inst in unit:
            for net_name in inst.conns.values():
                if is_supply_name(net_name):
                    continue
                bucket = net_to_units.setdefault(net_name, [])
                if not bucket or bucket[-1] != index:
                    bucket.append(index)
    adjacency: dict[int, list[int]] = {i: [] for i in range(len(units))}
    for net_name, members in net_to_units.items():
        if len(members) < 2 or circuit.fanout(net_name) > LOCAL_NET_MAX_FANOUT:
            continue
        unique = sorted(set(members))
        for a in unique:
            for b in unique:
                if a != b:
                    adjacency[a].append(b)
    order: list[int] = []
    visited: set[int] = set()
    for start in range(len(units)):
        if start in visited:
            continue
        queue = [start]
        visited.add(start)
        while queue:
            current = queue.pop(0)
            order.append(current)
            for neighbour in sorted(set(adjacency[current])):
                if neighbour not in visited:
                    visited.add(neighbour)
                    queue.append(neighbour)
    return order


def place_circuit(
    circuit: Circuit,
    chains: list[DiffusionChain],
    tech: Technology,
    rng: np.random.Generator,
) -> Placement:
    """Place all devices into rows; returns coordinates for every instance.

    Placement units (diffusion chains and passive singletons) are ordered
    by local-net connectivity (BFS) so that connected devices land close
    together, then packed left-to-right into rows.  Chains stay contiguous.
    A +-10% jitter on effective widths models layout slack.
    """
    placement = Placement()
    cursor_x = 0.0
    row = 0
    row_height = 2 * tech.cell_height

    def advance(width: float, height: float) -> tuple[float, float, int]:
        nonlocal cursor_x, row
        if cursor_x + width > tech.row_width and cursor_x > 0:
            cursor_x = 0.0
            row += 1
        x = cursor_x
        cursor_x += width * (1.0 + 0.1 * rng.random())
        return x, row * row_height, row

    units: list[list[Instance]] = [
        [link.inst for link in chain.links] for chain in chains
    ]
    passives = sorted(
        (inst for inst in circuit.instances() if not dev.is_mos(inst.device_type)),
        key=lambda inst: inst.name,
    )
    units.extend([inst] for inst in passives)

    for index in _connectivity_order(circuit, units):
        for inst in units[index]:
            if dev.is_mos(inst.device_type):
                width, height = device_footprint(inst, tech)
            else:
                width, height = _passive_footprint(inst, tech)
            x, y, r = advance(width, height)
            placement.devices[inst.name] = PlacedDevice(
                inst.name, x, y, width, height, r
            )

    placement.num_rows = row + 1
    placement.die_width = tech.row_width
    placement.die_height = placement.num_rows * row_height
    return placement
