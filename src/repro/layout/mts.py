"""Maximal-transistor-series (MTS) / diffusion-sharing analysis.

The previous-generation flow the paper describes (Yoshida et al., DAC'04)
required designers to identify MTS groups by hand; here we compute them
structurally.  Two MOSFETs can share (abut) a diffusion region when they

* are the same device type (thin vs thick gate) and polarity,
* have the same fin count (equal diffusion height),
* share a bulk net, and
* share a *signal* source/drain net through which the layout merges them —
  series stacks, differential pairs, cascodes.  Rail-connected devices are
  packed by the placer but keep their own diffusion (dummy-poly isolation),
  which matches how MTS is defined in the paper's prior-work reference
  (Yoshida et al., DAC'04: *maximal transistor series*).

Each device has two diffusion ends, so a shared net joins at most two
devices into a chain; the algorithm below builds maximal chains greedily in
deterministic (name-sorted) order, mirroring how a router/placer would pack
a diffusion row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits import devices as dev
from repro.circuits.netlist import Circuit, Instance, is_supply_name


def _sharing_key(inst: Instance) -> tuple:
    return (
        inst.device_type,
        inst.param("TYPE"),
        inst.param("NFIN"),
        inst.net_of("bulk"),
    )


@dataclass
class ChainLink:
    """One transistor's position inside a diffusion chain.

    ``left_shared``/``right_shared`` say whether the leftmost/rightmost
    diffusion of this device abuts a neighbouring device.
    """

    inst: Instance
    left_shared: bool = False
    right_shared: bool = False


@dataclass
class DiffusionChain:
    """A maximal run of diffusion-sharing transistors."""

    links: list[ChainLink] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.links)

    def total_fingers(self) -> int:
        return sum(int(link.inst.param("NF")) for link in self.links)


#: Row capacity: a diffusion strip cannot run longer than a placement row,
#: so chains are broken after this many devices.
MAX_CHAIN_LENGTH = 16


def find_diffusion_chains(
    circuit: Circuit, max_chain_length: int = MAX_CHAIN_LENGTH
) -> list[DiffusionChain]:
    """Group the circuit's MOSFETs into maximal diffusion-sharing chains.

    Returns one :class:`DiffusionChain` per group (singletons included), in
    deterministic order.  Every MOSFET appears in exactly one chain.  Chains
    are capped at *max_chain_length* devices (diffusion strips cannot exceed
    the placement row).
    """
    mosfets = sorted(
        (inst for inst in circuit.instances() if dev.is_mos(inst.device_type)),
        key=lambda inst: inst.name,
    )
    # Bucket compatible devices by *signal* S/D net so we can find abutment
    # partners; rail nets (vdd/vss) do not merge diffusion.
    by_key_and_net: dict[tuple, dict[str, list[Instance]]] = {}
    for inst in mosfets:
        key = _sharing_key(inst)
        buckets = by_key_and_net.setdefault(key, {})
        for terminal in ("source", "drain"):
            net_name = inst.net_of(terminal)
            if is_supply_name(net_name):
                continue
            buckets.setdefault(net_name, []).append(inst)

    used: set[str] = set()
    chains: list[DiffusionChain] = []
    for inst in mosfets:
        if inst.name in used:
            continue
        chain = DiffusionChain(links=[ChainLink(inst)])
        used.add(inst.name)
        key = _sharing_key(inst)
        buckets = by_key_and_net[key]

        # Extend to the right from the chain's last device, then to the left
        # from the first, always through an S/D net shared with an unused
        # compatible device.
        def partner(of: Instance) -> Instance | None:
            for terminal in ("drain", "source"):
                net = of.net_of(terminal)
                for candidate in buckets.get(net, ()):
                    if candidate.name != of.name and candidate.name not in used:
                        return candidate
            return None

        while chain.length < max_chain_length:
            nxt = partner(chain.links[-1].inst)
            if nxt is None:
                break
            chain.links[-1].right_shared = True
            chain.links.append(ChainLink(nxt, left_shared=True))
            used.add(nxt.name)
        while chain.length < max_chain_length:
            prv = partner(chain.links[0].inst)
            if prv is None:
                break
            chain.links[0].left_shared = True
            chain.links.insert(0, ChainLink(prv, right_shared=True))
            used.add(prv.name)
        chains.append(chain)
    return chains


def sharing_summary(chains: list[DiffusionChain]) -> dict[str, int]:
    """Counters for reporting/testing: devices, chains, shared boundaries."""
    shared = sum(
        int(link.left_shared) + int(link.right_shared)
        for chain in chains
        for link in chain.links
    )
    return {
        "devices": sum(chain.length for chain in chains),
        "chains": len(chains),
        "shared_boundaries": shared // 2,
        "longest_chain": max((chain.length for chain in chains), default=0),
    }
