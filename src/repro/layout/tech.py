"""Synthetic sub-10nm process constants used by the layout synthesizer.

One place for every geometric constant so tests and documentation can refer
to them.  Values are loosely modelled on published 7nm-class numbers; the
absolute scale is irrelevant to the learning problem (only the structural
dependence of targets on the schematic matters).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Process geometry and parasitic coefficients.

    Attributes
    ----------
    fin_pitch:
        Fin-to-fin spacing; device width = NFIN * fin_pitch.
    poly_pitch:
        Contacted poly pitch (CPP); one finger occupies one CPP.
    diff_end:
        Length of an *unshared* (outer) source/drain diffusion region.
    diff_inner:
        Length of a diffusion region between two gates (shared or internal).
    cell_height:
        Placement row height.
    row_width:
        Target placement row width before wrapping to a new row.
    cap_per_length:
        Wire capacitance per metre (area + fringe lumped).
    gate_cap_per_fin:
        Gate pin capacitance per fin per finger.
    sd_cap_per_fin:
        Source/drain pin capacitance per fin per finger.
    pin_cap_passive:
        Pin capacitance of passive-device terminals (R/C/diode/BJT).
    thick_cap_scale:
        Multiplier on thick-gate pin capacitances (bigger devices).
    """

    fin_pitch: float = 30e-9
    poly_pitch: float = 54e-9
    diff_end: float = 90e-9
    diff_inner: float = 54e-9
    cell_height: float = 240e-9
    row_width: float = 6e-6
    cap_per_length: float = 0.20e-15 / 1e-6  # 0.2 fF/um
    gate_cap_per_fin: float = 0.012e-15
    sd_cap_per_fin: float = 0.008e-15
    pin_cap_passive: float = 0.12e-15
    cap_value_fraction: float = 0.08  # parasitic fraction of explicit C value
    thick_cap_scale: float = 2.2

    # Wire resistance (paper future work: net parasitic resistances).
    res_per_length: float = 40.0 / 1e-6  # 40 ohm/um thin-metal trace
    via_resistance: float = 4.0  # per connected pin

    # Layout-uncertainty noise levels (lognormal sigma), per target family.
    noise_cap: float = 0.10
    noise_geometry: float = 0.05
    noise_lod: float = 0.50
    noise_well: float = 0.60


#: Default technology instance used across the library.
DEFAULT_TECH = Technology()


def corner(name: str, base: Technology = DEFAULT_TECH) -> Technology:
    """Return a process-corner variant of *base*.

    Corners scale the parasitic coefficients the way RC extraction corners
    do: ``cmax`` (+15% caps, +20% resistance), ``cmin`` (-15% / -20%),
    ``typ`` (unchanged).  Used for robustness experiments: a model trained
    on typical ground truth evaluated against corner ground truth.

    Raises
    ------
    ValueError
        For unknown corner names.
    """
    import dataclasses

    scales = {
        "typ": (1.0, 1.0),
        "cmax": (1.15, 1.20),
        "cmin": (0.85, 0.80),
    }
    if name not in scales:
        raise ValueError(f"unknown corner {name!r}; choose from {sorted(scales)}")
    cap_scale, res_scale = scales[name]
    return dataclasses.replace(
        base,
        cap_per_length=base.cap_per_length * cap_scale,
        gate_cap_per_fin=base.gate_cap_per_fin * cap_scale,
        sd_cap_per_fin=base.sd_cap_per_fin * cap_scale,
        pin_cap_passive=base.pin_cap_passive * cap_scale,
        res_per_length=base.res_per_length * res_scale,
        via_resistance=base.via_resistance * res_scale,
    )
