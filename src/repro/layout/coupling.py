"""Coupling-capacitance extraction.

The lumped per-net CAP of :mod:`repro.layout.parasitics` folds all wire
capacitance to ground.  Real extraction decomposes it: a fraction of each
net's wire capacitance couples to *neighbouring* nets (same routing region)
rather than to ground.  This module produces that decomposition — pairwise
coupling values whose per-net sums are consistent with the lumped CAP —
so the simulator can model Miller/crosstalk effects.

The lumped CAP targets (and therefore all paper experiments) are unchanged;
coupling is an additional view used by the RC/coupling-aware simulation
extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.netlist import Circuit
from repro.layout.placement import Placement
from repro.layout.tech import Technology

#: Fraction of a net's wire capacitance that couples to neighbours.
COUPLING_FRACTION = 0.35
#: How many nearest neighbour nets share a net's coupling budget.
MAX_NEIGHBOURS = 3


@dataclass
class CouplingResult:
    """Pairwise coupling capacitances (symmetric, keyed by sorted pair)."""

    pairs: dict[tuple[str, str], float] = field(default_factory=dict)

    def coupling_of(self, net_a: str, net_b: str) -> float:
        key = (net_a, net_b) if net_a <= net_b else (net_b, net_a)
        return self.pairs.get(key, 0.0)

    def total_coupling(self, net: str) -> float:
        """Sum of this net's couplings to all neighbours."""
        return sum(
            value for (a, b), value in self.pairs.items() if net in (a, b)
        )

    def neighbours(self, net: str) -> list[tuple[str, float]]:
        """(other_net, coupling) pairs for one net, strongest first."""
        out = [
            (b if a == net else a, value)
            for (a, b), value in self.pairs.items()
            if net in (a, b)
        ]
        out.sort(key=lambda item: -item[1])
        return out


def _net_centers(circuit: Circuit, placement: Placement) -> dict[str, np.ndarray]:
    centers: dict[str, np.ndarray] = {}
    for net in circuit.signal_nets():
        pins = [
            placement.position_of(inst.name)
            for inst, _terminal in circuit.instances_on_net(net.name)
        ]
        if pins:
            centers[net.name] = np.asarray(pins).mean(axis=0)
    return centers


def extract_coupling(
    circuit: Circuit,
    placement: Placement,
    lengths: dict[str, float],
    tech: Technology,
    coupling_fraction: float = COUPLING_FRACTION,
    max_neighbours: int = MAX_NEIGHBOURS,
) -> CouplingResult:
    """Distribute each net's coupling budget over its nearest neighbours.

    The budget is ``coupling_fraction x wire cap`` (length x per-length
    coefficient); weights fall off as 1/(distance + pitch).  Deterministic.
    """
    centers = _net_centers(circuit, placement)
    names = sorted(centers)
    result = CouplingResult()
    if len(names) < 2:
        return result
    coords = np.asarray([centers[n] for n in names])
    for i, net in enumerate(names):
        budget = coupling_fraction * lengths.get(net, 0.0) * tech.cap_per_length
        if budget <= 0:
            continue
        distances = np.linalg.norm(coords - coords[i], axis=1)
        distances[i] = np.inf
        order = np.argsort(distances)[:max_neighbours]
        weights = 1.0 / (distances[order] + tech.poly_pitch)
        weights = weights / weights.sum()
        for j, weight in zip(order, weights):
            other = names[j]
            key = (net, other) if net <= other else (other, net)
            # halved because both endpoints contribute a budget share
            result.pairs[key] = result.pairs.get(key, 0.0) + 0.5 * budget * weight
    return result


def ground_cap_after_coupling(
    net_caps: dict[str, float], coupling: CouplingResult
) -> dict[str, float]:
    """Grounded remainder of each net's lumped CAP after coupling split.

    Guaranteed non-negative; together with the pairwise couplings this
    preserves each net's total capacitance budget.
    """
    return {
        net: max(total - coupling.total_coupling(net), 0.0)
        for net, total in net_caps.items()
    }
