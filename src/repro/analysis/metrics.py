"""Prediction-quality metrics: R², MAE, MAPE, error-range histograms.

These are the three statistical measurements of paper §V plus the Table V
error-range binning.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def _pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()  # staticcheck: ignore[precision-policy] -- metrics accumulate in float64 for stable statistics regardless of model dtype
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()  # staticcheck: ignore[precision-policy] -- metrics accumulate in float64 for stable statistics regardless of model dtype
    if y_true.shape != y_pred.shape:
        raise ReproError(
            f"metric inputs disagree: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ReproError("metric inputs are empty")
    return y_true, y_pred


def r_squared(y_true, y_pred) -> float:
    """Coefficient of determination (1 is perfect; can be negative)."""
    y_true, y_pred = _pair(y_true, y_pred)
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def mae(y_true, y_pred) -> float:
    """Mean absolute error."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.abs(y_true - y_pred).mean())


def mape(y_true, y_pred, eps: float = 0.0) -> float:
    """Mean absolute percentage error, as a fraction (0.15 = 15%).

    ``eps`` guards against division by zero for targets that may be 0.
    """
    y_true, y_pred = _pair(y_true, y_pred)
    denom = np.maximum(np.abs(y_true), eps)
    if (denom == 0).any():
        raise ReproError("mape undefined: zero ground-truth values (set eps)")
    return float((np.abs(y_true - y_pred) / denom).mean())


#: Table V error-range bin edges (fractions).
ERROR_BINS = (0.10, 0.20, 0.30, 0.40, 0.50)
ERROR_BIN_LABELS = ("< 10%", "10%-20%", "20%-30%", "30%-40%", "40%-50%", "> 50%")


def error_range_histogram(relative_errors) -> dict[str, int]:
    """Bin absolute relative errors into the paper's Table V ranges."""
    errors = np.abs(np.asarray(relative_errors, dtype=np.float64).ravel())  # staticcheck: ignore[precision-policy] -- metrics accumulate in float64 for stable statistics regardless of model dtype
    counts = dict.fromkeys(ERROR_BIN_LABELS, 0)
    for err in errors:
        for edge, label in zip(ERROR_BINS, ERROR_BIN_LABELS):
            if err < edge:
                counts[label] += 1
                break
        else:
            counts["> 50%"] += 1
    return counts


def geometric_mean_error(relative_errors, floor: float = 1e-6) -> float:
    """Geometric mean of absolute relative errors (Table V bottom row)."""
    errors = np.maximum(np.abs(np.asarray(relative_errors, dtype=np.float64)), floor)  # staticcheck: ignore[precision-policy] -- metrics accumulate in float64 for stable statistics regardless of model dtype
    if errors.size == 0:
        raise ReproError("geometric mean of empty error list")
    return float(np.exp(np.log(errors).mean()))


def summarize(y_true, y_pred, mape_eps: float = 0.0) -> dict[str, float]:
    """R²/MAE/MAPE in one call."""
    return {
        "r2": r_squared(y_true, y_pred),
        "mae": mae(y_true, y_pred),
        "mape": mape(y_true, y_pred, eps=mape_eps),
    }
