"""Experiment drivers for every table and figure in the paper's evaluation.

Each ``experiment_*`` function reproduces one artefact (Table IV, Fig. 5,
Fig. 6, Fig. 7, Fig. 8, Table V, plus the layer-depth and ingredient
ablations) and returns a structured result with a ``render()`` method that
prints paper-style rows.  Benchmarks in ``benchmarks/`` call these drivers;
the ``PARAGRAPH_BENCH_SCALE`` environment variable scales dataset size and
epoch counts (1.0 = the defaults used for EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import (
    ERROR_BIN_LABELS,
    error_range_histogram,
    geometric_mean_error,
    mape,
    r_squared,
)
from repro.analysis.tables import format_percent, render_table
from repro.analysis.tsne import neighborhood_label_agreement, tsne
from repro.circuits.devices import DEVICE_TYPES
from repro.data import build_bundle, target_by_name
from repro.data.dataset import DatasetBundle
from repro.ensemble import (
    DEFAULT_MAX_V,
    CapacitanceEnsemble,
    RangeModel,
    train_capacitance_ensemble,
)
from repro.layout import synthesize_layout
from repro.models import BaselinePredictor, TargetPredictor, TrainConfig
from repro.sim import (
    build_testbenches,
    compute_metrics,
    designer_annotations,
    predicted_annotations,
    reference_annotations,
    schematic_annotations,
)
from repro.units import to_femto


@dataclass
class ExperimentConfig:
    """Scaled experiment knobs.

    ``from_env`` multiplies the defaults by ``PARAGRAPH_BENCH_SCALE``
    (smaller = faster, 1.0 = EXPERIMENTS.md settings).
    """

    dataset_seed: int = 0
    dataset_scale: float = 0.35
    epochs: int = 60
    runs: int = 1
    fig6_targets: tuple[str, ...] = ("CAP", "LDE1", "LDE5", "SA")
    fig6_epochs: int = 60

    @classmethod
    def from_env(cls) -> "ExperimentConfig":
        scale = float(os.environ.get("PARAGRAPH_BENCH_SCALE", "1.0"))
        cfg = cls()
        cfg.dataset_scale = max(0.05, cfg.dataset_scale * scale)
        cfg.epochs = max(5, int(round(cfg.epochs * scale)))
        cfg.fig6_epochs = max(5, int(round(cfg.fig6_epochs * scale)))
        return cfg


def load_bundle(config: ExperimentConfig) -> DatasetBundle:
    """Build the dataset bundle for an experiment configuration."""
    return build_bundle(seed=config.dataset_seed, scale=config.dataset_scale)


# ----------------------------------------------------------------------
# Table IV — dataset distribution
# ----------------------------------------------------------------------
@dataclass
class Table4Result:
    rows: list[dict] = field(default_factory=list)

    def render(self) -> str:
        headers = ["circuit", "#net", "#tran", "#tran_th", "res", "cap", "bjt", "dio"]
        order = ["net", *DEVICE_TYPES]
        body = [[row["circuit"], *[row[k] for k in order]] for row in self.rows]
        return render_table(headers, body, title="Table IV: dataset distribution")


def experiment_table4(config: ExperimentConfig, bundle: DatasetBundle | None = None) -> Table4Result:
    """Device/net distribution of the generated dataset (paper Table IV)."""
    bundle = bundle or load_bundle(config)
    return Table4Result(rows=bundle.table4())


# ----------------------------------------------------------------------
# Fig. 5 + §IV — max_v range models and the ensemble
# ----------------------------------------------------------------------
#: Ground-truth decades used to bucket CAP accuracy, in farads.
CAP_DECADES = ((0.0, 1e-15), (1e-15, 1e-14), (1e-14, 1e-13), (1e-13, float("inf")))
CAP_DECADE_LABELS = ("<1fF", "1-10fF", "10-100fF", ">100fF")


@dataclass
class Fig5Result:
    model_rows: list[dict] = field(default_factory=list)  # one per max_v model
    ensemble_row: dict = field(default_factory=dict)

    def render(self) -> str:
        headers = ["model", "MAE(fF)", "MAPE", *CAP_DECADE_LABELS]
        body = []
        for row in [*self.model_rows, self.ensemble_row]:
            body.append(
                [
                    row["name"],
                    f"{to_femto(row['mae']):.3f}",
                    format_percent(row["mape"]),
                    *[
                        format_percent(row["decade_mape"][label])
                        if row["decade_mape"][label] == row["decade_mape"][label]
                        else "-"
                        for label in CAP_DECADE_LABELS
                    ],
                ]
            )
        return render_table(
            headers, body,
            title="Fig. 5 / SIV: CAP models per max_v (per-decade MAPE) and ensemble",
        )


def _decade_mapes(truth: np.ndarray, pred: np.ndarray) -> dict[str, float]:
    out = {}
    for (lo, hi), label in zip(CAP_DECADES, CAP_DECADE_LABELS):
        mask = (truth >= lo) & (truth < hi)
        if mask.sum() == 0:
            out[label] = float("nan")
        else:
            out[label] = mape(truth[mask], pred[mask])
    return out


def experiment_fig5(
    config: ExperimentConfig, bundle: DatasetBundle | None = None, conv: str = "paragraph"
) -> Fig5Result:
    """Train the §IV range models, evaluate per decade, and run Algorithm 2."""
    bundle = bundle or load_bundle(config)
    test_records = bundle.records("test")
    train_cfg = TrainConfig(epochs=config.epochs, run_seed=config.dataset_seed)
    ensemble = train_capacitance_ensemble(
        bundle, conv=conv, max_vs=DEFAULT_MAX_V, config=train_cfg
    )
    result = Fig5Result()
    for member in ensemble.models:
        truth, pred = _collect_predictor(member.predictor, test_records)
        label = (
            "full-range"
            if member.max_v == float("inf")
            else f"{to_femto(member.max_v):g}fF model"
        )
        result.model_rows.append(
            {
                "name": label,
                "mae": float(np.abs(truth - pred).mean()),
                "mape": mape(truth, pred),
                "decade_mape": _decade_mapes(truth, pred),
            }
        )
    truth, pred = ensemble.collect(test_records)
    result.ensemble_row = {
        "name": "ensemble",
        "mae": float(np.abs(truth - pred).mean()),
        "mape": mape(truth, pred),
        "decade_mape": _decade_mapes(truth, pred),
    }
    return result


def _collect_predictor(predictor, records) -> tuple[np.ndarray, np.ndarray]:
    truths, preds = [], []
    for record in records:
        from repro.data.targets import CAP_TARGET

        _, truth = record.target_arrays(CAP_TARGET)
        _, pred = predictor.predict(record)
        truths.append(truth)
        preds.append(pred)
    return np.concatenate(truths), np.concatenate(preds)


# ----------------------------------------------------------------------
# Fig. 6 — model comparison across targets
# ----------------------------------------------------------------------
#: Models in paper Figure 6 order.
FIG6_MODELS = ("linear", "xgb", "gcn", "sage", "rgcn", "gat", "paragraph")


@dataclass
class Fig6Result:
    r2: dict[str, dict[str, float]] = field(default_factory=dict)  # model -> target -> R2
    mae: dict[str, dict[str, float]] = field(default_factory=dict)
    targets: tuple[str, ...] = ()

    def average_r2(self, model: str) -> float:
        return float(np.mean([self.r2[model][t] for t in self.targets]))

    def mae_relative_to_xgb(self, model: str) -> float:
        ratios = [
            self.mae[model][t] / self.mae["xgb"][t]
            for t in self.targets
            if self.mae["xgb"][t] > 0
        ]
        return float(np.mean(ratios))

    def render(self) -> str:
        headers = ["model", *self.targets, "avg R2", "MAE vs XGB"]
        body = []
        for model in self.r2:
            body.append(
                [
                    model,
                    *[f"{self.r2[model][t]:.3f}" for t in self.targets],
                    f"{self.average_r2(model):.3f}",
                    f"{self.mae_relative_to_xgb(model):.2f}x",
                ]
            )
        return render_table(
            headers, body, title="Fig. 6: prediction R2 per model/target"
        )


def experiment_fig6(
    config: ExperimentConfig,
    bundle: DatasetBundle | None = None,
    models: tuple[str, ...] = FIG6_MODELS,
    targets: tuple[str, ...] | None = None,
) -> Fig6Result:
    """R² and MAE of every model on every target (single 10 fF CAP model,
    as the paper uses for the unbiased comparison)."""
    bundle = bundle or load_bundle(config)
    targets = targets or config.fig6_targets
    test_records = bundle.records("test")
    result = Fig6Result(targets=tuple(targets))
    cap_max_v = 10e-15  # paper: "A single net parasitic capacitance model max_v=10fF"
    for model in models:
        result.r2[model] = {}
        result.mae[model] = {}
        for target in targets:
            r2_runs, mae_runs = [], []
            for run in range(config.runs):
                predictor = _make_predictor(
                    model, target, config, run, cap_max_v
                )
                _fit_predictor(predictor, bundle)
                truth, pred = predictor.collect(test_records)
                keep = truth <= cap_max_v if target == "CAP" else np.ones(len(truth), bool)
                r2_runs.append(r_squared(truth[keep], pred[keep]))
                mae_runs.append(float(np.abs(truth[keep] - pred[keep]).mean()))
            result.r2[model][target] = float(np.mean(r2_runs))
            result.mae[model][target] = float(np.mean(mae_runs))
    return result


def _fit_predictor(predictor, bundle):
    """Fit any predictor without tripping the ``fit`` deprecation shim.

    GNN predictors expose the quiet engine entry point (``_fit_quiet``);
    baselines keep a plain, non-deprecated ``fit``.
    """
    quiet = getattr(predictor, "_fit_quiet", None)
    return quiet(bundle) if quiet is not None else predictor.fit(bundle)


def _make_predictor(model: str, target: str, config: ExperimentConfig, run: int, cap_max_v: float):
    max_v = cap_max_v if target == "CAP" else None
    if model in ("linear", "xgb"):
        return BaselinePredictor(
            kind=model, target=target, max_v=max_v, seed=config.dataset_seed + run
        )
    return TargetPredictor(
        conv=model,
        target=target,
        config=TrainConfig(
            epochs=config.fig6_epochs,
            run_seed=config.dataset_seed + run,
            max_v=max_v,
        ),
    )


# ----------------------------------------------------------------------
# Fig. 7 — prediction vs ground truth for CAP, LDE1, LDE5, SA
# ----------------------------------------------------------------------
@dataclass
class Fig7Result:
    rows: list[dict] = field(default_factory=list)

    def render(self) -> str:
        headers = ["target", "R2", "MAPE", "n"]
        body = [
            [row["target"], f"{row['r2']:.3f}", format_percent(row["mape"]), row["n"]]
            for row in self.rows
        ]
        return render_table(
            headers, body, title="Fig. 7: ParaGraph prediction vs ground truth"
        )


def experiment_fig7(
    config: ExperimentConfig,
    bundle: DatasetBundle | None = None,
    targets: tuple[str, ...] = ("CAP", "LDE1", "LDE5", "SA"),
) -> Fig7Result:
    """ParaGraph scatter statistics for the Figure 7 targets.

    CAP uses the SIV ensemble (the paper's quoted 15.0% MAPE is the
    ensemble's); device parameters use single models.
    """
    bundle = bundle or load_bundle(config)
    test_records = bundle.records("test")
    result = Fig7Result()
    for target in targets:
        if target == "CAP":
            ensemble = train_capacitance_ensemble(
                bundle,
                config=TrainConfig(
                    epochs=config.epochs, run_seed=config.dataset_seed
                ),
            )
            truth, pred = ensemble.collect(test_records)
        else:
            predictor = TargetPredictor(
                "paragraph", target,
                TrainConfig(epochs=config.epochs, run_seed=config.dataset_seed),
            )
            _fit_predictor(predictor, bundle)
            truth, pred = predictor.collect(test_records)
        result.rows.append(
            {
                "target": target,
                "r2": r_squared(truth, pred),
                "mape": mape(truth, pred),
                "n": len(truth),
            }
        )
    return result


# ----------------------------------------------------------------------
# Fig. 8 — t-SNE of net embeddings
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    rows: list[dict] = field(default_factory=list)
    embeddings: dict[str, np.ndarray] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["circuit", "nets", "label agreement"]
        body = [
            [row["circuit"], row["n"], f"{row['agreement']:.3f}"]
            for row in self.rows
        ]
        return render_table(
            headers, body,
            title="Fig. 8: t-SNE neighbourhood label agreement (0=none, ->1=separated)",
        )


def experiment_fig8(
    config: ExperimentConfig,
    bundle: DatasetBundle | None = None,
    predictor: TargetPredictor | None = None,
) -> Fig8Result:
    """t-SNE of the CAP model's net embeddings per test circuit (max_v=10fF)."""
    bundle = bundle or load_bundle(config)
    if predictor is None:
        predictor = TargetPredictor(
            "paragraph", "CAP",
            TrainConfig(epochs=config.epochs, run_seed=config.dataset_seed, max_v=10e-15),
        )
        _fit_predictor(predictor, bundle)
    result = Fig8Result()
    for record in bundle.records("test"):
        ids, embedding = predictor.embed_record(record)
        _, truth = record.target_arrays(target_by_name("CAP"))
        if len(ids) < 12:
            continue
        coords = tsne(embedding, perplexity=20.0, n_iter=250, seed=config.dataset_seed)
        agreement = neighborhood_label_agreement(
            coords, np.log10(np.maximum(truth, 1e-18))
        )
        result.embeddings[record.name] = coords
        result.rows.append(
            {"circuit": record.name, "n": len(ids), "agreement": agreement}
        )
    return result


# ----------------------------------------------------------------------
# Table V — simulation errors under annotation modes
# ----------------------------------------------------------------------
TABLE5_MODES = ("schematic", "designer", "xgb", "paragraph")


@dataclass
class Table5Result:
    histograms: dict[str, dict[str, int]] = field(default_factory=dict)
    means: dict[str, float] = field(default_factory=dict)
    gmeans: dict[str, float] = field(default_factory=dict)
    per_metric: dict[str, dict[str, float]] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["error range", *TABLE5_MODES]
        body = []
        for label in ERROR_BIN_LABELS:
            body.append([label, *[self.histograms[m].get(label, 0) for m in TABLE5_MODES]])
        body.append(["Mean", *[format_percent(self.means[m]) for m in TABLE5_MODES]])
        body.append(
            ["Geometric Mean", *[format_percent(self.gmeans[m]) for m in TABLE5_MODES]]
        )
        return render_table(
            headers, body,
            title="Table V: simulation errors vs post-layout on 67 circuit metrics",
        )


def experiment_table5(
    config: ExperimentConfig,
    bundle: DatasetBundle | None = None,
    layout_seed: int = 11,
) -> Table5Result:
    """The Table V flow: annotate, simulate, compare against post-layout.

    ParaGraph mode uses the §IV ensemble for CAP plus SA/DA device models;
    XGBoost mode uses GBDT models for the same quantities.
    """
    from repro.data.dataset import CircuitRecord
    from repro.graph.builder import build_graph

    bundle = bundle or load_bundle(config)
    train_cfg = TrainConfig(epochs=config.epochs, run_seed=config.dataset_seed)

    ensemble = train_capacitance_ensemble(bundle, config=train_cfg)
    pg_sa = TargetPredictor("paragraph", "SA", train_cfg)._fit_quiet(bundle)
    pg_da = TargetPredictor("paragraph", "DA", train_cfg)._fit_quiet(bundle)
    xgb_cap = BaselinePredictor("xgb", "CAP", seed=config.dataset_seed).fit(bundle)
    xgb_sa = BaselinePredictor("xgb", "SA", seed=config.dataset_seed).fit(bundle)
    xgb_da = BaselinePredictor("xgb", "DA", seed=config.dataset_seed).fit(bundle)

    benches = build_testbenches()
    result = Table5Result()
    errors: dict[str, list[float]] = {mode: [] for mode in TABLE5_MODES}

    for bench in benches:
        layout = synthesize_layout(bench.circuit, seed=layout_seed)
        record = CircuitRecord(
            name=bench.name,
            circuit=bench.circuit,
            graph=build_graph(bench.circuit),
            layout=layout,
        )
        reference = compute_metrics(bench, reference_annotations(layout))
        annotations = {
            "schematic": schematic_annotations(bench.circuit),
            "designer": designer_annotations(bench.circuit),
            "xgb": predicted_annotations(
                xgb_cap.predict_named(record),
                xgb_sa.predict_named(record),
                xgb_da.predict_named(record),
            ),
            "paragraph": predicted_annotations(
                ensemble.predict_named(record),
                pg_sa.predict_named(record),
                pg_da.predict_named(record),
            ),
        }
        for mode in TABLE5_MODES:
            values = compute_metrics(bench, annotations[mode])
            for metric, value in values.items():
                ref = reference[metric]
                if ref == 0:
                    continue
                # Cap at 1000%: a linearized simulation of a regenerative
                # circuit without load caps can run away; a real circuit
                # (and the paper's ">100%" rows) saturates.
                err = min(abs(value - ref) / abs(ref), 10.0)
                errors[mode].append(err)
                result.per_metric.setdefault(f"{bench.name}/{metric}", {})[mode] = err

    for mode in TABLE5_MODES:
        errs = np.asarray(errors[mode])
        result.histograms[mode] = error_range_histogram(errs)
        result.means[mode] = float(errs.mean())
        result.gmeans[mode] = geometric_mean_error(errs, floor=1e-4)
    return result


# ----------------------------------------------------------------------
# Ablations — layer depth sweep and ParaGraph ingredients
# ----------------------------------------------------------------------
@dataclass
class AblationResult:
    rows: list[dict] = field(default_factory=list)
    title: str = "Ablation"

    def render(self) -> str:
        headers = ["variant", "R2", "MAPE"]
        body = [
            [row["variant"], f"{row['r2']:.3f}", format_percent(row["mape"])]
            for row in self.rows
        ]
        return render_table(headers, body, title=self.title)


def experiment_layer_sweep(
    config: ExperimentConfig,
    bundle: DatasetBundle | None = None,
    depths: tuple[int, ...] = (1, 2, 3, 5, 6),
) -> AblationResult:
    """CAP accuracy vs layer depth (paper: plateaus at L=5)."""
    bundle = bundle or load_bundle(config)
    test_records = bundle.records("test")
    result = AblationResult(title="Layer-depth sweep (CAP, max_v=10fF)")
    for depth in depths:
        predictor = TargetPredictor(
            "paragraph", "CAP",
            TrainConfig(
                epochs=config.epochs, run_seed=config.dataset_seed,
                num_layers=depth, max_v=10e-15,
            ),
        )
        _fit_predictor(predictor, bundle)
        truth, pred = predictor.collect(test_records)
        keep = truth <= 10e-15
        result.rows.append(
            {
                "variant": f"L={depth}",
                "r2": r_squared(truth[keep], pred[keep]),
                "mape": mape(truth[keep], pred[keep]),
            }
        )
    return result


def experiment_attention_heads(
    config: ExperimentConfig,
    bundle: DatasetBundle | None = None,
    heads: tuple[int, ...] = (1, 2, 4),
) -> AblationResult:
    """Multi-head attention sweep (paper §V: more heads expected to help).

    The paper was GPU-memory-bound to one head; we sweep 1/2/4 heads on the
    CAP model.
    """
    bundle = bundle or load_bundle(config)
    test_records = bundle.records("test")
    result = AblationResult(title="Attention-head sweep (CAP, max_v=10fF)")
    for n_heads in heads:
        predictor = TargetPredictor(
            "paragraph", "CAP",
            TrainConfig(
                epochs=config.epochs, run_seed=config.dataset_seed,
                max_v=10e-15, conv_kwargs={"num_heads": n_heads},
            ),
        )
        _fit_predictor(predictor, bundle)
        truth, pred = predictor.collect(test_records)
        keep = truth <= 10e-15
        result.rows.append(
            {
                "variant": f"heads={n_heads}",
                "r2": r_squared(truth[keep], pred[keep]),
                "mape": mape(truth[keep], pred[keep]),
            }
        )
    return result


def experiment_resistance(
    config: ExperimentConfig,
    bundle: DatasetBundle | None = None,
) -> AblationResult:
    """Net trace-resistance prediction (paper §VI future work, built here).

    Trains ParaGraph and the XGBoost baseline on the RES target and reports
    held-out accuracy.  Expected shape: same ordering as CAP (the GNN wins),
    since RES shares CAP's structural drivers (routed length, fanout).
    """
    bundle = bundle or load_bundle(config)
    test_records = bundle.records("test")
    result = AblationResult(
        title="Extension: net resistance prediction (RES; R2 in log space)"
    )
    predictors = {
        "paragraph": TargetPredictor(
            "paragraph", "RES",
            TrainConfig(epochs=config.epochs, run_seed=config.dataset_seed),
        ),
        "xgb": BaselinePredictor("xgb", "RES", seed=config.dataset_seed),
        "linear": BaselinePredictor("linear", "RES", seed=config.dataset_seed),
    }
    for name, predictor in predictors.items():
        _fit_predictor(predictor, bundle)
        truth, pred = predictor.collect(test_records)
        # RES spans decades and its largest values (longest wires) are the
        # least predictable for every model; log-space R2 measures the
        # relative accuracy that matters for RC delay estimation.
        log_truth = np.log10(np.maximum(truth, 1e-3))
        log_pred = np.log10(np.maximum(pred, 1e-3))
        result.rows.append(
            {
                "variant": name,
                "r2": r_squared(log_truth, log_pred),
                "mape": mape(truth, pred),
            }
        )
    return result


def experiment_corner_robustness(
    config: ExperimentConfig,
    bundle: DatasetBundle | None = None,
    corners: tuple[str, ...] = ("typ", "cmin", "cmax"),
) -> AblationResult:
    """Corner robustness: train at typical, evaluate against corner truth.

    Extraction corners scale parasitic coefficients +-15-20%; a useful
    predictor should degrade gracefully (errors shift by roughly the corner
    skew, not collapse).
    """
    from repro.data.dataset import build_bundle as build
    from repro.layout.tech import corner as make_corner

    bundle = bundle or load_bundle(config)
    predictor = TargetPredictor(
        "paragraph", "CAP",
        TrainConfig(epochs=config.epochs, run_seed=config.dataset_seed),
    )
    predictor._fit_quiet(bundle)
    result = AblationResult(
        title="Corner robustness (CAP model trained at typ)"
    )
    for name in corners:
        corner_bundle = build(
            seed=config.dataset_seed,
            scale=config.dataset_scale,
            tech=make_corner(name),
        )
        truth, pred = predictor.collect(corner_bundle.records("test"))
        result.rows.append(
            {
                "variant": name,
                "r2": r_squared(truth, pred),
                "mape": mape(truth, pred),
            }
        )
    return result


#: ParaGraph ingredient ablations: kwargs passed to ParaGraphConv.
INGREDIENT_VARIANTS = {
    "paragraph (full)": {},
    "no attention": {"use_attention": False},
    "no edge-type grouping": {"group_edge_types": False},
    "no concat skip": {"concat_skip": False},
}


def experiment_ingredients(
    config: ExperimentConfig,
    bundle: DatasetBundle | None = None,
    target: str = "CAP",
) -> AblationResult:
    """Disable one ParaGraph ingredient at a time (design-choice ablation)."""
    bundle = bundle or load_bundle(config)
    test_records = bundle.records("test")
    max_v = 10e-15 if target == "CAP" else None
    result = AblationResult(title=f"ParaGraph ingredient ablation ({target})")
    for name, kwargs in INGREDIENT_VARIANTS.items():
        predictor = TargetPredictor(
            "paragraph", target,
            TrainConfig(
                epochs=config.epochs, run_seed=config.dataset_seed,
                max_v=max_v, conv_kwargs=dict(kwargs),
            ),
        )
        _fit_predictor(predictor, bundle)
        truth, pred = predictor.collect(test_records)
        keep = truth <= max_v if max_v else np.ones(len(truth), bool)
        result.rows.append(
            {
                "variant": name,
                "r2": r_squared(truth[keep], pred[keep]),
                "mape": mape(truth[keep], pred[keep]),
            }
        )
    return result
