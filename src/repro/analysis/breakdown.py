"""Error breakdown: where does a predictor do well or badly?

Buckets per-net prediction errors by fanout and by ground-truth magnitude —
the two axes the paper discusses (§V: "prediction errors are generally
worse for those larger parasitics").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import format_percent, render_table
from repro.errors import ReproError

#: Fanout buckets for the breakdown.
FANOUT_BUCKETS = ((1, 2), (3, 4), (5, 8), (9, 10**9))
FANOUT_LABELS = ("1-2", "3-4", "5-8", ">8")


@dataclass
class ErrorBreakdown:
    """Bucketed relative-error statistics."""

    by_fanout: dict[str, dict[str, float]] = field(default_factory=dict)
    by_magnitude: dict[str, dict[str, float]] = field(default_factory=dict)

    def render(self) -> str:
        sections = []
        for title, table in (
            ("by fanout", self.by_fanout),
            ("by ground-truth magnitude", self.by_magnitude),
        ):
            rows = [
                [label, stats["n"], format_percent(stats["mape"]),
                 format_percent(stats["median"])]
                for label, stats in table.items()
                if stats["n"]
            ]
            sections.append(
                render_table(
                    ["bucket", "n", "MAPE", "median |err|"], rows,
                    title=f"Error breakdown {title}",
                )
            )
        return "\n\n".join(sections)


def _bucket_stats(errors: np.ndarray) -> dict[str, float]:
    if errors.size == 0:
        return {"n": 0, "mape": float("nan"), "median": float("nan")}
    return {
        "n": int(errors.size),
        "mape": float(errors.mean()),
        "median": float(np.median(errors)),
    }


def error_breakdown(
    truth: np.ndarray,
    prediction: np.ndarray,
    fanout: np.ndarray,
    magnitude_edges: tuple[float, ...] = (1e-15, 1e-14, 1e-13),
) -> ErrorBreakdown:
    """Bucket |relative error| by fanout and by ground-truth magnitude.

    Raises
    ------
    ReproError
        On length mismatches or non-positive ground truth.
    """
    truth = np.asarray(truth, dtype=np.float64).ravel()  # staticcheck: ignore[precision-policy] -- metrics accumulate in float64 for stable statistics regardless of model dtype
    prediction = np.asarray(prediction, dtype=np.float64).ravel()  # staticcheck: ignore[precision-policy] -- metrics accumulate in float64 for stable statistics regardless of model dtype
    fanout = np.asarray(fanout, dtype=np.int64).ravel()
    if not (len(truth) == len(prediction) == len(fanout)):
        raise ReproError("truth/prediction/fanout length mismatch")
    if (truth <= 0).any():
        raise ReproError("error breakdown needs positive ground truth")
    errors = np.abs(prediction - truth) / truth

    breakdown = ErrorBreakdown()
    for (lo, hi), label in zip(FANOUT_BUCKETS, FANOUT_LABELS):
        mask = (fanout >= lo) & (fanout <= hi)
        breakdown.by_fanout[label] = _bucket_stats(errors[mask])

    edges = (0.0, *magnitude_edges, float("inf"))
    for i in range(len(edges) - 1):
        lo, hi = edges[i], edges[i + 1]
        label = f"[{lo:g}, {hi:g})"
        mask = (truth >= lo) & (truth < hi)
        breakdown.by_magnitude[label] = _bucket_stats(errors[mask])
    return breakdown


def breakdown_for_predictor(predictor, records) -> ErrorBreakdown:
    """Convenience: breakdown of a net-target predictor over records."""
    truths, preds, fanouts = [], [], []
    for record in records:
        ids, truth = record.target_arrays(predictor.spec)
        _, pred = predictor.predict(record)
        truths.append(truth)
        preds.append(pred)
        for node_id in ids:
            net = record.graph.node_name_of[node_id]
            fanouts.append(record.circuit.fanout(net))
    return error_breakdown(
        np.concatenate(truths), np.concatenate(preds), np.asarray(fanouts)
    )
