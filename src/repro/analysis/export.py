"""CSV export of figure data.

The paper's Figures 5, 7 and 8 are scatter plots; this library has no
plotting dependency, so the drivers export the underlying points as CSV for
external plotting (gnuplot, matplotlib, spreadsheets).
"""

from __future__ import annotations

import csv
import os
from typing import Sequence

import numpy as np

from repro.errors import ReproError


def export_scatter(
    path: str | os.PathLike,
    truth: np.ndarray,
    prediction: np.ndarray,
    label: str = "value",
) -> None:
    """Write (ground truth, prediction) pairs as CSV for a Fig. 5/7 plot."""
    truth = np.asarray(truth).ravel()
    prediction = np.asarray(prediction).ravel()
    if truth.shape != prediction.shape:
        raise ReproError("truth/prediction length mismatch")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([f"truth_{label}", f"predicted_{label}"])
        for t, p in zip(truth, prediction):
            writer.writerow([repr(float(t)), repr(float(p))])


def export_embedding(
    path: str | os.PathLike,
    coords: np.ndarray,
    labels: np.ndarray,
    names: Sequence[str] | None = None,
) -> None:
    """Write 2-D t-SNE coordinates + colour labels as CSV (Fig. 8)."""
    coords = np.asarray(coords)
    labels = np.asarray(labels).ravel()
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise ReproError("coords must be (n, 2)")
    if len(coords) != len(labels):
        raise ReproError("coords/labels length mismatch")
    if names is not None and len(names) != len(labels):
        raise ReproError("names length mismatch")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x", "y", "label"] + (["name"] if names is not None else []))
        for i in range(len(labels)):
            row = [repr(float(coords[i, 0])), repr(float(coords[i, 1])),
                   repr(float(labels[i]))]
            if names is not None:
                row.append(names[i])
            writer.writerow(row)


def read_scatter(path: str | os.PathLike) -> tuple[np.ndarray, np.ndarray]:
    """Read back a scatter CSV written by :func:`export_scatter`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        next(reader)  # header
        rows = [(float(a), float(b)) for a, b in reader]
    if not rows:
        return np.empty(0), np.empty(0)
    truth, prediction = zip(*rows)
    return np.asarray(truth), np.asarray(prediction)
