"""Multi-run statistics.

The paper reports "average prediction accuracy across 10 runs"; this module
drives repeated training with different run seeds and aggregates
mean/std per metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ReproError


@dataclass
class RunStatistics:
    """Mean/std/min/max per metric over repeated runs."""

    metrics: dict[str, dict[str, float]] = field(default_factory=dict)
    n_runs: int = 0

    def mean(self, metric: str) -> float:
        return self.metrics[metric]["mean"]

    def std(self, metric: str) -> float:
        return self.metrics[metric]["std"]

    def render(self) -> str:
        lines = [f"{self.n_runs} runs:"]
        for metric, stats in self.metrics.items():
            lines.append(
                f"  {metric}: {stats['mean']:.4g} +- {stats['std']:.4g} "
                f"[{stats['min']:.4g}, {stats['max']:.4g}]"
            )
        return "\n".join(lines)


def aggregate_runs(
    run_fn: Callable[[int], dict[str, float]],
    seeds: list[int],
) -> RunStatistics:
    """Run ``run_fn(seed)`` per seed and aggregate its metric dict.

    Raises
    ------
    ReproError
        If no seeds are given or runs return inconsistent metric keys.
    """
    if not seeds:
        raise ReproError("aggregate_runs needs at least one seed")
    results: list[dict[str, float]] = []
    for seed in seeds:
        outcome = run_fn(seed)
        if results and set(outcome) != set(results[0]):
            raise ReproError("runs returned inconsistent metric keys")
        results.append(outcome)
    stats = RunStatistics(n_runs=len(seeds))
    for metric in results[0]:
        values = np.array([r[metric] for r in results], dtype=np.float64)
        stats.metrics[metric] = {
            "mean": float(values.mean()),
            "std": float(values.std()),
            "min": float(values.min()),
            "max": float(values.max()),
        }
    return stats
