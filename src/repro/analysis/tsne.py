"""Exact t-SNE (van der Maaten & Hinton 2008) in numpy.

Used to reproduce paper Figure 8: embedding net nodes of the capacitance
model and checking that nets with similar ground-truth capacitance cluster
together.  The implementation is the classic exact algorithm (O(n²)), fine
for the few hundred to few thousand net nodes per test circuit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def _pairwise_sq_dists(X: np.ndarray) -> np.ndarray:
    sums = (X**2).sum(axis=1)
    d2 = sums[:, None] + sums[None, :] - 2.0 * (X @ X.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _binary_search_betas(
    d2: np.ndarray, perplexity: float, tol: float = 1e-5, max_iter: int = 50
) -> np.ndarray:
    """Per-point precision (beta) search matching the target perplexity."""
    n = d2.shape[0]
    target_entropy = np.log(perplexity)
    P = np.zeros((n, n))
    for i in range(n):
        beta, beta_min, beta_max = 1.0, -np.inf, np.inf
        row = np.delete(d2[i], i)
        for _ in range(max_iter):
            p = np.exp(-row * beta)
            total = p.sum()
            if total <= 0:
                entropy, p = 0.0, np.zeros_like(p)
            else:
                p = p / total
                entropy = -(p * np.log(np.maximum(p, 1e-300))).sum()
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> increase beta
                beta_min = beta
                beta = beta * 2 if beta_max == np.inf else (beta + beta_max) / 2
            else:
                beta_max = beta
                beta = beta / 2 if beta_min == -np.inf else (beta + beta_min) / 2
        P[i, np.arange(n) != i] = p
    return P


def tsne(
    X: np.ndarray,
    n_components: int = 2,
    perplexity: float = 30.0,
    n_iter: int = 300,
    learning_rate: float = 200.0,
    seed: int = 0,
    early_exaggeration: float = 12.0,
) -> np.ndarray:
    """Embed rows of X into ``n_components`` dimensions.

    Raises
    ------
    ReproError
        If there are fewer than ``3 * perplexity`` points (the conditional
        distributions would be degenerate).
    """
    X = np.asarray(X, dtype=np.float64)
    n = len(X)
    if n < 4:
        raise ReproError("t-SNE needs at least 4 points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    if perplexity < 1.0:
        raise ReproError(f"too few points ({n}) for any sensible perplexity")

    d2 = _pairwise_sq_dists(X)
    P = _binary_search_betas(d2, perplexity)
    P = (P + P.T) / (2.0 * n)
    P = np.maximum(P, 1e-12)

    rng = np.random.default_rng(seed)
    Y = rng.normal(0.0, 1e-4, size=(n, n_components))
    velocity = np.zeros_like(Y)
    gains = np.ones_like(Y)
    exaggeration_end = min(100, n_iter // 4)

    for iteration in range(n_iter):
        p_eff = P * early_exaggeration if iteration < exaggeration_end else P
        dy2 = _pairwise_sq_dists(Y)
        q_num = 1.0 / (1.0 + dy2)
        np.fill_diagonal(q_num, 0.0)
        Q = np.maximum(q_num / q_num.sum(), 1e-12)
        pq = (p_eff - Q) * q_num
        grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ Y)
        momentum = 0.5 if iteration < exaggeration_end else 0.8
        same_sign = np.sign(grad) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - learning_rate * gains * grad
        Y = Y + velocity
        Y = Y - Y.mean(axis=0)
    return Y


def neighborhood_label_agreement(
    embedding: np.ndarray, labels: np.ndarray, k: int = 10
) -> float:
    """How well an embedding separates a continuous label (Fig. 8 check).

    For each point, take its k nearest embedding neighbours and compute the
    mean |label difference|; compare with the same quantity for k random
    points.  Returns ``1 - knn_diff / random_diff``: 0 means no structure,
    values toward 1 mean neighbours share labels (well-separated colours).
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64).ravel()
    n = len(embedding)
    if n != len(labels):
        raise ReproError("embedding/labels length mismatch")
    if n <= k + 1:
        raise ReproError("too few points for the neighbourhood statistic")
    d2 = _pairwise_sq_dists(embedding)
    np.fill_diagonal(d2, np.inf)
    knn = np.argsort(d2, axis=1)[:, :k]
    knn_diff = np.abs(labels[knn] - labels[:, None]).mean()
    rng = np.random.default_rng(0)
    rand = rng.integers(0, n, size=(n, k))
    rand_diff = np.abs(labels[rand] - labels[:, None]).mean()
    if rand_diff == 0:
        return 0.0
    return float(1.0 - knn_diff / rand_diff)
