"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Floats are formatted with 4 significant digits; everything else via str.
    """

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(fraction: float, digits: int = 1) -> str:
    """0.152 -> '15.2%'."""
    return f"{100.0 * fraction:.{digits}f}%"
