"""Analysis utilities: metrics, t-SNE, tables, experiment drivers."""

from repro.analysis.breakdown import (
    ErrorBreakdown,
    breakdown_for_predictor,
    error_breakdown,
)
from repro.analysis.runs import RunStatistics, aggregate_runs
from repro.analysis.metrics import (
    ERROR_BIN_LABELS,
    error_range_histogram,
    geometric_mean_error,
    mae,
    mape,
    r_squared,
    summarize,
)

__all__ = [
    "ErrorBreakdown",
    "breakdown_for_predictor",
    "error_breakdown",
    "RunStatistics",
    "aggregate_runs",
    "ERROR_BIN_LABELS",
    "error_range_histogram",
    "geometric_mean_error",
    "mae",
    "mape",
    "r_squared",
    "summarize",
]
