"""Heterogeneous circuit graphs: structure, features, construction."""

from repro.graph.builder import all_edge_type_names, build_graph
from repro.graph.features import (
    NET_FEATURES,
    device_feature_names,
    device_features,
    feature_dim,
    net_features,
)
from repro.graph.hetero import (
    HeteroGraph,
    edge_type_name,
    merge_graphs,
    reverse_edge_type,
)
from repro.graph.stats import GraphStats, dataset_stats, graph_stats

__all__ = [
    "all_edge_type_names",
    "build_graph",
    "NET_FEATURES",
    "device_feature_names",
    "device_features",
    "feature_dim",
    "net_features",
    "HeteroGraph",
    "edge_type_name",
    "merge_graphs",
    "reverse_edge_type",
    "GraphStats",
    "dataset_stats",
    "graph_stats",
]
