"""Schematic-to-graph conversion (paper §II-B).

Devices and signal nets both become graph nodes; every device terminal
connected to a signal net contributes two opposing typed edges
(``net->transistor_gate`` and ``transistor_gate->net``).  Supply and ground
nets are dropped, as are the edges that would touch them.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.circuits import devices as dev
from repro.circuits.netlist import Circuit
from repro.errors import GraphConstructionError
from repro.graph.features import device_features, feature_dim, net_features
from repro.graph.hetero import HeteroGraph, edge_type_name

#: Histogram buckets for graph sizes (node/edge counts).
GRAPH_SIZE_BUCKETS = (10, 30, 100, 300, 1000, 3000, 10000, float("inf"))


def build_graph(circuit: Circuit, validate: bool = True) -> HeteroGraph:
    """Convert a flat circuit into a :class:`HeteroGraph`.

    Raises
    ------
    GraphConstructionError
        If the circuit yields no net nodes (nothing to predict on).
    """
    with obs.span("graph.build", circuit=circuit.name):
        graph = _build_graph(circuit, validate)
    obs.inc("graphs_built_total")
    obs.observe("graph.nodes", graph.num_nodes, buckets=GRAPH_SIZE_BUCKETS)
    obs.observe("graph.edges", graph.num_edges, buckets=GRAPH_SIZE_BUCKETS)
    return graph


def _build_graph(circuit: Circuit, validate: bool) -> HeteroGraph:
    graph = HeteroGraph(name=circuit.name)

    # --- nodes -------------------------------------------------------
    type_members: dict[str, list[int]] = {}
    type_features: dict[str, list[list[float]]] = {}

    def add_node(node_type: str, name: str, feats: list[float]) -> int:
        node_id = len(graph.node_type_of)
        graph.node_type_of.append(node_type)
        graph.node_name_of.append(name)
        type_members.setdefault(node_type, []).append(node_id)
        type_features.setdefault(node_type, []).append(feats)
        return node_id

    signal_nets = [net.name for net in circuit.signal_nets()]
    if not signal_nets:
        raise GraphConstructionError(
            f"circuit {circuit.name!r} has no signal nets to build a graph from"
        )
    for net_name in signal_nets:
        graph.net_nodes[net_name] = add_node(
            dev.NET, net_name, net_features(circuit, net_name)
        )
    for inst in circuit.instances():
        graph.device_nodes[inst.name] = add_node(
            inst.device_type, inst.name, device_features(inst)
        )

    for node_type, members in type_members.items():
        graph.nodes_of_type[node_type] = np.asarray(members, dtype=np.int64)
        # staticcheck: ignore[precision-policy,precision-taint] -- raw
        # features are stored float64-canonical; the model casts at the
        # encoder boundary, so nothing float64 survives into the kernels
        feats = np.asarray(type_features[node_type], dtype=np.float64)
        expected = feature_dim(node_type)
        if feats.shape[1] != expected:
            raise GraphConstructionError(
                f"feature dim mismatch for {node_type!r}: "
                f"{feats.shape[1]} != {expected}"
            )
        graph.features[node_type] = feats

    # --- edges -------------------------------------------------------
    edge_lists: dict[str, tuple[list[int], list[int]]] = {}

    def add_edge(edge_type: str, src: int, dst: int) -> None:
        srcs, dsts = edge_lists.setdefault(edge_type, ([], []))
        srcs.append(src)
        dsts.append(dst)

    for inst in circuit.instances():
        device_id = graph.device_nodes[inst.name]
        for terminal, net_name in inst.conns.items():
            net_id = graph.net_nodes.get(net_name)
            if net_id is None:  # supply/ground: ignored (paper §II-B)
                continue
            terminal_kind = f"{inst.device_type}_{terminal}"
            add_edge(edge_type_name(dev.NET, terminal_kind), net_id, device_id)
            add_edge(edge_type_name(terminal_kind, dev.NET), device_id, net_id)

    for edge_type, (srcs, dsts) in edge_lists.items():
        graph.edges[edge_type] = (
            np.asarray(srcs, dtype=np.int64),
            np.asarray(dsts, dtype=np.int64),
        )

    if validate:
        graph.validate()
    return graph


def all_edge_type_names() -> list[str]:
    """Every edge type the builder can emit, for model weight allocation."""
    names: list[str] = []
    for device_type in dev.DEVICE_TYPES:
        for terminal in dev.spec_for(device_type).terminals:
            kind = f"{device_type}_{terminal}"
            names.append(edge_type_name(dev.NET, kind))
            names.append(edge_type_name(kind, dev.NET))
    return names
