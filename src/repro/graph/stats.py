"""Graph statistics: summaries for dataset reports and sanity checks."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.hetero import HeteroGraph


@dataclass
class GraphStats:
    """Structural summary of one heterogeneous graph."""

    name: str
    num_nodes: int
    num_edges: int
    nodes_per_type: dict[str, int] = field(default_factory=dict)
    edges_per_type: dict[str, int] = field(default_factory=dict)
    mean_net_degree: float = 0.0
    max_net_degree: int = 0

    def render(self) -> str:
        lines = [
            f"graph {self.name}: {self.num_nodes} nodes, {self.num_edges} edges",
            "  nodes: "
            + ", ".join(f"{t}={n}" for t, n in sorted(self.nodes_per_type.items())),
            f"  net degree: mean {self.mean_net_degree:.2f}, max {self.max_net_degree}",
        ]
        return "\n".join(lines)


def graph_stats(graph: HeteroGraph) -> GraphStats:
    """Compute a :class:`GraphStats` summary."""
    stats = GraphStats(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        nodes_per_type={t: len(ids) for t, ids in graph.nodes_of_type.items()},
        edges_per_type={et: len(src) for et, (src, _) in graph.edges.items()},
    )
    net_ids = graph.nodes_of_type.get("net")
    if net_ids is not None and len(net_ids):
        in_degree = np.zeros(graph.num_nodes, dtype=np.int64)
        for _, dst in graph.edges.values():
            # staticcheck: ignore[autodiff-bypass] -- integer degree
            # counting on raw graph arrays; no gradients involved
            np.add.at(in_degree, dst, 1)
        degrees = in_degree[net_ids]
        stats.mean_net_degree = float(degrees.mean())
        stats.max_net_degree = int(degrees.max())
    return stats


def dataset_stats(graphs: list[HeteroGraph]) -> dict[str, float]:
    """Aggregate statistics over many graphs (dataset-level report)."""
    if not graphs:
        return {"graphs": 0, "nodes": 0, "edges": 0}
    per_graph = [graph_stats(g) for g in graphs]
    return {
        "graphs": len(graphs),
        "nodes": sum(s.num_nodes for s in per_graph),
        "edges": sum(s.num_edges for s in per_graph),
        "mean_net_degree": float(
            np.mean([s.mean_net_degree for s in per_graph])
        ),
        "max_net_degree": max(s.max_net_degree for s in per_graph),
    }
