"""Schematic input features (paper Table II).

Device nodes get their device-type feature vector; net nodes get the fanout
count N.  Feature values here are *raw* (SI units); log/standard scaling is
applied by :mod:`repro.data.normalize` at training time.
"""

from __future__ import annotations

from repro.circuits import devices as dev
from repro.circuits.netlist import Circuit, Instance

#: Feature names for net nodes (paper Table II, "net" row).
NET_FEATURES = ("N",)


def device_feature_names(device_type: str) -> tuple[str, ...]:
    """Table II feature names for a device type."""
    return dev.spec_for(device_type).features


def device_features(inst: Instance) -> list[float]:
    """Raw Table II feature vector for a device instance."""
    return dev.spec_for(inst.device_type).feature_vector(inst.params)


def net_features(circuit: Circuit, net_name: str) -> list[float]:
    """Raw Table II feature vector for a net (fanout count)."""
    return [float(circuit.fanout(net_name))]


def feature_dim(node_type: str) -> int:
    """Raw feature dimension for a node type (net or device)."""
    if node_type == dev.NET:
        return len(NET_FEATURES)
    return len(device_feature_names(node_type))
