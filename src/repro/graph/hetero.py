"""Heterogeneous graph structure (paper §II-B).

A :class:`HeteroGraph` holds typed nodes (devices + nets) and typed directed
edges (one type per device terminal and direction, e.g.
``net->transistor_gate`` and ``transistor_gate->net``).  Node ids are global
(0..N-1) so message passing can run on flat arrays; per-type feature matrices
are kept separately because each node type has its own feature dimension
(paper Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphConstructionError


def edge_type_name(src_kind: str, dst_kind: str) -> str:
    """Canonical edge-type label, e.g. ``net->transistor_gate``."""
    return f"{src_kind}->{dst_kind}"


def reverse_edge_type(edge_type: str) -> str:
    """The opposing edge type (paper: every edge has an opposite-type twin)."""
    try:
        src, dst = edge_type.split("->")
    except ValueError:
        raise GraphConstructionError(f"malformed edge type {edge_type!r}") from None
    return f"{dst}->{src}"


@dataclass
class HeteroGraph:
    """A typed circuit graph.

    Attributes
    ----------
    name:
        Source circuit name.
    node_type_of:
        Node type name per global node id (length ``num_nodes``).
    node_name_of:
        Net name (net nodes) or instance name (device nodes) per node.
    nodes_of_type:
        Type name -> sorted array of global node ids.
    features:
        Type name -> feature matrix whose rows align with
        ``nodes_of_type[type]``.
    edges:
        Edge-type name -> ``(src, dst)`` arrays of global node ids.
    net_nodes / device_nodes:
        Name -> global node id lookup maps.
    """

    name: str
    node_type_of: list[str] = field(default_factory=list)
    node_name_of: list[str] = field(default_factory=list)
    nodes_of_type: dict[str, np.ndarray] = field(default_factory=dict)
    features: dict[str, np.ndarray] = field(default_factory=dict)
    edges: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    net_nodes: dict[str, int] = field(default_factory=dict)
    device_nodes: dict[str, int] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.node_type_of)

    @property
    def num_edges(self) -> int:
        return sum(len(src) for src, _ in self.edges.values())

    @property
    def node_types(self) -> list[str]:
        """Node types present, in deterministic order."""
        return sorted(self.nodes_of_type)

    @property
    def edge_types(self) -> list[str]:
        """Edge types present, in deterministic order."""
        return sorted(self.edges)

    def degree(self, node_id: int) -> int:
        """Total incoming edge count across all edge types."""
        return int(
            sum(int((dst == node_id).sum()) for _, dst in self.edges.values())
        )

    def validate(self) -> None:
        """Check internal consistency; raise on violation."""
        n = self.num_nodes
        if len(self.node_name_of) != n:
            raise GraphConstructionError("node name/type arrays disagree")
        seen = np.zeros(n, dtype=bool)
        for type_name, ids in self.nodes_of_type.items():
            if type_name not in self.features:
                raise GraphConstructionError(f"missing features for {type_name!r}")
            if len(self.features[type_name]) != len(ids):
                raise GraphConstructionError(
                    f"feature rows for {type_name!r} do not match node count"
                )
            if seen[ids].any():
                raise GraphConstructionError("node listed under two types")
            seen[ids] = True
        if not seen.all():
            raise GraphConstructionError("node missing from nodes_of_type")
        for edge_type, (src, dst) in self.edges.items():
            if len(src) != len(dst):
                raise GraphConstructionError(f"ragged edge arrays for {edge_type!r}")
            if len(src) and (src.max() >= n or dst.max() >= n or src.min() < 0):
                raise GraphConstructionError(f"edge index out of range in {edge_type!r}")
            twin = reverse_edge_type(edge_type)
            if twin not in self.edges or len(self.edges[twin][0]) != len(src):
                raise GraphConstructionError(
                    f"edge type {edge_type!r} lacks a matching {twin!r}"
                )

    def feature_matrix(self, type_name: str) -> np.ndarray:
        """Feature rows for one node type (aligned with ``nodes_of_type``)."""
        try:
            return self.features[type_name]
        except KeyError:
            raise GraphConstructionError(
                f"no features for node type {type_name!r}"
            ) from None


def merge_graphs(graphs: list[HeteroGraph], name: str = "merged") -> HeteroGraph:
    """Disjoint union of several graphs (for whole-dataset training).

    Node ids are offset per input graph; node names are prefixed with the
    source graph name (``t3/netA``).
    """
    if not graphs:
        raise GraphConstructionError("merge_graphs needs at least one graph")
    merged = HeteroGraph(name=name)
    offset = 0
    per_type_ids: dict[str, list[np.ndarray]] = {}
    per_type_feats: dict[str, list[np.ndarray]] = {}
    per_edge: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}
    for g in graphs:
        merged.node_type_of.extend(g.node_type_of)
        merged.node_name_of.extend(f"{g.name}/{n}" for n in g.node_name_of)
        for type_name, ids in g.nodes_of_type.items():
            per_type_ids.setdefault(type_name, []).append(ids + offset)
            per_type_feats.setdefault(type_name, []).append(g.features[type_name])
        for edge_type, (src, dst) in g.edges.items():
            per_edge.setdefault(edge_type, []).append((src + offset, dst + offset))
        for net, nid in g.net_nodes.items():
            merged.net_nodes[f"{g.name}/{net}"] = nid + offset
        for devname, nid in g.device_nodes.items():
            merged.device_nodes[f"{g.name}/{devname}"] = nid + offset
        offset += g.num_nodes
    for type_name in per_type_ids:
        merged.nodes_of_type[type_name] = np.concatenate(per_type_ids[type_name])
        merged.features[type_name] = np.concatenate(per_type_feats[type_name], axis=0)
    for edge_type, pieces in per_edge.items():
        merged.edges[edge_type] = (
            np.concatenate([s for s, _ in pieces]),
            np.concatenate([d for _, d in pieces]),
        )
    return merged
