"""Compute-precision policy for the NumPy NN engine.

Every tensor the engine creates is cast to one *compute dtype*.  The
default is ``float64`` — bit-for-bit compatible with the historical
behaviour, and what gradient checks and checkpoint round-trips assume.
Training can opt into ``float32`` (via :class:`repro.models.TrainConfig`'s
``dtype`` knob or :func:`compute_dtype`) for roughly 2x memory-bandwidth
savings on the segment kernels, at the cost of ~1e-3-relative loss drift
(see ``docs/performance.md`` for the measured tolerances).

The policy is thread-local, mirroring :func:`repro.nn.no_grad`: a float32
training run on one thread must not downcast tensors built concurrently by
an inference thread.

Checkpoints and saved models are always *stored* in float64 (a lossless
upcast from float32), so artifacts are portable across policies.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

import numpy as np

#: Dtypes the engine supports as compute precision.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

DEFAULT_DTYPE = np.dtype(np.float64)

_state = threading.local()


def resolve_dtype(dtype: "str | np.dtype | type") -> np.dtype:
    """Normalise a dtype spec (``'float32'``, ``np.float64``, ...).

    Raises
    ------
    ValueError
        For dtypes the engine does not support as compute precision.
    """
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        names = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise ValueError(
            f"unsupported compute dtype {resolved.name!r}; choose from {names}"
        )
    return resolved


def get_compute_dtype() -> np.dtype:
    """The dtype new tensors are cast to (this thread)."""
    return getattr(_state, "dtype", DEFAULT_DTYPE)


def set_compute_dtype(dtype: "str | np.dtype | type") -> np.dtype:
    """Set the compute dtype for this thread; returns the resolved dtype."""
    resolved = resolve_dtype(dtype)
    _state.dtype = resolved
    return resolved


@contextlib.contextmanager
def compute_dtype(dtype: "str | np.dtype | type") -> Iterator[np.dtype]:
    """Context manager scoping the compute dtype (restores on exit)."""
    previous = get_compute_dtype()
    resolved = set_compute_dtype(dtype)
    try:
        yield resolved
    finally:
        _state.dtype = previous


def tiny(dtype: "np.dtype | None" = None) -> float:
    """Smallest positive normal number of *dtype* (denominator guards).

    A fixed guard like ``1e-300`` silently flushes to zero in float32
    (``float32(1e-300) == 0.0``); dtype-aware guards stay meaningful under
    any policy.
    """
    return float(np.finfo(dtype if dtype is not None else get_compute_dtype()).tiny)
