"""A small reverse-mode automatic-differentiation engine on numpy.

This module provides the :class:`Tensor` class used by every model in the
library.  It supports the operations needed for graph neural networks —
broadcast arithmetic, matmul, concatenation, row gather and segment
reductions — with gradients verified against finite differences in the test
suite.

The engine intentionally mirrors a very small subset of PyTorch semantics:

* ``Tensor(data, requires_grad=True)`` creates a leaf parameter,
* operations build a computation graph,
* ``loss.backward()`` populates ``.grad`` on every leaf that requires it.

Arrays are kept in the compute dtype of :mod:`repro.nn.precision` —
``float64`` by default, which makes gradient checks tight; training may
opt into ``float32`` for memory-bandwidth savings.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.errors import ShapeError
from repro.nn import precision

ArrayLike = "np.ndarray | float | int | list | tuple | Tensor"

# The grad-enabled flag is thread-local: a no_grad() block on one thread
# (e.g. prediction inside a callback) must not disable graph construction
# for training loops running concurrently on other threads.
_grad_state = threading.local()


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph construction (inference mode).

    The flag is per-thread, so concurrent training/inference threads do not
    race on it.
    """
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def is_grad_enabled() -> bool:
    """Return True when operations record the autodiff graph (this thread)."""
    return getattr(_grad_state, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* back to *shape* after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    array = np.asarray(value, dtype=precision.get_compute_dtype())
    return array


class Tensor:
    """A numpy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of the active compute
        dtype (:func:`repro.nn.precision.get_compute_dtype`).
    requires_grad:
        When True, ``backward()`` accumulates into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(parents)
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1.0 and must match this tensor's shape
        otherwise.
        """
        if grad is None:
            if self.size != 1:
                raise ShapeError(
                    "backward() without an explicit gradient requires a scalar"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        order = _topological_order(self)
        pending: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = pending.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                node._accumulate(node_grad)
            if node._backward is not None:
                node._push(node_grad, pending)

    def _push(self, grad: np.ndarray, pending: dict[int, np.ndarray]) -> None:
        # _backward fills grads into a capture list via closure over parents.
        contributions = self._backward(grad)  # type: ignore[misc]
        for parent, contribution in zip(self._parents, contributions):
            if contribution is None or not parent.requires_grad:
                continue
            key = id(parent)
            if key in pending:
                pending[key] = pending[key] + contribution
            else:
                pending[key] = contribution

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(grad, other.data.shape),
            )

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(-grad, other.data.shape),
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * other_data, self_data.shape),
                _unbroadcast(grad * self_data, other_data.shape),
            )

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / other_data, self_data.shape),
                _unbroadcast(-grad * self_data / other_data**2, other_data.shape),
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data**exponent
        self_data = self.data

        def backward(grad: np.ndarray):
            return (grad * exponent * self_data ** (exponent - 1),)

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray):
            return (grad @ other_data.T, self_data.T @ grad)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions and reshaping
    # ------------------------------------------------------------------
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad: np.ndarray):
            if axis is None:
                return (np.broadcast_to(grad, shape).copy(),)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, shape).copy(),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)
        original = self.data.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original),)

        return Tensor._make(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray):
            return (grad.T,)

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - numpy-style alias
        return self.transpose()

    # ------------------------------------------------------------------
    # Elementwise nonlinearities used across models
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * out_data,)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        self_data = self.data

        def backward(grad: np.ndarray):
            return (grad / self_data,)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray):
            return (grad * 0.5 / out_data,)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray):
            return (grad * sign,)

        return Tensor._make(out_data, (self,), backward)

    def clip_min(self, minimum: float) -> "Tensor":
        """Elementwise ``max(self, minimum)`` (used for safe norms)."""
        mask = (self.data >= minimum).astype(self.data.dtype)
        out_data = np.maximum(self.data, minimum)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(out_data, (self,), backward)


def _topological_order(root: Tensor) -> list[Tensor]:
    """Return nodes reachable from *root* in reverse-topological order."""
    order: list[Tensor] = []
    seen: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in seen:
                stack.append((parent, False))
    order.reverse()
    return order


def as_tensor(value) -> Tensor:
    """Coerce *value* to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)
