"""Dense layers: Linear and MLP.

These are the building blocks of every GNN layer and readout head in the
library (paper §III: "several fully connected layers, which take node
embedding as inputs").
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import init as nn_init
from repro.nn import ops
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Linear(Module):
    """Affine transform ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensions.
    rng:
        Generator for weight initialisation (Xavier uniform).
    bias:
        Whether to include an additive bias.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(nn_init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(nn_init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": ops.relu,
    "leaky_relu": ops.leaky_relu,
    "sigmoid": ops.sigmoid,
    "tanh": ops.tanh,
    "identity": lambda x: x,
}


def get_activation(name: str) -> Callable[[Tensor], Tensor]:
    """Look up an activation by name.

    Raises
    ------
    KeyError
        For unknown names; the message lists valid options.
    """
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from None


class MLP(Module):
    """A stack of Linear layers with a shared hidden activation.

    The paper's readout uses FC layers all at the embedding width F with a
    final 1-dimensional output; ``MLP([F, F, F, 1])`` expresses that.
    The activation is applied between layers but not after the last one.
    """

    def __init__(
        self,
        dims: Sequence[int],
        rng: np.random.Generator,
        activation: str = "relu",
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output dimension")
        self.dims = list(dims)
        self.activation_name = activation
        self.layers = [
            Linear(dims[i], dims[i + 1], rng) for i in range(len(dims) - 1)
        ]

    def forward(self, x: Tensor) -> Tensor:
        act = get_activation(self.activation_name)
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = act(x)
        return x
