"""Module base class: parameter registration and traversal.

A :class:`Module` discovers parameters and submodules from its attributes,
mirroring the familiar PyTorch contract at a much smaller scale.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn import precision
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A leaf tensor registered as trainable state of a module."""

    def __init__(self, data):
        super().__init__(
            np.array(data, dtype=precision.get_compute_dtype()),
            requires_grad=True,
        )


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter`, :class:`Module`, or lists of
    modules as attributes; :meth:`parameters` and :meth:`named_parameters`
    find them recursively in deterministic (attribute insertion) order.
    """

    def __init__(self):
        self.training = True

    # Subclasses implement forward(); __call__ delegates to it.
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{key}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{key}", item

    def parameters(self) -> list[Parameter]:
        """Return all parameters as a flat list."""
        return [param for _, param in self.named_parameters()]

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        self.training = mode
        for value in vars(self).values():
            if isinstance(value, Module):
                value.train(mode)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.train(mode)
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        item.train(mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(param.size for param in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy all parameter arrays keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`.

        Raises
        ------
        KeyError
            If a parameter name is missing from *state*.
        ValueError
            If shapes do not match.
        """
        for name, param in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            array = np.asarray(state[name], dtype=precision.get_compute_dtype())
            if array.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"expected {param.data.shape}, got {array.shape}"
                )
            param.data = array.copy()
