"""Functional operations on :class:`~repro.nn.tensor.Tensor`.

Beyond standard activations, this module provides the three structural
operations every message-passing layer in the library is built from:

* :func:`gather_rows` — ``h[src]`` for edge-wise source features,
* :func:`segment_sum` — scatter-add of edge messages into destination nodes,
* :func:`segment_softmax` — softmax over the incoming edges of each node
  (the attention normaliser of GAT and ParaGraph).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.tensor import Tensor, as_tensor


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    x = as_tensor(x)
    mask = (x.data > 0).astype(np.float64)
    out_data = x.data * mask

    def backward(grad: np.ndarray):
        return (grad * mask,)

    return Tensor._make(out_data, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU with the GAT-default slope of 0.2."""
    x = as_tensor(x)
    scale = np.where(x.data > 0, 1.0, negative_slope)
    out_data = x.data * scale

    def backward(grad: np.ndarray):
        return (grad * scale,)

    return Tensor._make(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    x = as_tensor(x)
    out_data = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad: np.ndarray):
        return (grad * out_data * (1.0 - out_data),)

    return Tensor._make(out_data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    x = as_tensor(x)
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray):
        return (grad * (1.0 - out_data**2),)

    return Tensor._make(out_data, (x,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    """Concatenate tensors along *axis* (GraphSage-style skip connection)."""
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise ShapeError("concat() requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0, *sizes])

    def backward(grad: np.ndarray):
        slicer = [slice(None)] * grad.ndim
        pieces = []
        for i in range(len(sizes)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            pieces.append(grad[tuple(slicer)])
        return tuple(pieces)

    return Tensor._make(out_data, tuple(tensors), backward)


def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows of a 2-D (or 1-D) tensor: ``out[k] = x[index[k]]``."""
    x = as_tensor(x)
    index = np.asarray(index, dtype=np.int64)
    out_data = x.data[index]
    in_shape = x.data.shape

    def backward(grad: np.ndarray):
        gx = np.zeros(in_shape, dtype=np.float64)
        np.add.at(gx, index, grad)
        return (gx,)

    return Tensor._make(out_data, (x,), backward)


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of *x* into ``num_segments`` buckets.

    ``out[s] = sum_{k : segment_ids[k] == s} x[k]``.  Rows of *x* are edge
    messages; *segment_ids* are destination-node ids.
    """
    x = as_tensor(x)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if len(segment_ids) != x.data.shape[0]:
        raise ShapeError(
            f"segment_ids length {len(segment_ids)} does not match "
            f"leading dimension {x.data.shape[0]}"
        )
    out_shape = (num_segments, *x.data.shape[1:])
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, x.data)

    def backward(grad: np.ndarray):
        return (grad[segment_ids],)

    return Tensor._make(out_data, (x,), backward)


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments yield zero rows."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    summed = segment_sum(x, segment_ids, num_segments)
    shape = (num_segments, *([1] * (summed.ndim - 1)))
    return summed * Tensor(1.0 / counts.reshape(shape))


def _segment_max_data(data: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    out = np.full((num_segments, *data.shape[1:]), -np.inf, dtype=np.float64)
    np.maximum.at(out, segment_ids, data)
    out[~np.isfinite(out)] = 0.0  # empty segments
    return out


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax of *scores* within each segment.

    Used for attention: scores are per-edge logits and segments group the
    incoming edges of each destination node.  Numerically stabilised by
    subtracting the (detached) per-segment maximum, which does not change
    either the value or the gradient of softmax.
    """
    scores = as_tensor(scores)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    max_per_segment = _segment_max_data(scores.data, segment_ids, num_segments)
    shifted = scores - Tensor(max_per_segment[segment_ids])
    exp_scores = shifted.exp()
    denom = segment_sum(exp_scores, segment_ids, num_segments)
    denom = denom.clip_min(1e-300)
    return exp_scores / gather_rows(denom, segment_ids)


def scatter_rows(
    pieces: Sequence[Tensor],
    indices: Sequence[np.ndarray],
    num_rows: int,
) -> Tensor:
    """Assemble a ``(num_rows, F)`` matrix from row blocks at given indices.

    ``out[indices[k][i]] = pieces[k][i]``.  Used to place per-node-type
    embeddings into the global node matrix (Algorithm 1, lines 1-2).  Index
    sets must be disjoint; overlapping rows are summed (and gradients flow
    to every contributor), which is never triggered by the graph builder.
    """
    pieces = [as_tensor(p) for p in pieces]
    if not pieces:
        raise ShapeError("scatter_rows() requires at least one piece")
    width = pieces[0].data.shape[1]
    out_data = np.zeros((num_rows, width), dtype=np.float64)
    index_arrays = [np.asarray(ix, dtype=np.int64) for ix in indices]
    for piece, index in zip(pieces, index_arrays):
        if piece.data.shape[0] != len(index):
            raise ShapeError("scatter_rows piece/index length mismatch")
        np.add.at(out_data, index, piece.data)

    def backward(grad: np.ndarray):
        return tuple(grad[index] for index in index_arrays)

    return Tensor._make(out_data, tuple(pieces), backward)


def l2_normalize_rows(x: Tensor, eps: float = 1e-12) -> Tensor:
    """Normalise each row to unit L2 norm (GraphSage's final projection)."""
    x = as_tensor(x)
    norms = (x * x).sum(axis=1, keepdims=True).clip_min(eps).sqrt()
    return x / norms


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout.  The paper trains without dropout; provided for ablations."""
    if not training or rate <= 0.0:
        return as_tensor(x)
    x = as_tensor(x)
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)
