"""Functional operations on :class:`~repro.nn.tensor.Tensor`.

Beyond standard activations, this module provides the three structural
operations every message-passing layer in the library is built from:

* :func:`gather_rows` — ``h[src]`` for edge-wise source features,
* :func:`segment_sum` — scatter-add of edge messages into destination nodes,
* :func:`segment_softmax` — softmax over the incoming edges of each node
  (the attention normaliser of GAT and ParaGraph).

The scatter-style kernels (forward of the segment ops *and* the
scatter-add backward of :func:`gather_rows`) run through
:class:`~repro.nn.plan.SegmentPlan` — a sorted-CSR reduction schedule
whose scatter-add is bit-identical to the historical unbuffered
``np.add.at`` but an order of magnitude faster.  :func:`segment_softmax`
additionally fuses its shift/exp/sum/div chain into a single autodiff
node when plans are enabled (same math, matching the composite form to
roundoff).  Callers that own graph-shaped index arrays (the convolution
layers) pass cached plans from :class:`repro.models.inputs.GraphInputs`;
ad-hoc calls build a plan on the fly.  :func:`use_legacy_kernels`
switches back to the unbuffered composite kernels for benchmarking and
parity testing.

*Which implementation* answers each kernel is the thread-local policy of
:mod:`repro.nn.backend`: every op captures the active
:class:`~repro.nn.backend.KernelBackend` at forward time and runs both
its forward and its backward through it, so GCN/GraphSAGE/RGCN/GAT and
ParaGraph layers all swap kernels together when a caller scopes
``backend.use_backend(...)``.  The ``default`` backend reproduces the
historical code paths bit-for-bit.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.backend import get_backend
from repro.nn.plan import SegmentPlan
from repro.nn.tensor import Tensor, as_tensor

# ----------------------------------------------------------------------
# Kernel-mode switch (plan-based vs legacy np.add.at)
# ----------------------------------------------------------------------
_kernel_state = threading.local()


def plans_enabled() -> bool:
    """True when the scatter kernels use sorted-CSR plans (this thread)."""
    return getattr(_kernel_state, "plans", True)


@contextlib.contextmanager
def use_legacy_kernels() -> Iterator[None]:
    """Run the scatter kernels through unbuffered ``np.add.at``.

    Exists for before/after benchmarking (``bench_train_step``) and for
    parity tests asserting the plan-based kernels are bit-compatible.
    Thread-local, like :func:`repro.nn.no_grad`.
    """
    previous = plans_enabled()
    _kernel_state.plans = False
    try:
        yield
    finally:
        _kernel_state.plans = previous


def _scatter_add(
    index: np.ndarray,
    values: np.ndarray,
    num_rows: int,
    plan: SegmentPlan | None = None,
    backend=None,
) -> np.ndarray:
    """Sum rows of *values* into *num_rows* buckets selected by *index*."""
    if not plans_enabled():
        out = np.zeros((num_rows, *values.shape[1:]), dtype=values.dtype)
        # staticcheck: ignore[autodiff-bypass] -- the legacy (plans
        # disabled) scatter kernel; forward-only, wrapped by the op tape
        np.add.at(out, index, values)
        return out
    if plan is None:
        plan = SegmentPlan.build(index, num_rows)
    else:
        plan.check(index, num_rows)
    return (backend or get_backend()).scatter_add(values, plan)


def _activation(x: Tensor, kernel) -> Tensor:
    """Wrap a backend activation kernel (out, vjp) into one tape node."""
    x = as_tensor(x)
    out_data, vjp = kernel(x.data)

    def backward(grad: np.ndarray):
        return (vjp(grad),)

    return Tensor._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return _activation(x, get_backend().relu)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU with the GAT-default slope of 0.2."""
    backend = get_backend()
    return _activation(x, lambda data: backend.leaky_relu(data, negative_slope))


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return _activation(x, get_backend().sigmoid)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return _activation(x, get_backend().tanh)


def concat(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    """Concatenate tensors along *axis* (GraphSage-style skip connection)."""
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise ShapeError("concat() requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0, *sizes])

    def backward(grad: np.ndarray):
        slicer = [slice(None)] * grad.ndim
        pieces = []
        for i in range(len(sizes)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            pieces.append(grad[tuple(slicer)])
        return tuple(pieces)

    return Tensor._make(out_data, tuple(tensors), backward)


def gather_rows(
    x: Tensor, index: np.ndarray, plan: SegmentPlan | None = None
) -> Tensor:
    """Select rows of a 2-D (or 1-D) tensor: ``out[k] = x[index[k]]``.

    *plan* (optional) is a :class:`SegmentPlan` over ``(index,
    x.shape[0])`` used to turn the scatter-add backward into a sorted
    reduction; graph layers pass the cached plans of their
    :class:`~repro.models.inputs.GraphInputs`.
    """
    x = as_tensor(x)
    index = np.asarray(index, dtype=np.int64)
    backend = get_backend()
    out_data = backend.gather_rows(x.data, index)
    num_rows = x.data.shape[0]

    def backward(grad: np.ndarray):
        return (_scatter_add(index, grad, num_rows, plan, backend),)

    return Tensor._make(out_data, (x,), backward)


def segment_sum(
    x: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None = None,
) -> Tensor:
    """Sum rows of *x* into ``num_segments`` buckets.

    ``out[s] = sum_{k : segment_ids[k] == s} x[k]``.  Rows of *x* are edge
    messages; *segment_ids* are destination-node ids.  *plan* may carry the
    precomputed reduction schedule for ``(segment_ids, num_segments)``.
    """
    x = as_tensor(x)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if len(segment_ids) != x.data.shape[0]:
        raise ShapeError(
            f"segment_ids length {len(segment_ids)} does not match "
            f"leading dimension {x.data.shape[0]}"
        )
    backend = get_backend()
    out_data = _scatter_add(segment_ids, x.data, num_segments, plan, backend)

    def backward(grad: np.ndarray):
        return (backend.gather_rows(grad, segment_ids),)

    return Tensor._make(out_data, (x,), backward)


def segment_mean(
    x: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None = None,
) -> Tensor:
    """Mean of rows per segment; empty segments yield zero rows."""
    x = as_tensor(x)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    dtype = x.data.dtype
    if plan is not None:
        inv_counts = plan.inverse_counts(dtype).ravel()
    else:
        counts = np.bincount(segment_ids, minlength=num_segments).astype(dtype)
        inv_counts = 1.0 / np.maximum(counts, 1.0)
    summed = segment_sum(x, segment_ids, num_segments, plan)
    shape = (num_segments, *([1] * (summed.ndim - 1)))
    return summed * Tensor(inv_counts.reshape(shape))


def _segment_max_data(
    data: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None = None,
) -> np.ndarray:
    if plans_enabled():
        if plan is None:
            plan = SegmentPlan.build(segment_ids, num_segments)
        return get_backend().segment_max(data, plan)
    out = np.full((num_segments, *data.shape[1:]), -np.inf, dtype=data.dtype)
    # staticcheck: ignore[autodiff-bypass] -- legacy segment-max kernel
    np.maximum.at(out, segment_ids, data)
    out[~np.isfinite(out)] = 0.0  # empty segments
    return out


def segment_softmax(
    scores: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None = None,
) -> Tensor:
    """Softmax of *scores* within each segment.

    Used for attention: scores are per-edge logits and segments group the
    incoming edges of each destination node.  Numerically stabilised by
    subtracting the (detached) per-segment maximum, which does not change
    either the value or the gradient of softmax.  The denominator guard is
    ``finfo(dtype).tiny`` — a fixed ``1e-300`` would flush to zero under a
    float32 compute policy.

    With plans enabled this is a *fused* kernel: one autodiff node whose
    backward is the closed-form softmax gradient
    ``alpha * (grad - segsum(alpha * grad))``, instead of the historical
    chain of shift/exp/sum/clip/div nodes.  Values and gradients match the
    composite form to roundoff (same math, reassociated).
    """
    scores = as_tensor(scores)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if plan is not None:
        plan.check(segment_ids, num_segments)
    if plans_enabled():
        if plan is None:
            plan = SegmentPlan.build(segment_ids, num_segments)
        fused_plan = plan
        backend = get_backend()
        alpha = backend.segment_softmax(scores.data, segment_ids, fused_plan)

        def backward(grad: np.ndarray):
            return (
                backend.segment_softmax_backward(
                    alpha, grad, segment_ids, fused_plan
                ),
            )

        return Tensor._make(alpha, (scores,), backward)
    # Legacy composite path (the pre-plan-engine computation order).
    max_per_segment = _segment_max_data(
        scores.data, segment_ids, num_segments, plan
    )
    shifted = scores - Tensor(max_per_segment[segment_ids])
    exp_scores = shifted.exp()
    denom = segment_sum(exp_scores, segment_ids, num_segments, plan)
    denom = denom.clip_min(float(np.finfo(scores.data.dtype).tiny))
    return exp_scores / gather_rows(denom, segment_ids, plan)


def scatter_rows(
    pieces: Sequence[Tensor],
    indices: Sequence[np.ndarray],
    num_rows: int,
    plans: Sequence[SegmentPlan | None] | None = None,
) -> Tensor:
    """Assemble a ``(num_rows, F)`` matrix from row blocks at given indices.

    ``out[indices[k][i]] = pieces[k][i]``.  Used to place per-node-type
    embeddings into the global node matrix (Algorithm 1, lines 1-2).  Index
    sets must be disjoint; overlapping rows are summed (and gradients flow
    to every contributor), which is never triggered by the graph builder.
    *plans* may carry one :class:`SegmentPlan` per piece (or ``None``
    entries) for the scatter schedule.
    """
    pieces = [as_tensor(p) for p in pieces]
    if not pieces:
        raise ShapeError("scatter_rows() requires at least one piece")
    if plans is None:
        plans = [None] * len(pieces)
    width = pieces[0].data.shape[1]
    dtype = pieces[0].data.dtype
    index_arrays = [np.asarray(ix, dtype=np.int64) for ix in indices]
    for piece, index in zip(pieces, index_arrays):
        if piece.data.shape[0] != len(index):
            raise ShapeError("scatter_rows piece/index length mismatch")
    backend = get_backend()
    if plans_enabled():
        out_data = np.zeros((num_rows, width), dtype=dtype)
        for piece, index, plan in zip(pieces, index_arrays, plans):
            if plan is not None:
                plan.check(index, num_rows)
            if plan is not None and plan.counts.max(initial=0) <= 1:
                # unique indices: buffered fancy-index add is safe and
                # avoids the (num_rows, F) temporary of the general path
                out_data[index] += piece.data
            else:
                out_data += _scatter_add(
                    index, piece.data, num_rows, plan, backend
                )
    else:
        out_data = np.zeros((num_rows, width), dtype=dtype)
        for piece, index in zip(pieces, index_arrays):
            # staticcheck: ignore[autodiff-bypass] -- legacy scatter path
            np.add.at(out_data, index, piece.data)

    def backward(grad: np.ndarray):
        return tuple(backend.gather_rows(grad, index) for index in index_arrays)

    return Tensor._make(out_data, tuple(pieces), backward)


def l2_normalize_rows(x: Tensor, eps: float = 1e-12) -> Tensor:
    """Normalise each row to unit L2 norm (GraphSage's final projection).

    Backends may fuse this into a single tape node (forward matches the
    composite chain bitwise; the closed-form backward agrees to roundoff).
    The default backend keeps the historical composite Tensor-op chain.
    """
    x = as_tensor(x)
    fused = get_backend().l2_normalize_rows(x.data, eps)
    if fused is not None:
        out_data, vjp = fused

        def backward(grad: np.ndarray):
            return (vjp(grad),)

        return Tensor._make(out_data, (x,), backward)
    norms = (x * x).sum(axis=1, keepdims=True).clip_min(eps).sqrt()
    return x / norms


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout.  The paper trains without dropout; provided for ablations."""
    if not training or rate <= 0.0:
        return as_tensor(x)
    x = as_tensor(x)
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    return x * Tensor(mask)
