"""Pluggable compute backends for the kernel engine.

The ~10 kernel entry points of :mod:`repro.nn.ops` (row gathers, segment
reductions, the fused segment softmax, activations and row normalisation)
all funnel through a :class:`KernelBackend`.  Which backend answers is a
**thread-local policy**, mirroring :mod:`repro.nn.precision`: training
threads keep the reference backend while a serving thread opts into an
accelerated one, and the two never race on each other's choice.

Shipped backends:

* ``default`` — the numpy/scipy plan-based implementation the repo has
  always run.  Bit-for-bit identical to the pre-backend code paths; the
  reference every other backend is tested against.
* ``fused`` — a pure-numpy rewrite of the hot kernels that eliminates
  dispatch overhead rather than changing the math: fancy-index gathers
  become :func:`np.take`, the softmax shift/exp/div chain reuses one
  scratch buffer end to end, and activation gradient masks are computed
  lazily (never materialised under ``no_grad`` serving).  Scatter-adds
  still run through the plan's CSR kernel, so every reduction accumulates
  in the same element order as ``default`` — float64 outputs are
  value-identical (``np.array_equal``; only the sign of relu zeros may
  differ) and float32 outputs match to documented ulp bounds.
* ``numba`` — JIT'd sorted-loop kernels, registered only when numba is
  importable (it is an optional dependency; the registry simply omits the
  backend otherwise).
* ``auto`` — not a backend but a selector: resolves to ``numba`` when
  available, else ``fused``.

Selection follows the precision-policy conventions::

    from repro.nn import backend

    with backend.use_backend("fused"):
        model(inputs)                   # this thread only

    backend.set_backend("auto")         # rest of this thread

The process-wide default is ``default`` unless the ``REPRO_BACKEND``
environment variable names another registered backend (or ``auto``).
Gradients of an op always run on the backend that computed its forward —
the op captures the backend object at forward time — so a policy change
between forward and backward cannot split one tape node across backends.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Callable, Iterator

import numpy as np

from repro.nn.plan import SegmentPlan

#: (out, vjp) pair an activation kernel returns; vjp maps grad -> grad_x.
ActivationResult = "tuple[np.ndarray, Callable[[np.ndarray], np.ndarray]]"


class KernelBackend:
    """The reference (``default``) backend: plan-based numpy/scipy kernels.

    Subclasses override individual kernels; anything not overridden falls
    back to these reference implementations, which are the exact code the
    ops module ran before backends existed.  All methods take and return
    plain ``np.ndarray`` — tape wrapping stays in :mod:`repro.nn.ops`.
    """

    name = "default"

    # -- structural kernels --------------------------------------------
    def gather_rows(self, data: np.ndarray, index: np.ndarray) -> np.ndarray:
        """``out[k] = data[index[k]]`` along axis 0."""
        return data[index]

    def scatter_add(self, values: np.ndarray, plan: SegmentPlan) -> np.ndarray:
        """Sum rows of *values* into ``plan.num_segments`` buckets."""
        return plan.scatter_add(values)

    def segment_max(self, values: np.ndarray, plan: SegmentPlan) -> np.ndarray:
        """Per-segment maximum; empty/non-finite maxima become 0."""
        return plan.segment_max(values)

    def segment_softmax(
        self,
        scores: np.ndarray,
        segment_ids: np.ndarray,
        plan: SegmentPlan,
    ) -> np.ndarray:
        """Shift-stabilised softmax within each segment (the fused forward)."""
        max_per_segment = self.segment_max(scores, plan)
        exp_scores = np.exp(scores - max_per_segment[segment_ids])
        denom = self.scatter_add(exp_scores, plan)
        np.maximum(denom, np.finfo(scores.dtype).tiny, out=denom)
        return exp_scores / denom[segment_ids]

    def segment_softmax_backward(
        self,
        alpha: np.ndarray,
        grad: np.ndarray,
        segment_ids: np.ndarray,
        plan: SegmentPlan,
    ) -> np.ndarray:
        """Closed-form softmax gradient ``alpha * (grad - segsum(alpha*grad))``."""
        weighted = self.scatter_add(alpha * grad, plan)
        return alpha * (grad - weighted[segment_ids])

    # -- activations -----------------------------------------------------
    def relu(self, data: np.ndarray) -> ActivationResult:
        mask = (data > 0).astype(data.dtype)
        return data * mask, lambda grad: grad * mask

    def leaky_relu(self, data: np.ndarray, negative_slope: float) -> ActivationResult:
        scale = np.where(data > 0, 1.0, negative_slope).astype(data.dtype, copy=False)
        return data * scale, lambda grad: grad * scale

    def sigmoid(self, data: np.ndarray) -> ActivationResult:
        out = 1.0 / (1.0 + np.exp(-data))
        return out, lambda grad: grad * out * (1.0 - out)

    def tanh(self, data: np.ndarray) -> ActivationResult:
        out = np.tanh(data)
        return out, lambda grad: grad * (1.0 - out**2)

    # -- row normalisation ----------------------------------------------
    def l2_normalize_rows(self, data: np.ndarray, eps: float):
        """Fused row normalisation, or ``None`` to use the composite path.

        The reference backend returns ``None``: :func:`repro.nn.ops`
        builds the historical chain of Tensor ops instead, keeping the
        training tape (and its gradients) bit-compatible with pre-backend
        checkpoint runs.
        """
        return None


class FusedNumpyBackend(KernelBackend):
    """Dispatch-overhead rewrite of the hot kernels, always available.

    Same accumulation order as ``default`` everywhere a reduction runs
    (the plan's CSR scatter is reused verbatim), so reductions stay
    bit-identical; the speedup comes from ``np.take`` replacing
    fancy-index gathers, scratch-buffer reuse in the softmax chain, and
    lazily materialised activation masks.
    """

    name = "fused"

    def gather_rows(self, data: np.ndarray, index: np.ndarray) -> np.ndarray:
        # np.take skips the generic fancy-indexing machinery (~2x on the
        # row-gather sizes graph layers see); identical output bytes.
        return np.take(data, index, axis=0)

    def segment_softmax(
        self,
        scores: np.ndarray,
        segment_ids: np.ndarray,
        plan: SegmentPlan,
    ) -> np.ndarray:
        max_per_segment = self.segment_max(scores, plan)
        # One scratch buffer carries shift -> exp; the ops are the same
        # sequence as the reference kernel, so values match bitwise.
        scratch = np.take(max_per_segment, segment_ids, axis=0)
        np.subtract(scores, scratch, out=scratch)
        np.exp(scratch, out=scratch)
        denom = self.scatter_add(scratch, plan)
        np.maximum(denom, np.finfo(scores.dtype).tiny, out=denom)
        out = np.take(denom, segment_ids, axis=0)
        np.divide(scratch, out, out=out)
        return out

    def segment_softmax_backward(
        self,
        alpha: np.ndarray,
        grad: np.ndarray,
        segment_ids: np.ndarray,
        plan: SegmentPlan,
    ) -> np.ndarray:
        weighted = self.scatter_add(alpha * grad, plan)
        out = np.take(weighted, segment_ids, axis=0)
        np.subtract(grad, out, out=out)
        np.multiply(alpha, out, out=out)
        return out

    def relu(self, data: np.ndarray) -> ActivationResult:
        # Single-pass clamp; the reference's mask-multiply writes -0.0
        # where this writes +0.0 (values compare equal).  The mask only
        # exists if a gradient is actually requested.
        return np.maximum(data, 0.0), lambda grad: grad * (data > 0)

    def leaky_relu(self, data: np.ndarray, negative_slope: float) -> ActivationResult:
        out = np.where(data > 0, data, data * negative_slope)

        def vjp(grad: np.ndarray) -> np.ndarray:
            return grad * np.where(data > 0, 1.0, negative_slope).astype(
                data.dtype, copy=False
            )

        return out, vjp

    def l2_normalize_rows(self, data: np.ndarray, eps: float):
        """One tape node instead of the composite five-op chain.

        Forward matches the composite form bitwise (same row-sum, clip
        and sqrt); the backward is the closed-form quotient gradient, so
        gradients agree to roundoff rather than bitwise.
        """
        squares = np.sum(data * data, axis=1, keepdims=True)
        norms = np.sqrt(np.maximum(squares, eps))
        out = data / norms

        def vjp(grad: np.ndarray) -> np.ndarray:
            # d(x/n)/dx with n = sqrt(max(sum x^2, eps)): rows clipped at
            # eps have a constant denominator (zero gradient through n).
            active = (squares > eps).astype(data.dtype)
            inner = np.sum(grad * out, axis=1, keepdims=True)
            return (grad - out * (inner * active)) / norms

        return out, vjp


# ----------------------------------------------------------------------
# Registry + thread-local selection
# ----------------------------------------------------------------------
_REGISTRY: "dict[str, KernelBackend]" = {}
_state = threading.local()
_process_default: "list[KernelBackend | None]" = [None]


def register_backend(backend: KernelBackend, *, replace: bool = False) -> KernelBackend:
    """Add *backend* to the registry under ``backend.name``."""
    if not backend.name:
        raise ValueError("backend needs a non-empty name")
    if backend.name == "auto":
        raise ValueError('"auto" is a selector, not a registrable backend name')
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (excludes the ``auto`` selector)."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(spec: "str | KernelBackend | None") -> KernelBackend:
    """Normalise a backend spec (name, instance, or None = thread policy).

    ``"auto"`` resolves to the best accelerated backend available:
    ``numba`` when its JIT kernels registered, else ``fused``.
    """
    if spec is None:
        return get_backend()
    if isinstance(spec, KernelBackend):
        return spec
    if spec == "auto":
        return _REGISTRY.get("numba") or _REGISTRY["fused"]
    try:
        return _REGISTRY[spec]
    except KeyError:
        names = ", ".join(("auto", *available_backends()))
        raise ValueError(
            f"unknown kernel backend {spec!r}; choose from {names}"
        ) from None


def _default_backend() -> KernelBackend:
    """Process default: ``REPRO_BACKEND`` env override, else ``default``."""
    cached = _process_default[0]
    if cached is None:
        cached = resolve_backend(os.environ.get("REPRO_BACKEND") or "default")
        _process_default[0] = cached
    return cached


def get_backend() -> KernelBackend:
    """The backend the kernel entry points dispatch to (this thread)."""
    backend = getattr(_state, "backend", None)
    return backend if backend is not None else _default_backend()


def set_backend(spec: "str | KernelBackend") -> KernelBackend:
    """Set this thread's backend; returns the resolved instance."""
    resolved = resolve_backend(spec)
    _state.backend = resolved
    return resolved


@contextlib.contextmanager
def use_backend(spec: "str | KernelBackend") -> Iterator[KernelBackend]:
    """Context manager scoping the kernel backend (restores on exit)."""
    previous = getattr(_state, "backend", None)
    resolved = set_backend(spec)
    try:
        yield resolved
    finally:
        _state.backend = previous


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
register_backend(KernelBackend())
register_backend(FusedNumpyBackend())

try:  # pragma: no cover - numba is optional and absent in CI images
    from repro.nn._numba import NumbaBackend

    register_backend(NumbaBackend())
except ImportError:
    pass
