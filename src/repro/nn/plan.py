"""Segment compute plans: sorted-CSR reductions for the scatter kernels.

Every message-passing layer in the library reduces per-edge rows into
per-node rows (``segment_sum``/``segment_softmax``) or scatters gradients
back from edges to nodes (the backward of ``gather_rows``).  The naive
implementation is ``np.add.at`` — an unbuffered ufunc that visits one
element at a time and is typically 10-50x slower than a contiguous
reduction.

A :class:`SegmentPlan` precomputes everything a sorted reduction needs:

* ``order`` — a *stable* argsort of the segment ids, so rows of the same
  segment become contiguous while preserving their original relative
  order,
* ``starts`` — ``np.add.reduceat`` boundaries into the sorted rows, one
  per non-empty segment,
* ``present`` — the segment id each boundary belongs to,
* ``counts`` — per-segment row counts (degree vectors come for free).

The scatter-add itself runs as a sparse CSR matmul ``M @ values`` where
``M`` is the (S, E) 0/1 segment-membership matrix with columns stored in
stable-sorted row order.  scipy's CSR kernel accumulates each output row
sequentially over its stored columns — exactly the element order the
unbuffered ``np.add.at`` uses — so plan-based reductions are
**bit-identical** to the historical scatter in any dtype, while running
5-10x faster (one fused C pass, no per-element dispatch).  Without scipy
(it is a declared dependency, but the engine degrades gracefully) a
sorted ``np.add.reduceat`` fallback is used, which matches the unbuffered
scatter to ulp-level rather than bitwise because NumPy reductions sum
pairwise.

Plans depend only on ``(segment_ids, num_segments)``, so graph-shaped
plans are computed once per graph and cached on
:class:`repro.models.inputs.GraphInputs`; with the merged-inputs cache of
:mod:`repro.flows.runtime` the argsort amortises to ~zero over a training
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

try:  # pragma: no cover - scipy is a declared dependency
    from scipy import sparse as _sparse
    from scipy.sparse import _sparsetools
except ImportError:  # pragma: no cover
    _sparse = None
    _sparsetools = None

from repro.errors import ShapeError


@dataclass(frozen=True)
class SegmentPlan:
    """Precomputed sorted-CSR reduction schedule for one segmentation."""

    segment_ids: np.ndarray  #: (E,) int64 segment id per row
    num_segments: int  #: number of output rows S
    order: np.ndarray  #: (E,) stable argsort of ``segment_ids``
    starts: np.ndarray  #: reduceat boundaries into the sorted rows
    present: np.ndarray  #: ascending ids of non-empty segments
    counts: np.ndarray = field(repr=False)  #: (S,) int64 rows per segment
    #: dtype -> cached (S, E) CSR membership operator
    _matrices: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def build(cls, segment_ids: np.ndarray, num_segments: int) -> "SegmentPlan":
        """Build a plan for ``segment_ids`` mapping rows into S segments."""
        segment_ids = np.ascontiguousarray(segment_ids, dtype=np.int64)
        if segment_ids.ndim != 1:
            raise ShapeError("segment_ids must be 1-D")
        if segment_ids.size:
            low, high = int(segment_ids.min()), int(segment_ids.max())
            if low < 0 or high >= num_segments:
                raise ShapeError(
                    f"segment ids span [{low}, {high}] outside "
                    f"[0, {num_segments})"
                )
        order = np.argsort(segment_ids, kind="stable")
        sorted_ids = segment_ids[order]
        counts = np.bincount(segment_ids, minlength=num_segments)
        if sorted_ids.size:
            starts = np.concatenate(
                [[0], np.flatnonzero(np.diff(sorted_ids)) + 1]
            )
            present = sorted_ids[starts]
        else:
            starts = np.empty(0, dtype=np.int64)
            present = np.empty(0, dtype=np.int64)
        return cls(
            segment_ids=segment_ids,
            num_segments=int(num_segments),
            order=order,
            starts=starts,
            present=present,
            counts=counts,
        )

    @classmethod
    def concat(
        cls,
        plans: "list[SegmentPlan]",
        segment_offsets: np.ndarray,
        num_segments: int,
    ) -> "SegmentPlan":
        """Stitch per-graph plans into one disjoint-union plan, bitwise.

        ``plans[k]`` must cover segment range ``[segment_offsets[k],
        segment_offsets[k] + plans[k].num_segments)`` of the merged
        segmentation, and those ranges must be ascending and disjoint (the
        node-id ranges of a disjoint graph union).  Under that layout the
        stable argsort of the concatenated shifted segment ids is exactly
        the concatenation of the per-plan stable orders plus item offsets,
        so the merged plan — and therefore every reduction run through it —
        is bit-identical to ``SegmentPlan.build`` on the concatenated ids,
        without re-sorting anything.
        """
        if len(plans) != len(segment_offsets):
            raise ShapeError(
                f"{len(plans)} plans but {len(segment_offsets)} segment offsets"
            )
        previous_end = 0
        for plan, offset in zip(plans, segment_offsets):
            offset = int(offset)
            if offset < previous_end:
                raise ShapeError(
                    "segment ranges must be ascending and disjoint; "
                    f"offset {offset} overlaps the previous range "
                    f"ending at {previous_end}"
                )
            previous_end = offset + plan.num_segments
        if previous_end > num_segments:
            raise ShapeError(
                f"plans cover segments up to {previous_end}, outside "
                f"[0, {num_segments})"
            )
        if not plans:
            return cls.build(np.empty(0, dtype=np.int64), num_segments)
        item_offsets = np.cumsum([0] + [plan.num_items for plan in plans[:-1]])
        counts = np.zeros(num_segments, dtype=plans[0].counts.dtype)
        for plan, offset in zip(plans, segment_offsets):
            counts[int(offset):int(offset) + plan.num_segments] = plan.counts
        return cls(
            segment_ids=np.concatenate(
                [plan.segment_ids + int(s) for plan, s in zip(plans, segment_offsets)]
            ),
            num_segments=int(num_segments),
            order=np.concatenate(
                [plan.order + int(i) for plan, i in zip(plans, item_offsets)]
            ),
            starts=np.concatenate(
                [plan.starts + int(i) for plan, i in zip(plans, item_offsets)]
            ),
            present=np.concatenate(
                [plan.present + int(s) for plan, s in zip(plans, segment_offsets)]
            ),
            counts=counts,
        )

    @classmethod
    def identity(cls, num_segments: int) -> "SegmentPlan":
        """The plan of ``segment_ids == arange(n)``: one row per segment.

        This is the self-loop block's schedule (``with_self_loops``
        appends one ``arange`` edge per node), already sorted — every
        field is the identity permutation and all counts are one.
        """
        ids = np.arange(int(num_segments), dtype=np.int64)
        return cls(
            segment_ids=ids,
            num_segments=int(num_segments),
            order=ids,
            starts=ids,
            present=ids,
            counts=np.ones(int(num_segments), dtype=np.int64),
        )

    @classmethod
    def interleave(
        cls, plans: "list[SegmentPlan]", num_segments: int
    ) -> "SegmentPlan":
        """Merge plans over the **same** segment space, bitwise.

        Where :meth:`concat` stitches plans whose segment ranges are
        disjoint (a disjoint graph union), ``interleave`` stitches plans
        that all cover ``[0, num_segments)`` and whose *item* blocks are
        concatenated in order — the layout of a type-major merged edge
        list (all edges of type A, then type B, ...) or a self-loop
        append.  A stable argsort of the concatenated segment ids keeps,
        within each segment, plan 0's rows (in plan-0 order) before
        plan 1's, so every sorted position is computable from the
        per-plan schedules alone: the result — and every reduction run
        through it — is bit-identical to :meth:`build` on the
        concatenated ids, without re-sorting anything.
        """
        for plan in plans:
            if plan.num_segments != num_segments:
                raise ShapeError(
                    f"interleave needs plans over {num_segments} segments, "
                    f"got one over {plan.num_segments}"
                )
        if not plans:
            return cls.build(np.empty(0, dtype=np.int64), num_segments)
        total_counts = np.zeros(num_segments, dtype=np.int64)
        for plan in plans:
            total_counts += plan.counts
        # seg_base[s] = first sorted position of segment s in the merge
        seg_base = np.zeros(num_segments, dtype=np.int64)
        np.cumsum(total_counts[:-1], out=seg_base[1:])
        order = np.empty(int(total_counts.sum()), dtype=np.int64)
        prior = np.zeros(num_segments, dtype=np.int64)  # rows of earlier plans
        item_offset = 0
        for plan in plans:
            if plan.num_items:
                sorted_ids = plan.segment_ids[plan.order]
                # within-segment rank of each sorted row inside its plan
                ranks = np.arange(plan.num_items, dtype=np.int64) - np.repeat(
                    plan.starts, plan.counts[plan.present]
                )
                positions = seg_base[sorted_ids] + prior[sorted_ids] + ranks
                order[positions] = plan.order + item_offset
            prior += plan.counts
            item_offset += plan.num_items
        present = np.flatnonzero(total_counts)
        return cls(
            segment_ids=np.concatenate([plan.segment_ids for plan in plans]),
            num_segments=int(num_segments),
            order=order,
            starts=seg_base[present],
            present=present,
            counts=total_counts,
        )

    # ------------------------------------------------------------------
    @property
    def num_items(self) -> int:
        return self.segment_ids.shape[0]

    def check(self, segment_ids: np.ndarray, num_segments: int) -> None:
        """Cheap shape validation that this plan fits a kernel call."""
        if self.num_segments != num_segments:
            raise ShapeError(
                f"plan covers {self.num_segments} segments, "
                f"kernel call expects {num_segments}"
            )
        if len(segment_ids) != self.num_items:
            raise ShapeError(
                f"plan covers {self.num_items} rows, "
                f"kernel call has {len(segment_ids)}"
            )

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _matrix(self, dtype: np.dtype):
        """The (S, E) CSR membership operator in *dtype* (cached)."""
        matrix = self._matrices.get(dtype)
        if matrix is None:
            indptr = np.zeros(self.num_segments + 1, dtype=np.int64)
            np.cumsum(self.counts, out=indptr[1:])
            matrix = _sparse.csr_matrix(
                (np.ones(self.num_items, dtype=dtype), self.order, indptr),
                shape=(self.num_segments, self.num_items),
            )
            self._matrices[dtype] = matrix
        return matrix

    def scatter_add(self, values: np.ndarray) -> np.ndarray:
        """``out[s] = sum of values rows in segment s`` (empty rows zero).

        Bit-identical to ``np.add.at(zeros, segment_ids, values)``: the CSR
        kernel accumulates each output row sequentially over its columns in
        stable-sorted (i.e. original) element order.
        """
        values = np.ascontiguousarray(values)
        if _sparse is not None:
            matrix = self._matrix(values.dtype)
            if _sparsetools is not None and values.ndim in (1, 2):
                # Same compiled kernel scipy's ``@`` dispatches to, minus
                # the per-call validation overhead (these run hundreds of
                # times per training step on small per-edge-type arrays).
                out = np.zeros(
                    (self.num_segments, *values.shape[1:]), dtype=values.dtype
                )
                if values.ndim == 1:
                    _sparsetools.csr_matvec(
                        self.num_segments, self.num_items,
                        matrix.indptr, matrix.indices, matrix.data,
                        values, out,
                    )
                else:
                    _sparsetools.csr_matvecs(
                        self.num_segments, self.num_items, values.shape[1],
                        matrix.indptr, matrix.indices, matrix.data,
                        values.ravel(), out.ravel(),
                    )
                return out
            return np.ascontiguousarray(matrix @ values)
        out = np.zeros((self.num_segments, *values.shape[1:]), dtype=values.dtype)
        if self.order.size:
            out[self.present] = np.add.reduceat(
                values[self.order], self.starts, axis=0
            )
        return out

    def segment_max(self, values: np.ndarray) -> np.ndarray:
        """Per-segment maximum; empty or non-finite maxima become 0.

        Matches the historical ``np.maximum.at`` + -inf-fill behaviour of
        the softmax stabiliser.
        """
        values = np.asarray(values)
        out = np.zeros((self.num_segments, *values.shape[1:]), dtype=values.dtype)
        if self.order.size:
            seg_max = np.maximum.reduceat(values[self.order], self.starts, axis=0)
            seg_max[~np.isfinite(seg_max)] = 0.0
            out[self.present] = seg_max
        return out

    def inverse_counts(self, dtype: np.dtype) -> np.ndarray:
        """``1 / max(counts, 1)`` as a (S, 1) column in *dtype*."""
        counts = np.maximum(self.counts, 1).astype(dtype)
        return (1.0 / counts).reshape(-1, 1)
