"""Save/load model parameters to ``.npz`` files."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write a module's parameters to an ``.npz`` archive."""
    np.savez(path, **module.state_dict())


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved by :func:`save_module` into *module* in place."""
    with np.load(path) as archive:
        module.load_state_dict({name: archive[name] for name in archive.files})
    return module
