"""Save/load model parameters to ``.npz`` files.

Archives are always written in float64 — a lossless upcast from a float32
training run — so saved models are portable across precision policies.
Loading casts into the active compute dtype
(:func:`repro.nn.precision.get_compute_dtype`).
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write a module's parameters to an ``.npz`` archive (float64)."""
    state = {
        name: value.astype(np.float64, copy=False)
        for name, value in module.state_dict().items()
    }
    np.savez(path, **state)


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved by :func:`save_module` into *module* in place."""
    with np.load(path) as archive:
        module.load_state_dict({name: archive[name] for name in archive.files})
    return module
