"""Optimisers: SGD (with momentum) and Adam.

The paper trains every model with ADAM at learning rate 0.01.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, params: Sequence[Parameter]):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # State serialization (checkpoint/resume support)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy the optimiser's internal state as named arrays.

        Subclasses with per-parameter slots (momentum, Adam moments)
        override :meth:`_state_slots`; parameter order is the registration
        order, which is deterministic for :class:`~repro.nn.module.Module`.
        """
        state: dict[str, np.ndarray] = {}
        for slot_name, slot in self._state_slots().items():
            if isinstance(slot, list):
                for i, array in enumerate(slot):
                    state[f"{slot_name}.{i}"] = np.array(array, copy=True)
            else:
                state[slot_name] = np.asarray(slot, dtype=np.float64)  # staticcheck: ignore[precision-policy] -- optimizer state is float64-canonical on disk
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict` (exact round-trip)."""
        for slot_name, slot in self._state_slots().items():
            if isinstance(slot, list):
                for i, array in enumerate(slot):
                    key = f"{slot_name}.{i}"
                    if key not in state:
                        raise KeyError(f"missing optimizer state {key!r}")
                    incoming = np.asarray(state[key], dtype=array.dtype)
                    if incoming.shape != array.shape:
                        raise ValueError(
                            f"shape mismatch for optimizer state {key!r}: "
                            f"expected {array.shape}, got {incoming.shape}"
                        )
                    array[...] = incoming
            else:
                if slot_name not in state:
                    raise KeyError(f"missing optimizer state {slot_name!r}")
                self._set_scalar_slot(slot_name, state[slot_name])

    def _state_slots(self) -> dict[str, "list[np.ndarray] | float | int"]:
        """Named internal state; stateless optimisers have none."""
        return {}

    def _set_scalar_slot(self, name: str, value: np.ndarray) -> None:
        raise KeyError(f"unknown scalar optimizer state {name!r}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad

    def _state_slots(self):
        return {"velocity": self._velocity}


class RMSprop(Optimizer):
    """RMSprop with optional momentum."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        alpha: float = 0.99,
        eps: float = 1e-8,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.alpha = alpha
        self.eps = eps
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._sq = [np.zeros_like(p.data) for p in self.params]
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, sq, velocity in zip(self.params, self._sq, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            sq *= self.alpha
            sq += (1.0 - self.alpha) * grad**2
            update = grad / (np.sqrt(sq) + self.eps)
            if self.momentum:
                velocity *= self.momentum
                velocity += update
                update = velocity
            param.data = param.data - self.lr * update

    def _state_slots(self):
        return {"sq": self._sq, "velocity": self._velocity}


def global_grad_norm(params: Sequence[Parameter]) -> float:
    """Global L2 norm of all parameter gradients (``None`` grads skipped)."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad**2).sum())
    return total**0.5


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most *max_norm*.

    Returns the pre-clipping norm.  Parameters without gradients are
    skipped.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad**2).sum())
    norm = total**0.5
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm


class StepLR:
    """Multiplies an optimizer's learning rate by *gamma* every *step_size* epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch; decay when the boundary is crossed."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    @property
    def lr(self) -> float:
        return self.optimizer.lr


class CosineLR:
    """Cosine annealing from the initial lr to *eta_min* over *t_max* epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.t_max)
        cosine = 0.5 * (1.0 + np.cos(np.pi * self._epoch / self.t_max))
        self.optimizer.lr = self.eta_min + (self._base_lr - self.eta_min) * cosine

    @property
    def lr(self) -> float:
        return self.optimizer.lr


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _state_slots(self):
        return {"step_count": self._step_count, "m": self._m, "v": self._v}

    def _set_scalar_slot(self, name: str, value: np.ndarray) -> None:
        if name == "step_count":
            self._step_count = int(np.asarray(value).item())
        else:
            super()._set_scalar_slot(name, value)
