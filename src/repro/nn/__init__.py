"""Minimal autodiff neural-network engine used by all ParaGraph models.

Public surface::

    from repro import nn
    x = nn.Tensor([[1.0, 2.0]], requires_grad=True)
    layer = nn.Linear(2, 4, rng)
    loss = nn.mse_loss(layer(x), target)
    loss.backward()
"""

from repro.nn import backend, precision
from repro.nn.backend import (
    KernelBackend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.nn.layers import MLP, Linear, get_activation
from repro.nn.loss import huber_loss, mae_loss, mse_loss
from repro.nn.module import Module, Parameter
from repro.nn.ops import (
    concat,
    dropout,
    gather_rows,
    l2_normalize_rows,
    leaky_relu,
    plans_enabled,
    relu,
    scatter_rows,
    segment_mean,
    segment_softmax,
    segment_sum,
    sigmoid,
    tanh,
    use_legacy_kernels,
)
from repro.nn.plan import SegmentPlan
from repro.nn.precision import compute_dtype, get_compute_dtype, set_compute_dtype
from repro.nn.optim import (
    SGD,
    Adam,
    CosineLR,
    Optimizer,
    RMSprop,
    StepLR,
    clip_grad_norm,
    global_grad_norm,
)
from repro.nn.serialize import load_module, save_module
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "MLP",
    "Linear",
    "KernelBackend",
    "SegmentPlan",
    "available_backends",
    "backend",
    "compute_dtype",
    "get_backend",
    "get_compute_dtype",
    "plans_enabled",
    "precision",
    "set_backend",
    "set_compute_dtype",
    "use_backend",
    "use_legacy_kernels",
    "get_activation",
    "huber_loss",
    "mae_loss",
    "mse_loss",
    "Module",
    "Parameter",
    "concat",
    "dropout",
    "gather_rows",
    "l2_normalize_rows",
    "leaky_relu",
    "relu",
    "scatter_rows",
    "segment_mean",
    "segment_softmax",
    "segment_sum",
    "sigmoid",
    "tanh",
    "SGD",
    "Adam",
    "CosineLR",
    "Optimizer",
    "RMSprop",
    "StepLR",
    "clip_grad_norm",
    "global_grad_norm",
    "load_module",
    "save_module",
    "Tensor",
    "as_tensor",
    "is_grad_enabled",
    "no_grad",
]
