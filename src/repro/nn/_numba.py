"""Numba-JIT kernel backend (optional; imported only when numba exists).

The kernels loop over the plan's *sorted* row order and accumulate each
segment sequentially — the exact element order of the CSR scatter the
``default`` backend uses — so float64 reductions stay bit-identical to
the reference backend (float32 softmax accumulates its denominator in
double and may differ in the last ulp).  The win over the fused backend
is fusing gather + reduce + normalise into one compiled pass with no
intermediate arrays.

This module raises :class:`ImportError` at import time when numba is not
installed; :mod:`repro.nn.backend` catches that and simply does not
register the backend (``auto`` then resolves to ``fused``).
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange  # noqa: F401 - ImportError gates registration

from repro.nn.backend import FusedNumpyBackend
from repro.nn.plan import SegmentPlan


@njit(cache=True)
def _gather_rows_2d(data, index, out):  # pragma: no cover - requires numba
    for k in range(index.shape[0]):
        row = index[k]
        for j in range(data.shape[1]):
            out[k, j] = data[row, j]


@njit(cache=True)
def _scatter_add_sorted(values, order, starts, present, out):
    # pragma: no cover - requires numba
    """Sequential per-segment accumulation in stable-sorted row order."""
    for s in range(starts.shape[0]):
        begin = starts[s]
        end = starts[s + 1] if s + 1 < starts.shape[0] else order.shape[0]
        seg = present[s]
        for k in range(begin, end):
            row = order[k]
            for j in range(values.shape[1]):
                out[seg, j] += values[row, j]


@njit(cache=True)
def _segment_softmax_sorted(scores, segment_ids, order, starts, present, tiny, out):
    # pragma: no cover - requires numba
    """Fused shift/exp/sum/div softmax, one compiled pass per segment."""
    for s in range(starts.shape[0]):
        begin = starts[s]
        end = starts[s + 1] if s + 1 < starts.shape[0] else order.shape[0]
        for j in range(scores.shape[1]):
            peak = -np.inf
            for k in range(begin, end):
                value = scores[order[k], j]
                if value > peak:
                    peak = value
            if not np.isfinite(peak):
                peak = 0.0
            denom = 0.0
            for k in range(begin, end):
                row = order[k]
                e = np.exp(scores[row, j] - peak)
                out[row, j] = e
                denom += e
            if denom < tiny:
                denom = tiny
            for k in range(begin, end):
                out[order[k], j] /= denom


class NumbaBackend(FusedNumpyBackend):
    """JIT'd sorted-loop kernels; falls back to ``fused`` elsewhere."""

    name = "numba"

    def gather_rows(self, data: np.ndarray, index: np.ndarray) -> np.ndarray:
        if data.ndim != 2:
            return np.take(data, index, axis=0)
        out = np.empty((index.shape[0], data.shape[1]), dtype=data.dtype)
        _gather_rows_2d(np.ascontiguousarray(data), index, out)
        return out

    def scatter_add(self, values: np.ndarray, plan: SegmentPlan) -> np.ndarray:
        if values.ndim != 2:
            return plan.scatter_add(values)
        values = np.ascontiguousarray(values)
        out = np.zeros((plan.num_segments, values.shape[1]), dtype=values.dtype)
        _scatter_add_sorted(values, plan.order, plan.starts, plan.present, out)
        return out

    def segment_softmax(
        self,
        scores: np.ndarray,
        segment_ids: np.ndarray,
        plan: SegmentPlan,
    ) -> np.ndarray:
        if scores.ndim != 2:
            return super().segment_softmax(scores, segment_ids, plan)
        scores = np.ascontiguousarray(scores)
        out = np.zeros_like(scores)
        _segment_softmax_sorted(
            scores,
            plan.segment_ids,
            plan.order,
            plan.starts,
            plan.present,
            float(np.finfo(scores.dtype).tiny),
            out,
        )
        return out
