"""Regression losses.

The paper regresses every target with MSE; MAE and Huber are provided for
ablations and diagnostics.
"""

from __future__ import annotations

from repro.errors import ShapeError
from repro.nn.tensor import Tensor, as_tensor


def _check(pred: Tensor, target: Tensor) -> tuple[Tensor, Tensor]:
    pred, target = as_tensor(pred), as_tensor(target)
    if pred.shape != target.shape:
        raise ShapeError(
            f"prediction shape {pred.shape} does not match target {target.shape}"
        )
    return pred, target


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    pred, target = _check(pred, target)
    diff = pred - target
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    pred, target = _check(pred, target)
    return (pred - target).abs().mean()


def huber_loss(pred: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss — quadratic near zero, linear in the tails."""
    pred, target = _check(pred, target)
    diff = (pred - target).abs()
    quadratic = diff.clip_min(0.0)  # diff is already non-negative
    small = Tensor((diff.data <= delta).astype(diff.data.dtype))
    large = Tensor(1.0) - small
    loss = small * (quadratic * quadratic * 0.5) + large * (diff * delta - 0.5 * delta**2)
    return loss.mean()
