"""Weight initialisation schemes.

Draws are always made in float64 (so a given seed yields the same weights
under every precision policy) and then cast to the active compute dtype.
"""

from __future__ import annotations

import numpy as np

from repro.nn import precision


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a 2-D weight matrix."""
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    draw = rng.uniform(-limit, limit, size=shape)
    return draw.astype(precision.get_compute_dtype(), copy=False)


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, negative_slope: float = 0.0
) -> np.ndarray:
    """He/Kaiming uniform initialisation for (leaky-)ReLU networks."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope**2))
    limit = gain * np.sqrt(3.0 / fan_in)
    draw = rng.uniform(-limit, limit, size=shape)
    return draw.astype(precision.get_compute_dtype(), copy=False)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=precision.get_compute_dtype())


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[0] * receptive, shape[1] * receptive
