"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a 2-D weight matrix."""
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, negative_slope: float = 0.0
) -> np.ndarray:
    """He/Kaiming uniform initialisation for (leaky-)ReLU networks."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope**2))
    limit = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[0] * receptive, shape[1] * receptive
