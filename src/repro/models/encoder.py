"""Node-type input encoder (Algorithm 1, lines 1-2).

Each node type has its own feature dimension (paper Table II), so the first
step of every model — including the naive baselines, as noted in §V — maps
each type into the common embedding space with a per-type weight matrix.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.models.inputs import GraphInputs
from repro.nn import Linear, Module, Tensor, scatter_rows


class NodeTypeEncoder(Module):
    """Per-node-type linear maps into a common embedding space."""

    def __init__(
        self,
        feature_dims: dict[str, int],
        embed_dim: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.embed_dim = embed_dim
        self.transforms = {
            type_name: Linear(dim, embed_dim, rng)
            for type_name, dim in sorted(feature_dims.items())
        }

    def forward(self, inputs: GraphInputs) -> Tensor:
        """Return the (num_nodes, embed_dim) initial embedding matrix."""
        pieces, indices, plans = [], [], []
        type_plans = inputs.node_type_plans()
        for type_name in sorted(inputs.features):
            transform = self.transforms.get(type_name)
            if transform is None:
                raise ModelError(
                    f"encoder has no transform for node type {type_name!r}"
                )
            pieces.append(transform(Tensor(inputs.features[type_name])))
            indices.append(inputs.nodes_of_type[type_name])
            plans.append(type_plans.get(type_name))
        return scatter_rows(pieces, indices, inputs.num_nodes, plans=plans)
