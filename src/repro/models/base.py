"""GNNRegressor: encoder + L convolution layers + FC readout.

This is the shared skeleton of every graph model in the paper's comparison:
the models differ only in their convolution layer (paper §V applied the
node-type input transform to the naive baselines too, so they can consume
heterogeneous features).
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import all_edge_type_names
from repro.models.convs import make_conv
from repro.models.encoder import NodeTypeEncoder
from repro.models.inputs import GraphInputs
from repro.nn import MLP, Module, Tensor, gather_rows


class GNNRegressor(Module):
    """A GNN regression model for one prediction target.

    Parameters
    ----------
    conv:
        One of ``gcn``, ``sage``, ``rgcn``, ``gat``, ``paragraph``.
    feature_dims:
        Raw feature dimension per node type (covering every type the model
        may encounter).
    embed_dim:
        Embedding width F (paper: 32).
    num_layers:
        Convolution depth L (paper: 5).
    num_fc_layers:
        Readout depth (paper: 4 for CAP, 2 for device parameters); all
        hidden FC layers have width F, the last has 1 output.  ``0`` means
        a purely linear readout (a single F -> 1 projection, no hidden
        nonlinearity).
    edge_types:
        Edge types to allocate relational weights for; defaults to every
        type the graph builder can emit.
    conv_kwargs:
        Extra arguments for the convolution (ParaGraph ablation flags).
    """

    def __init__(
        self,
        conv: str,
        feature_dims: dict[str, int],
        rng: np.random.Generator,
        embed_dim: int = 32,
        num_layers: int = 5,
        num_fc_layers: int = 4,
        edge_types: list[str] | None = None,
        conv_kwargs: dict | None = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if num_fc_layers < 0:
            raise ValueError("num_fc_layers must be >= 0")
        self.conv_name = conv
        self.embed_dim = embed_dim
        edge_types = list(edge_types) if edge_types is not None else all_edge_type_names()
        self.encoder = NodeTypeEncoder(feature_dims, embed_dim, rng)
        self.convs = [
            make_conv(conv, embed_dim, edge_types, rng, **(conv_kwargs or {}))
            for _ in range(num_layers)
        ]
        readout_dims = (
            [embed_dim, 1] if num_fc_layers == 0
            else [embed_dim] * num_fc_layers + [1]
        )
        self.readout = MLP(readout_dims, rng, activation="relu")

    def embed(self, inputs: GraphInputs) -> Tensor:
        """Node embeddings Z after all convolution layers (Algorithm 1)."""
        h = self.encoder(inputs)
        for conv in self.convs:
            h = conv(h, inputs)
        return h

    def forward(self, inputs: GraphInputs, node_ids: np.ndarray) -> Tensor:
        """Predicted (scaled) target values for the given nodes, shape (n, 1)."""
        z = self.embed(inputs)
        return self.readout(gather_rows(z, node_ids))
