"""Baseline predictors on node features alone (paper's XGBoost / Linear rows).

The classical baselines see exactly the Table II features of the node being
predicted — no graph structure — matching the paper's "XGBoost and Linear
Regression based on node features alone".  Device-parameter baselines get a
thin/thick one-hot since their population spans two node types.
"""

from __future__ import annotations

import numpy as np

from repro.circuits import devices as dev
from repro.data.dataset import CircuitRecord, DatasetBundle
from repro.data.normalize import (
    FeatureScaler,
    TargetScaler,
    log_scaler_from_values,
    scaler_from_std,
)
from repro.data.targets import TargetSpec, target_by_name
from repro.errors import ModelError
from repro.analysis.metrics import summarize
from repro.graph.hetero import HeteroGraph
from repro.models.gbdt import GradientBoostedTrees
from repro.models.linreg import RidgeRegression


def baseline_features(
    graph: HeteroGraph, scaler: FeatureScaler, spec: TargetSpec
) -> tuple[np.ndarray, np.ndarray]:
    """(node_ids, feature matrix) for a target population on one graph."""
    scaled = scaler.transform(graph)
    ids = spec.node_ids(graph)
    if spec.kind == "net":
        return ids, scaled[dev.NET]
    rows = []
    for node_id in ids:
        type_name = graph.node_type_of[node_id]
        members = graph.nodes_of_type[type_name]
        row_index = int(np.searchsorted(members, node_id))
        onehot = [1.0, 0.0] if type_name == dev.TRANSISTOR else [0.0, 1.0]
        rows.append(np.concatenate([scaled[type_name][row_index], onehot]))
    return ids, np.asarray(rows, dtype=np.float64)


class BaselinePredictor:
    """XGBoost-style or linear baseline with the GNN predictor's interface.

    Parameters
    ----------
    kind:
        ``"xgb"`` (gradient-boosted trees) or ``"linear"`` (ridge).
    target:
        Target name or spec.
    max_v:
        Optional §IV training clamp (same semantics as the GNN trainer).
    """

    def __init__(
        self,
        kind: str = "xgb",
        target: str | TargetSpec = "CAP",
        max_v: float | None = None,
        seed: int = 0,
        log_device_targets: bool = True,
        **model_kwargs,
    ):
        if kind not in ("xgb", "linear"):
            raise ModelError(f"unknown baseline kind {kind!r}")
        self.kind = kind
        self.spec = target if isinstance(target, TargetSpec) else target_by_name(target)
        self.max_v = max_v
        self.seed = seed
        # same treatment as the GNN trainer so comparisons stay fair
        self.log_device_targets = log_device_targets
        self.model_kwargs = model_kwargs
        self.model = None
        self.target_scaler: TargetScaler | None = None
        self._scaler: FeatureScaler | None = None

    def fit(self, bundle: DatasetBundle) -> "BaselinePredictor":
        records = bundle.records("train")
        xs, ys = [], []
        for record in records:
            _, X = baseline_features(record.graph, bundle.scaler, self.spec)
            _, y = record.target_arrays(self.spec)
            xs.append(X)
            ys.append(y)
        X = np.concatenate(xs, axis=0)
        y = np.concatenate(ys)
        if self.max_v is not None:
            keep = y <= self.max_v
            if not keep.any():
                raise ModelError(f"max_v={self.max_v} removed every sample")
            X, y = X[keep], y[keep]
        if self.spec.name == "CAP":
            scale = self.max_v if self.max_v is not None else float(y.max())
            self.target_scaler = TargetScaler(scale)
        elif self.spec.kind == "net":
            self.target_scaler = log_scaler_from_values(y)  # RES extension
        elif self.log_device_targets:
            self.target_scaler = log_scaler_from_values(y)
        else:
            self.target_scaler = scaler_from_std(y)
        if self.kind == "xgb":
            self.model = GradientBoostedTrees(seed=self.seed, **self.model_kwargs)
        else:
            self.model = RidgeRegression(**self.model_kwargs)
        self.model.fit(X, self.target_scaler.transform(y))
        self._scaler = bundle.scaler
        return self

    def predict_graph(self, graph: HeteroGraph) -> tuple[np.ndarray, np.ndarray]:
        """(node_ids, SI-unit predictions) for a graph, clamped at zero."""
        if self.model is None:
            raise ModelError("baseline is not fitted; call fit() first")
        ids, X = baseline_features(graph, self._scaler, self.spec)
        scaled = self.model.predict(X)
        return ids, np.maximum(self.target_scaler.inverse(scaled), 0.0)

    def predict(self, record: CircuitRecord) -> tuple[np.ndarray, np.ndarray]:
        """(node_ids, SI-unit predictions), clamped at zero."""
        return self.predict_graph(record.graph)

    def predict_named(self, record: CircuitRecord) -> dict[str, float]:
        """Deprecated: predictions keyed by net/instance name.

        Use :meth:`repro.api.Engine.predict` /
        :meth:`~repro.api.PredictionResult.named` instead.
        """
        from repro.api.compat import named_from_arrays, warn_deprecated

        warn_deprecated(
            "BaselinePredictor.predict_named",
            "repro.api.Engine.predict(...).named(target)",
        )
        return named_from_arrays(record.graph, *self.predict(record))

    def evaluate(
        self, records: list[CircuitRecord], mape_eps: float = 0.0
    ) -> dict[str, float]:
        truths, preds = self.collect(records)
        return summarize(truths, preds, mape_eps=mape_eps)

    def collect(
        self, records: list[CircuitRecord]
    ) -> tuple[np.ndarray, np.ndarray]:
        truths, preds = [], []
        for record in records:
            _, truth = record.target_arrays(self.spec)
            _, pred = self.predict(record)
            truths.append(truth)
            preds.append(pred)
        return np.concatenate(truths), np.concatenate(preds)
