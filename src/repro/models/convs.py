"""Graph convolution layers: GCN, GraphSage, RGCN, GAT and ParaGraph.

Each layer implements one row of paper Table III (or Algorithm 1 for
ParaGraph) on the flat node-embedding matrix, using the segment operations
from :mod:`repro.nn.ops`.  All layers share the signature
``forward(h, inputs) -> h_next`` with ``h`` of shape ``(num_nodes, F)``.

Conventions:

* GCN and GAT add self-loops (their aggregation would otherwise zero out
  isolated nodes; this follows the reference implementations).
* GraphSage keeps its concat-skip and row L2-normalisation.
* RGCN has the self-weight ``W_0``; ParaGraph has the GraphSage-style
  concat skip, so neither needs self-loops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.models.inputs import GraphInputs
from repro.nn import (
    Linear,
    Module,
    Parameter,
    Tensor,
    concat,
    gather_rows,
    l2_normalize_rows,
    leaky_relu,
    relu,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from repro.nn import init as nn_init
from repro.nn import ops


class GCNConv(Module):
    """Kipf-Welling graph convolution with symmetric degree normalisation."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(dim, dim, rng)

    def forward(self, h: Tensor, inputs: GraphInputs) -> Tensor:
        src, dst = inputs.with_self_loops()
        src_plan, dst_plan = inputs.loop_plans()
        inv_sqrt = Tensor(inputs.gcn_inv_sqrt_degree(h.data.dtype))
        scaled = h * inv_sqrt  # 1/sqrt(d_j) on the source side
        messages = gather_rows(scaled, src, plan=src_plan)
        agg = segment_sum(messages, dst, inputs.num_nodes, plan=dst_plan) * inv_sqrt
        return relu(self.linear(agg))


class SageConv(Module):
    """GraphSage with mean aggregator, concat skip and L2 normalisation."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(2 * dim, dim, rng)
        self.neigh_bias = Parameter(nn_init.zeros((dim,)))

    def forward(self, h: Tensor, inputs: GraphInputs) -> Tensor:
        src_plan, dst_plan = inputs.merged_plans()
        messages = gather_rows(h, inputs.merged_src, plan=src_plan)
        h_neigh = segment_mean(
            messages, inputs.merged_dst, inputs.num_nodes, plan=dst_plan
        )
        combined = concat([h, h_neigh + self.neigh_bias], axis=1)
        out = relu(self.linear(combined))
        return l2_normalize_rows(out)


class RGCNConv(Module):
    """Relational GCN: one weight matrix per edge type plus a self weight."""

    def __init__(self, dim: int, edge_types: list[str], rng: np.random.Generator):
        super().__init__()
        self.edge_types = list(edge_types)
        self.relation_weights = {
            et: Parameter(nn_init.xavier_uniform((dim, dim), rng))
            for et in self.edge_types
        }
        self.self_weight = Parameter(nn_init.xavier_uniform((dim, dim), rng))

    def forward(self, h: Tensor, inputs: GraphInputs) -> Tensor:
        agg = None
        for edge_type in self.edge_types:
            if edge_type not in inputs.edges:
                continue
            src, dst = inputs.edges[edge_type]
            if len(src) == 0:
                continue
            weight = self.relation_weights[edge_type]
            src_plan, dst_plan = inputs.edge_plans(edge_type)
            if ops.plans_enabled():
                # Gather-first: transform E edge rows, not all N nodes.
                messages = gather_rows(h, src, plan=src_plan) @ weight
            else:
                messages = gather_rows(h @ weight, src, plan=src_plan)
            summed = segment_sum(messages, dst, inputs.num_nodes, plan=dst_plan)
            inv = Tensor(inputs.edge_inv_counts(edge_type, h.data.dtype))
            contribution = summed * inv
            agg = contribution if agg is None else agg + contribution
        self_term = h @ self.self_weight
        if agg is None:
            return relu(self_term)
        return relu(agg + self_term)


class GATConv(Module):
    """Graph attention layer (single head, as the paper is memory-bound to)."""

    def __init__(self, dim: int, rng: np.random.Generator, negative_slope: float = 0.2):
        super().__init__()
        self.weight = Parameter(nn_init.xavier_uniform((dim, dim), rng))
        # attention vector a, split into destination and source halves
        self.attn_dst = Parameter(nn_init.xavier_uniform((dim, 1), rng))
        self.attn_src = Parameter(nn_init.xavier_uniform((dim, 1), rng))
        self.negative_slope = negative_slope

    def forward(self, h: Tensor, inputs: GraphInputs) -> Tensor:
        src, dst = inputs.with_self_loops()
        src_plan, dst_plan = inputs.loop_plans()
        wh = h @ self.weight
        score_dst = wh @ self.attn_dst
        score_src = wh @ self.attn_src
        logits = leaky_relu(
            gather_rows(score_dst, dst, plan=dst_plan)
            + gather_rows(score_src, src, plan=src_plan),
            self.negative_slope,
        )
        alpha = segment_softmax(logits, dst, inputs.num_nodes, plan=dst_plan)
        messages = gather_rows(wh, src, plan=src_plan) * alpha
        return relu(segment_sum(messages, dst, inputs.num_nodes, plan=dst_plan))


class ParaGraphConv(Module):
    """One ParaGraph embedding layer (paper Algorithm 1, lines 4-10).

    Combines RGCN's per-edge-type grouping, GAT's per-group self-attention,
    and GraphSage's concat-skip update.  The ablation flags disable one
    ingredient at a time:

    * ``use_attention=False`` — replace attention with a mean aggregator,
    * ``group_edge_types=False`` — share one weight/attention across all
      edge types (homogeneous treatment),
    * ``concat_skip=False`` — drop the previous-layer concatenation.
    """

    def __init__(
        self,
        dim: int,
        edge_types: list[str],
        rng: np.random.Generator,
        use_attention: bool = True,
        group_edge_types: bool = True,
        concat_skip: bool = True,
        negative_slope: float = 0.2,
        num_heads: int = 1,
    ):
        super().__init__()
        if not edge_types:
            raise ModelError("ParaGraphConv needs at least one edge type")
        if num_heads < 1 or dim % num_heads != 0:
            raise ModelError(
                f"num_heads={num_heads} must divide the embedding dim {dim}"
            )
        self.use_attention = use_attention
        self.group_edge_types = group_edge_types
        self.concat_skip = concat_skip
        self.negative_slope = negative_slope
        self.num_heads = num_heads
        head_dim = dim // num_heads
        self.edge_types = list(edge_types) if group_edge_types else ["__shared__"]
        # One (dim x head_dim) weight and attention pair per edge type per
        # head; heads are concatenated back to `dim` after aggregation.
        self.type_weights = {
            f"{et}#{head}": Parameter(nn_init.xavier_uniform((dim, head_dim), rng))
            for et in self.edge_types
            for head in range(num_heads)
        }
        self.attn_dst = {
            f"{et}#{head}": Parameter(nn_init.xavier_uniform((head_dim, 1), rng))
            for et in self.edge_types
            for head in range(num_heads)
        }
        self.attn_src = {
            f"{et}#{head}": Parameter(nn_init.xavier_uniform((head_dim, 1), rng))
            for et in self.edge_types
            for head in range(num_heads)
        }
        in_dim = 2 * dim if concat_skip else dim
        self.update = Linear(in_dim, dim, rng)
        self.agg_bias = Parameter(nn_init.zeros((dim,)))

    def _group_key(self, edge_type: str) -> str:
        return edge_type if self.group_edge_types else "__shared__"

    def _aggregate_head(
        self, h: Tensor, inputs: GraphInputs, key: str, edge_type: str,
        src: np.ndarray, dst: np.ndarray, wh_cache: dict,
    ) -> Tensor:
        src_plan, dst_plan = inputs.edge_plans(edge_type)
        if ops.plans_enabled() and self.group_edge_types:
            # Gather-first: each edge type has its own weight, so transform
            # only the 2·E edge-incident rows instead of all N nodes per
            # type.  The per-type h[src]/h[dst] gathers are shared across
            # heads through *wh_cache*.
            hs_key = ("h_src", edge_type)
            if hs_key not in wh_cache:
                wh_cache[hs_key] = gather_rows(h, src, plan=src_plan)
            wh_src = wh_cache[hs_key] @ self.type_weights[key]
            if self.use_attention:
                hd_key = ("h_dst", edge_type)
                if hd_key not in wh_cache:
                    wh_cache[hd_key] = gather_rows(h, dst, plan=dst_plan)
                wh_dst = wh_cache[hd_key] @ self.type_weights[key]
                logits = leaky_relu(
                    wh_dst @ self.attn_dst[key] + wh_src @ self.attn_src[key],
                    self.negative_slope,
                )
                alpha = segment_softmax(
                    logits, dst, inputs.num_nodes, plan=dst_plan
                )
                return segment_sum(
                    wh_src * alpha, dst, inputs.num_nodes, plan=dst_plan
                )
            return segment_mean(wh_src, dst, inputs.num_nodes, plan=dst_plan)
        if key not in wh_cache:
            wh_cache[key] = h @ self.type_weights[key]
        wh = wh_cache[key]
        if self.use_attention:
            logits = leaky_relu(
                gather_rows(wh @ self.attn_dst[key], dst, plan=dst_plan)
                + gather_rows(wh @ self.attn_src[key], src, plan=src_plan),
                self.negative_slope,
            )
            alpha = segment_softmax(logits, dst, inputs.num_nodes, plan=dst_plan)
            messages = gather_rows(wh, src, plan=src_plan) * alpha
            return segment_sum(messages, dst, inputs.num_nodes, plan=dst_plan)
        return segment_mean(
            gather_rows(wh, src, plan=src_plan),
            dst,
            inputs.num_nodes,
            plan=dst_plan,
        )

    def attention_weights(
        self, h: Tensor, inputs: GraphInputs
    ) -> dict[str, np.ndarray]:
        """Per-edge attention coefficients (head 0), for interpretability.

        Returns ``{edge_type: alpha}`` with ``alpha[k]`` the weight the
        destination of edge k assigns to its source within that edge type
        (paper §III: attention weights aid model interpretability).
        """
        if not self.use_attention:
            raise ModelError("attention is disabled on this layer")
        weights: dict[str, np.ndarray] = {}
        for edge_type in sorted(inputs.edges):
            src, dst = inputs.edges[edge_type]
            if len(src) == 0:
                continue
            key = f"{self._group_key(edge_type)}#0"
            src_plan, dst_plan = inputs.edge_plans(edge_type)
            wh = h @ self.type_weights[key]
            logits = leaky_relu(
                gather_rows(wh @ self.attn_dst[key], dst, plan=dst_plan)
                + gather_rows(wh @ self.attn_src[key], src, plan=src_plan),
                self.negative_slope,
            )
            alpha = segment_softmax(logits, dst, inputs.num_nodes, plan=dst_plan)
            weights[edge_type] = alpha.numpy().ravel().copy()
        return weights

    def forward(self, h: Tensor, inputs: GraphInputs) -> Tensor:
        agg = None
        wh_cache: dict[str, Tensor] = {}
        for edge_type in sorted(inputs.edges):
            src, dst = inputs.edges[edge_type]
            if len(src) == 0:
                continue
            group_key = self._group_key(edge_type)
            if f"{group_key}#0" not in self.type_weights:
                raise ModelError(f"no weights for edge type {edge_type!r}")
            heads = [
                self._aggregate_head(
                    h, inputs, f"{group_key}#{head}", edge_type, src, dst, wh_cache
                )
                for head in range(self.num_heads)
            ]
            group = heads[0] if len(heads) == 1 else concat(heads, axis=1)
            agg = group if agg is None else agg + group
        if agg is None:
            agg = h * Tensor(0.0)  # no edges at all: zero neighbourhood
        if self.concat_skip:
            combined = concat([h, agg + self.agg_bias], axis=1)
        else:
            combined = agg + self.agg_bias
        return relu(self.update(combined))


def make_conv(
    name: str,
    dim: int,
    edge_types: list[str],
    rng: np.random.Generator,
    **kwargs,
) -> Module:
    """Construct a convolution layer by model name.

    Raises
    ------
    ModelError
        For unknown names; the message lists the registry.
    """
    registry = {
        "gcn": lambda: GCNConv(dim, rng),
        "sage": lambda: SageConv(dim, rng),
        "rgcn": lambda: RGCNConv(dim, edge_types, rng),
        "gat": lambda: GATConv(dim, rng),
        "paragraph": lambda: ParaGraphConv(dim, edge_types, rng, **kwargs),
    }
    try:
        return registry[name]()
    except KeyError:
        raise ModelError(
            f"unknown conv {name!r}; choose from {sorted(registry)}"
        ) from None


#: Names accepted by :func:`make_conv`, in paper Figure 6 order.
GNN_MODEL_NAMES = ("gcn", "sage", "rgcn", "gat", "paragraph")
