"""Shared-trunk multi-task training: one GNN, thirteen readout heads.

The per-target trainer of :mod:`repro.models.trainer` re-runs the encoder
and all five convolution layers for every one of the paper's 13 targets,
even though those layers see exactly the same merged mega-batch each time.
:class:`SharedTrunk` factors the encoder + convolutions out of
:class:`~repro.models.base.GNNRegressor` so they run **once per epoch**,
with one lightweight :class:`ReadoutHead` per target reading from the
shared embeddings.  :class:`MultiTaskPredictor` owns the training loop:
a single trunk forward per mega-batch, per-target weighted MSE terms
summed into one loss, one optimizer over trunk + heads.

Scaling semantics are shared with the per-target trainer through
:func:`repro.models.trainer.resolve_target_scaler` — CAP stays linear
(with the §IV ``max_v`` ceiling), device parameters train in log space,
and readout depths default to the paper's 4 (CAP) / 2 (device).
"""

from __future__ import annotations

import json
import math
import os
import time

import numpy as np

from repro import obs
from repro.circuits.devices import NODE_TYPES
from repro.data.dataset import CircuitRecord, DatasetBundle
from repro.data.normalize import FeatureScaler, LogTargetScaler, TargetScaler
from repro.data.targets import TargetSpec, target_by_name
from repro.errors import ModelError
from repro.flows.runtime import (
    CallbackList,
    ConsoleProgressReporter,
    EpochMetrics,
    MergedInputsCache,
    RuntimeConfig,
    TrainContext,
    load_checkpoint,
    save_checkpoint,
)
from repro.graph.builder import all_edge_type_names
from repro.graph.features import feature_dim
from repro.models.convs import make_conv
from repro.models.encoder import NodeTypeEncoder
from repro.models.inputs import GraphInputs
from repro.models.trainer import TrainConfig, TrainHistory, resolve_target_scaler
from repro.nn import (
    MLP,
    Adam,
    Module,
    Tensor,
    gather_rows,
    global_grad_norm,
    mse_loss,
    no_grad,
    precision,
)
from repro.nn.plan import SegmentPlan
from repro.rng import stream


class SharedTrunk(Module):
    """Encoder + L convolution layers, computed once per mega-batch.

    Exactly the embedding half of :class:`~repro.models.base.GNNRegressor`
    (same constructors, same parameter shapes, same forward math), minus
    the readout — multiple heads share one forward pass through it.
    """

    def __init__(
        self,
        conv: str,
        feature_dims: dict[str, int],
        rng: np.random.Generator,
        embed_dim: int = 32,
        num_layers: int = 5,
        edge_types: list[str] | None = None,
        conv_kwargs: dict | None = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.conv_name = conv
        self.embed_dim = embed_dim
        edge_types = (
            list(edge_types) if edge_types is not None else all_edge_type_names()
        )
        self.encoder = NodeTypeEncoder(feature_dims, embed_dim, rng)
        self.convs = [
            make_conv(conv, embed_dim, edge_types, rng, **(conv_kwargs or {}))
            for _ in range(num_layers)
        ]

    def forward(self, inputs: GraphInputs) -> Tensor:
        """Node embeddings Z after all convolution layers (Algorithm 1)."""
        h = self.encoder(inputs)
        for conv in self.convs:
            h = conv(h, inputs)
        return h


class ReadoutHead(Module):
    """One target's FC readout over shared trunk embeddings.

    The same MLP stack as ``GNNRegressor.readout`` (hidden width = trunk
    embedding width, 1 output, ReLU); ``num_fc_layers=0`` is a purely
    linear projection.
    """

    def __init__(self, embed_dim: int, num_fc_layers: int, rng: np.random.Generator):
        super().__init__()
        if num_fc_layers < 0:
            raise ValueError("num_fc_layers must be >= 0")
        self.num_fc_layers = num_fc_layers
        readout_dims = (
            [embed_dim, 1] if num_fc_layers == 0
            else [embed_dim] * num_fc_layers + [1]
        )
        self.readout = MLP(readout_dims, rng, activation="relu")

    def forward(
        self,
        z: Tensor,
        node_ids: np.ndarray,
        plan: SegmentPlan | None = None,
    ) -> Tensor:
        """Scaled predictions for the given nodes, shape (n, 1).

        *plan* (a :class:`SegmentPlan` over ``(node_ids, num_nodes)``)
        turns the gather's backward scatter into a sorted reduction; the
        trainer caches one per target.
        """
        return self.readout(gather_rows(z, node_ids, plan))


class MultiTaskModel(Module):
    """A shared trunk plus one readout head per target.

    Parameter names are dotted through the attribute tree
    (``trunk.encoder...``, ``heads.CAP.readout.layers.0.weight``), so the
    generic :meth:`~repro.nn.module.Module.state_dict` /
    :func:`~repro.flows.runtime.save_checkpoint` machinery covers the whole
    ensemble of heads for free.
    """

    def __init__(self, trunk: SharedTrunk, heads: dict[str, ReadoutHead]):
        super().__init__()
        if not heads:
            raise ModelError("MultiTaskModel needs at least one head")
        self.trunk = trunk
        self.heads = dict(heads)

    @property
    def targets(self) -> list[str]:
        return list(self.heads)

    def embed(self, inputs: GraphInputs) -> Tensor:
        """Shared node embeddings (one trunk pass)."""
        return self.trunk(inputs)

    def forward(
        self, inputs: GraphInputs, target: str, node_ids: np.ndarray
    ) -> Tensor:
        """Scaled predictions of one head (single-target convenience path).

        Batch callers should run :meth:`embed` once and apply heads to the
        shared embeddings instead.
        """
        if target not in self.heads:
            raise ModelError(
                f"model has no head for target {target!r}; "
                f"available: {sorted(self.heads)}"
            )
        return self.heads[target](self.embed(inputs), node_ids)


class MultiTaskPredictor:
    """All targets trained against one shared trunk.

    Parameters
    ----------
    conv:
        GNN flavour (``paragraph``, ``sage``, ``rgcn``, ``gat``, ``gcn``).
    targets:
        Target names (or :class:`TargetSpec` objects) to fit heads for.
    config:
        Training hyper-parameters; ``max_v`` applies to the CAP head only,
        mirroring the per-target trainer.
    loss_weights:
        Optional per-target weights for the summed multi-task loss;
        unlisted targets weigh 1.0.  The total loss is
        ``sum_t w_t * mse_t`` — no implicit normalisation, so weights are
        directly comparable across runs.
    """

    def __init__(
        self,
        conv: str = "paragraph",
        targets: list[str | TargetSpec] | None = None,
        config: TrainConfig | None = None,
        loss_weights: dict[str, float] | None = None,
    ):
        from repro.data.targets import ALL_TARGETS

        names = targets if targets is not None else [s.name for s in ALL_TARGETS]
        self.conv = conv
        self.specs = [
            t if isinstance(t, TargetSpec) else target_by_name(t) for t in names
        ]
        if not self.specs:
            raise ModelError("MultiTaskPredictor needs at least one target")
        seen: set[str] = set()
        for spec in self.specs:
            if spec.name in seen:
                raise ModelError(f"duplicate target {spec.name!r}")
            seen.add(spec.name)
        self.config = config or TrainConfig()
        self.loss_weights = dict(loss_weights or {})
        unknown = set(self.loss_weights) - seen
        if unknown:
            raise ModelError(
                f"loss weights for unknown targets: {sorted(unknown)}"
            )
        self.model: MultiTaskModel | None = None
        self.target_scalers: dict[str, TargetScaler] = {}
        self.history = TrainHistory()
        #: per-target unweighted MSE per completed epoch (parallel to
        #: ``history.losses``, which tracks the weighted total)
        self.target_losses: dict[str, list[float]] = {}
        self._scaler: FeatureScaler | None = None
        self._fc_layers: dict[str, int] = {}

    @property
    def target_names(self) -> list[str]:
        return [spec.name for spec in self.specs]

    # ------------------------------------------------------------------
    def _fit_quiet(
        self,
        bundle: DatasetBundle,
        *,
        runtime: RuntimeConfig | None = None,
        inputs_cache: MergedInputsCache | None = None,
        resume_from: str | os.PathLike | None = None,
        batching: str = "mega",
    ) -> "MultiTaskPredictor":
        """Train trunk + heads on the bundle's train split; returns self.

        Engine entry point — reach it through :func:`repro.flows.train`
        with ``TrainPlan(trunk="shared")``.
        """
        with obs.span("train.fit", conv=self.conv, target="multitask"):
            with precision.compute_dtype(self.config.dtype):
                return self._fit(
                    bundle,
                    runtime=runtime,
                    inputs_cache=inputs_cache,
                    resume_from=resume_from,
                    batching=batching,
                )

    def _fit(
        self,
        bundle: DatasetBundle,
        *,
        runtime: RuntimeConfig | None,
        inputs_cache: MergedInputsCache | None,
        resume_from: str | os.PathLike | None,
        batching: str,
    ) -> "MultiTaskPredictor":
        cfg = self.config
        rt = runtime or RuntimeConfig()
        callbacks = rt.build_callbacks()
        if cfg.log_every and not any(
            isinstance(cb, ConsoleProgressReporter) for cb in callbacks
        ):
            callbacks.append(ConsoleProgressReporter(every=cfg.log_every))
        emit = CallbackList(callbacks)

        records = bundle.records("train")
        cache = inputs_cache if inputs_cache is not None else MergedInputsCache()
        inputs = None
        prepared: dict[str, tuple[np.ndarray, Tensor, SegmentPlan]] = {}
        fc_by_target: dict[str, int] = {}
        with obs.span("train.inputs", target="multitask"):
            for spec in self.specs:
                inputs, ids, values = cache.merged_target(
                    records, bundle.scaler, spec, batching
                )
                if len(ids) == 0:
                    raise ModelError(
                        f"no training samples for target {spec.name}"
                    )
                if spec.name == "CAP" and cfg.max_v is not None:
                    keep = values <= cfg.max_v
                    if not keep.any():
                        raise ModelError(
                            f"max_v={cfg.max_v} removed every training sample"
                        )
                    # boolean indexing copies; cached arrays stay untouched
                    ids, values = ids[keep], values[keep]
                scaler, default_fc = resolve_target_scaler(spec, values, cfg)
                self.target_scalers[spec.name] = scaler
                fc_by_target[spec.name] = (
                    cfg.num_fc_layers
                    if cfg.num_fc_layers is not None
                    else default_fc
                )
                prepared[spec.name] = (
                    ids,
                    Tensor(scaler.transform(values).reshape(-1, 1)),
                    SegmentPlan.build(ids, inputs.num_nodes),
                )
        self._fc_layers = fc_by_target
        self._scaler = bundle.scaler
        weights = {
            spec.name: float(self.loss_weights.get(spec.name, 1.0))
            for spec in self.specs
        }

        checkpoint = load_checkpoint(resume_from) if resume_from is not None else None
        if checkpoint is not None:
            ck_conv = checkpoint.meta.get("conv")
            ck_target = checkpoint.meta.get("target")
            ck_targets = checkpoint.meta.get("targets")
            if (
                ck_conv != self.conv
                or ck_target != "multitask"
                or ck_targets != self.target_names
            ):
                raise ModelError(
                    f"checkpoint was written for {ck_conv}/{ck_target} "
                    f"targets={ck_targets}, cannot resume "
                    f"{self.conv}/multitask targets={self.target_names}"
                )

        last_reason = "training diverged"
        for attempt in range(rt.max_retries + 1):
            # Trunk and every head draw from their own named substream, so
            # adding/removing a target never perturbs the others' inits,
            # and retries never replay a diverged initialisation.
            retry_path = ["retry", attempt] if attempt else []
            trunk = SharedTrunk(
                conv=self.conv,
                feature_dims={t: feature_dim(t) for t in NODE_TYPES},
                rng=stream(cfg.run_seed, "model", self.conv, "trunk", *retry_path),
                embed_dim=cfg.embed_dim,
                num_layers=cfg.num_layers,
                conv_kwargs=cfg.conv_kwargs or {},
            )
            heads = {
                spec.name: ReadoutHead(
                    cfg.embed_dim,
                    fc_by_target[spec.name],
                    stream(
                        cfg.run_seed,
                        "model",
                        self.conv,
                        "head",
                        spec.name,
                        *retry_path,
                    ),
                )
                for spec in self.specs
            }
            model = MultiTaskModel(trunk, heads)
            optimizer = Adam(
                model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay
            )
            params = optimizer.params
            history = TrainHistory(attempts=attempt + 1)
            target_losses: dict[str, list[float]] = {
                spec.name: [] for spec in self.specs
            }
            start_epoch = 0
            if checkpoint is not None and attempt == 0:
                model.load_state_dict(checkpoint.params)
                optimizer.load_state_dict(checkpoint.optimizer_state)
                start_epoch = checkpoint.epoch
                history.losses = list(checkpoint.losses)
                history.grad_norms = list(checkpoint.grad_norms)
                history.epoch_seconds = [float("nan")] * start_epoch
                history.resumed_from = start_epoch
                for name, losses in checkpoint.meta.get(
                    "target_losses", {}
                ).items():
                    target_losses[name] = list(losses)

            ctx = TrainContext(
                conv=self.conv,
                target="multitask",
                total_epochs=cfg.epochs,
                attempt=attempt,
                run_seed=cfg.run_seed,
                predictor=self,
                model=model,
            )
            emit.on_train_start(ctx)

            diverged = None
            best_loss = min(history.losses) if history.losses else math.inf
            epochs_since_best = 0
            for epoch in range(start_epoch, cfg.epochs):
                tick = time.perf_counter()
                with obs.span(
                    "train.epoch", epoch=epoch + 1, target="multitask"
                ):
                    optimizer.zero_grad()
                    z = model.embed(inputs)
                    total = None
                    epoch_target_losses = {}
                    for spec in self.specs:
                        ids, targets, plan = prepared[spec.name]
                        pred = model.heads[spec.name](z, ids, plan)
                        term = mse_loss(pred, targets)
                        epoch_target_losses[spec.name] = term.item()
                        weight = weights[spec.name]
                        if weight != 1.0:
                            term = term * weight
                        total = term if total is None else total + term
                    loss_value = total.item()
                    if not math.isfinite(loss_value):
                        diverged = f"non-finite loss {loss_value}"
                    else:
                        total.backward()
                        grad_norm = global_grad_norm(params)
                        if not math.isfinite(grad_norm):
                            diverged = f"non-finite gradient norm {grad_norm}"
                        else:
                            optimizer.step()
                if diverged is not None:
                    emit.on_divergence(ctx, epoch + 1, diverged)
                    break
                seconds = time.perf_counter() - tick
                history.losses.append(loss_value)
                history.grad_norms.append(grad_norm)
                history.epoch_seconds.append(seconds)
                for name, value in epoch_target_losses.items():
                    target_losses[name].append(value)
                emit.on_epoch_end(
                    ctx,
                    EpochMetrics(
                        epoch=epoch + 1,
                        loss=loss_value,
                        grad_norm=grad_norm,
                        lr=optimizer.lr,
                        seconds=seconds,
                        attempt=attempt,
                    ),
                )
                if (
                    rt.checkpoint_dir
                    and rt.checkpoint_every
                    and (epoch + 1) % rt.checkpoint_every == 0
                ):
                    with obs.span(
                        "train.checkpoint", epoch=epoch + 1, target="multitask"
                    ):
                        path = save_checkpoint(
                            os.path.join(
                                rt.checkpoint_dir,
                                f"{self.conv}-multitask"
                                f"-epoch{epoch + 1:05d}.npz",
                            ),
                            model,
                            optimizer,
                            epoch=epoch + 1,
                            attempt=attempt,
                            losses=history.losses,
                            grad_norms=history.grad_norms,
                            meta={
                                "conv": self.conv,
                                "target": "multitask",
                                "targets": self.target_names,
                                "target_losses": target_losses,
                                "run_seed": cfg.run_seed,
                                "epochs": cfg.epochs,
                            },
                        )
                    emit.on_checkpoint(ctx, path)
                if rt.patience:
                    if loss_value < best_loss - rt.min_delta:
                        best_loss = loss_value
                        epochs_since_best = 0
                    else:
                        epochs_since_best += 1
                        if epochs_since_best >= rt.patience:
                            history.stopped_early = True
                            break

            if diverged is None:
                self.model = model
                self.history = history
                self.target_losses = target_losses
                emit.on_train_end(ctx, history)
                return self
            last_reason = diverged
            checkpoint = None  # a diverged lineage is not worth resuming

        raise ModelError(
            f"training {self.conv}/multitask diverged after "
            f"{rt.max_retries + 1} attempt(s): {last_reason}"
        )

    # ------------------------------------------------------------------
    def _require_fit(self) -> MultiTaskModel:
        if self.model is None or not self.target_scalers:
            raise ModelError(
                "predictor is not fitted; train it via repro.flows.train"
            )
        return self.model

    def _spec(self, target: str) -> TargetSpec:
        for spec in self.specs:
            if spec.name == target:
                return spec
        raise ModelError(
            f"predictor has no head for target {target!r}; "
            f"available: {self.target_names}"
        )

    def predict_graph(
        self, graph, target: str, inputs: GraphInputs | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(node_ids, SI-unit predictions) of one head for a graph.

        Predictions are clamped at zero — capacitances and geometries are
        physical quantities.
        """
        model = self._require_fit()
        spec = self._spec(target)
        if inputs is None:
            inputs = GraphInputs.from_graph(graph, self._scaler)
        ids = spec.node_ids(graph)
        with no_grad():
            scaled = model(inputs, spec.name, ids).numpy().ravel()
        return ids, np.maximum(self.target_scalers[spec.name].inverse(scaled), 0.0)

    def predict_all_graph(
        self, graph, inputs: GraphInputs | None = None
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """All heads' (node_ids, SI predictions) from one trunk pass."""
        model = self._require_fit()
        if inputs is None:
            inputs = GraphInputs.from_graph(graph, self._scaler)
        out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        with no_grad():
            z = model.embed(inputs)
            for spec in self.specs:
                ids = spec.node_ids(graph)
                scaled = model.heads[spec.name](z, ids).numpy().ravel()
                out[spec.name] = (
                    ids,
                    np.maximum(
                        self.target_scalers[spec.name].inverse(scaled), 0.0
                    ),
                )
        return out

    def predict(
        self, record: CircuitRecord, target: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(node_ids, predictions in SI units) for one dataset record."""
        return self.predict_graph(record.graph, target)

    def evaluate(
        self,
        records: list[CircuitRecord],
        target: str,
        mape_eps: float = 0.0,
    ) -> dict[str, float]:
        """Pooled R²/MAE/MAPE of one head over several circuits."""
        from repro.analysis.metrics import summarize

        spec = self._spec(target)
        truths, preds = [], []
        for record in records:
            _, truth = record.target_arrays(spec)
            _, pred = self.predict(record, target)
            truths.append(truth)
            preds.append(pred)
        return summarize(
            np.concatenate(truths), np.concatenate(preds), mape_eps=mape_eps
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write trunk + all heads + scalers + config to one .npz file."""
        model = self._require_fit()
        cfg = self.config
        # weights are stored in float64 regardless of the training dtype so
        # artifacts stay portable across precision policies
        payload: dict[str, np.ndarray] = {
            f"param/{name}": value.astype(np.float64, copy=False)  # staticcheck: ignore[precision-policy]
            for name, value in model.state_dict().items()
        }
        per_target = {}
        for spec in self.specs:
            scaler = self.target_scalers[spec.name]
            entry = {
                "target_scale": scaler.scale,
                "scaler_kind": (
                    "log" if isinstance(scaler, LogTargetScaler) else "linear"
                ),
                "num_fc_layers": self._fc_layers[spec.name],
            }
            if isinstance(scaler, LogTargetScaler):
                entry["target_scaler_floor"] = scaler.floor
            per_target[spec.name] = entry
        meta = {
            "conv": self.conv,
            "target": "multitask",
            "targets": self.target_names,
            "per_target": per_target,
            "loss_weights": self.loss_weights,
            "embed_dim": cfg.embed_dim,
            "num_layers": cfg.num_layers,
            "conv_kwargs": cfg.conv_kwargs or {},
            "max_v": cfg.max_v,
            "weight_decay": cfg.weight_decay,
            "log_device_targets": cfg.log_device_targets,
            "epochs": cfg.epochs,
            "lr": cfg.lr,
            "run_seed": cfg.run_seed,
            "dtype": cfg.dtype,
        }
        payload["meta"] = np.array(json.dumps(meta))
        for type_name, mean in self._scaler.means.items():
            payload[f"fmean/{type_name}"] = mean
            payload[f"fstd/{type_name}"] = self._scaler.stds[type_name]
        np.savez(path, **payload)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "MultiTaskPredictor":
        """Load a predictor saved by :meth:`save`; ready for prediction."""
        with np.load(path) as archive:
            meta = json.loads(str(archive["meta"]))
            if meta.get("target") != "multitask":
                raise ModelError(
                    f"{os.fspath(path)!r} is not a multitask artifact "
                    f"(target={meta.get('target')!r})"
                )
            base_cfg = TrainConfig()
            predictor = cls(
                conv=meta["conv"],
                targets=meta["targets"],
                config=TrainConfig(
                    embed_dim=meta["embed_dim"],
                    num_layers=meta["num_layers"],
                    conv_kwargs=meta.get("conv_kwargs") or {},
                    max_v=meta.get("max_v"),
                    weight_decay=meta.get("weight_decay", base_cfg.weight_decay),
                    log_device_targets=meta.get(
                        "log_device_targets", base_cfg.log_device_targets
                    ),
                    epochs=meta.get("epochs", base_cfg.epochs),
                    lr=meta.get("lr", base_cfg.lr),
                    run_seed=meta.get("run_seed", base_cfg.run_seed),
                    dtype=meta.get("dtype", base_cfg.dtype),
                ),
                loss_weights=meta.get("loss_weights") or None,
            )
            per_target = meta["per_target"]
            # Construction RNGs are throwaways — weights are overwritten by
            # load_state_dict below.
            trunk = SharedTrunk(
                conv=meta["conv"],
                feature_dims={t: feature_dim(t) for t in NODE_TYPES},
                rng=stream(0, "model", meta["conv"], "trunk"),
                embed_dim=meta["embed_dim"],
                num_layers=meta["num_layers"],
                conv_kwargs=meta.get("conv_kwargs") or {},
            )
            heads = {}
            for name in meta["targets"]:
                entry = per_target[name]
                heads[name] = ReadoutHead(
                    meta["embed_dim"],
                    int(entry["num_fc_layers"]),
                    stream(0, "model", meta["conv"], "head", name),
                )
                predictor._fc_layers[name] = int(entry["num_fc_layers"])
                if entry.get("scaler_kind") == "log":
                    predictor.target_scalers[name] = LogTargetScaler(
                        float(entry["target_scale"]),
                        floor=float(
                            entry.get(
                                "target_scaler_floor", LogTargetScaler(1.0).floor
                            )
                        ),
                    )
                else:
                    predictor.target_scalers[name] = TargetScaler(
                        float(entry["target_scale"])
                    )
            predictor.model = MultiTaskModel(trunk, heads)
            predictor.model.load_state_dict(
                {
                    name[len("param/"):]: archive[name]
                    for name in archive.files
                    if name.startswith("param/")
                }
            )
            scaler = FeatureScaler()
            for name in archive.files:
                if name.startswith("fmean/"):
                    type_name = name[len("fmean/"):]
                    scaler.means[type_name] = archive[name]
                    scaler.stds[type_name] = archive[f"fstd/{type_name}"]
            predictor._scaler = scaler
        return predictor
