"""Gradient-boosted regression trees (the paper's XGBoost baseline).

A from-scratch implementation: CART regression trees grown by exact greedy
variance-reduction splitting, boosted on squared-error residuals with
shrinkage.  Feature subsampling and a minimum-leaf guard keep it honest on
the small feature sets the baseline sees (paper: "based on node features
alone").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass
class _Node:
    """A tree node; leaves carry ``value``, internal nodes a split."""

    value: float = 0.0
    feature: int = -1
    threshold: float = 0.0
    gain: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART regression tree with exact greedy splits."""

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 5,
        min_gain: float = 1e-12,
    ):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.root: _Node | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        self.root = self._grow(X, y, depth=0)
        return self

    def feature_gains(self, num_features: int) -> np.ndarray:
        """Total variance-reduction gain per feature (importance)."""
        gains = np.zeros(num_features)

        def walk(node: _Node | None) -> None:
            if node is None or node.is_leaf:
                return
            gains[node.feature] += node.gain
            walk(node.left)
            walk(node.right)

        walk(self.root)
        return gains

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float, float] | None:
        n, d = X.shape
        total_sum = y.sum()
        total_sq = (y * y).sum()
        parent_sse = total_sq - total_sum**2 / n
        best = None
        best_gain = self.min_gain
        for feature in range(d):
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys * ys)
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i - 1] == xs[i]:
                    continue  # cannot split between equal values
                if i >= n:
                    break
                left_sse = csq[i - 1] - csum[i - 1] ** 2 / i
                right_n = n - i
                right_sum = total_sum - csum[i - 1]
                right_sse = (total_sq - csq[i - 1]) - right_sum**2 / right_n
                gain = parent_sse - left_sse - right_sse
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, (xs[i - 1] + xs[i]) / 2.0, gain)
        return best

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold, gain = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.gain = gain
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise ModelError("RegressionTree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(len(X), dtype=np.float64)
        # iterative traversal per row (tree depth is tiny)
        for i, row in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class GradientBoostedTrees:
    """Squared-error gradient boosting with shrinkage and subsampling."""

    def __init__(
        self,
        n_estimators: int = 150,
        max_depth: int = 4,
        learning_rate: float = 0.1,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        seed: int = 0,
    ):
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.base_: float = 0.0
        self.trees_: list[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise ModelError(f"bad GBDT inputs: X{X.shape}, y{y.shape}")
        rng = np.random.default_rng(self.seed)
        self.base_ = float(y.mean())
        self.trees_ = []
        pred = np.full(len(y), self.base_)
        for _ in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0:
                take = rng.random(len(y)) < self.subsample
                if take.sum() < 2 * self.min_samples_leaf:
                    take[:] = True
            else:
                take = np.ones(len(y), dtype=bool)
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(X[take], residual[take])
            update = tree.predict(X)
            pred = pred + self.learning_rate * update
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise ModelError("GradientBoostedTrees is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.full(len(X), self.base_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(X)
        return out

    def feature_importances(self, num_features: int) -> np.ndarray:
        """Gain-based feature importances, normalised to sum to 1.

        Raises
        ------
        ModelError
            If the model is not fitted.
        """
        if not self.trees_:
            raise ModelError("GradientBoostedTrees is not fitted")
        gains = np.zeros(num_features)
        for tree in self.trees_:
            gains += tree.feature_gains(num_features)
        total = gains.sum()
        return gains / total if total > 0 else gains
