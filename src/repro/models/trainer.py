"""Training driver: one model per target, trained on the merged train split.

Reproduces the paper's §V setup: ADAM at lr 0.01, MSE loss, 300 epochs,
embedding width F=32, depth L=5, readout of 4 FC layers for the CAP model
and 2 for device parameters.  CAP models support the ``max_v`` clamp of §IV
(training samples above ``max_v`` are dropped), which is the building block
of ensemble modeling.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.data.dataset import CircuitRecord, DatasetBundle
from repro.data.normalize import (
    FeatureScaler,
    LogTargetScaler,
    TargetScaler,
    log_scaler_from_values,
    scaler_from_std,
)
from repro.data.targets import TargetSpec, target_by_name
from repro.errors import ModelError
from repro.flows.runtime import (
    CallbackList,
    ConsoleProgressReporter,
    EpochMetrics,
    MergedInputsCache,
    RuntimeConfig,
    TrainContext,
    load_checkpoint,
    save_checkpoint,
)
from repro.graph.features import feature_dim
from repro.graph.hetero import merge_graphs
from repro.analysis.metrics import summarize
from repro.circuits.devices import NODE_TYPES
from repro.models.base import GNNRegressor
from repro.models.inputs import GraphInputs
from repro.nn import Adam, Tensor, global_grad_norm, mse_loss, no_grad, precision
from repro.rng import stream


@dataclass
class TrainConfig:
    """Hyper-parameters (defaults = paper §V)."""

    embed_dim: int = 32
    num_layers: int = 5
    num_fc_layers: int | None = None  # None -> 4 for CAP, 2 for device targets
    epochs: int = 300
    lr: float = 0.01
    run_seed: int = 0
    max_v: float | None = None  # §IV training clamp (CAP only), in farads
    conv_kwargs: dict = field(default_factory=dict)
    log_every: int = 0
    #: The paper trains without L2 ("training sets sufficiently large"); at
    #: this reproduction's much smaller dataset scale a little decay keeps
    #: the high-capacity relational models from memorising layout noise.
    weight_decay: float = 1e-4
    #: Device-parameter values span orders of magnitude (areas scale with
    #: NF x NFIN x MULTI); training them in log space keeps small devices
    #: accurate.  CAP always trains linearly — the §IV ensemble behaviour
    #: (Fig. 5) depends on it.
    log_device_targets: bool = True
    #: Compute precision for training (``"float64"`` or ``"float32"``).
    #: float64 is the default and bit-compatible with historical runs;
    #: float32 halves memory bandwidth on the segment kernels at ~1e-3
    #: relative loss drift (see docs/performance.md).  Saved models are
    #: always stored in float64 regardless of this knob.
    dtype: str = "float64"


@dataclass
class TrainHistory:
    """Per-epoch training instrumentation.

    ``losses`` keeps its historical meaning (one entry per completed
    epoch); ``grad_norms`` and ``epoch_seconds`` run parallel to it.
    ``attempts`` counts training attempts including divergence retries,
    and ``resumed_from`` is the epoch a checkpoint resume continued from
    (0 for a fresh run).
    """

    losses: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    attempts: int = 1
    stopped_early: bool = False
    resumed_from: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def resolve_target_scaler(
    spec: TargetSpec, values: np.ndarray, cfg: TrainConfig
) -> tuple[TargetScaler, int]:
    """(target scaler, paper-default readout depth) for one target.

    Shared by the per-target trainer and the multi-task trunk trainer so
    both scale identically — the §IV ensemble semantics (CAP linear with a
    ``max_v`` ceiling) and the log-space device targets live here.
    """
    if spec.name == "CAP":
        # CAP must train linearly: the §IV ensemble phenomenon (Fig. 5)
        # depends on small values drowning in a full-range model's error.
        scale = cfg.max_v if cfg.max_v is not None else float(values.max())
        return TargetScaler(scale), 4
    if spec.kind == "net":
        # other net targets (RES extension) span decades with no
        # ensemble semantics: log space keeps small nets accurate
        return log_scaler_from_values(values), 4
    if cfg.log_device_targets:
        return log_scaler_from_values(values), 2
    return scaler_from_std(values), 2


def _merged_inputs(
    records: list[CircuitRecord],
    bundle: DatasetBundle,
    spec: TargetSpec,
    batching: str = "mega",
) -> tuple[GraphInputs, np.ndarray, np.ndarray]:
    """Merged GraphInputs + target ids/values with node-id offsets applied.

    ``batching="mega"`` disjoint-unions per-record :class:`GraphInputs`
    (stitched segment plans, no re-sort); ``"graph"`` merges the
    :class:`HeteroGraph` objects first (legacy path).  Both are
    bit-identical.
    """
    if batching == "mega":
        batch = GraphInputs.merge_graphs(
            [GraphInputs.from_record(record, bundle.scaler) for record in records]
        )
        inputs, offsets = batch.inputs, batch.offsets
    else:
        merged = merge_graphs([record.graph for record in records])
        inputs = GraphInputs.from_graph(merged, bundle.scaler)
        offsets = np.cumsum([0] + [r.graph.num_nodes for r in records[:-1]])
    ids, values = [], []
    for record, offset in zip(records, offsets):
        node_ids, vals = record.target_arrays(spec)
        ids.append(node_ids + int(offset))
        values.append(vals)
    return inputs, np.concatenate(ids), np.concatenate(values)


class TargetPredictor:
    """One trained model for one prediction target.

    Parameters
    ----------
    conv:
        GNN flavour (``paragraph``, ``sage``, ``rgcn``, ``gat``, ``gcn``).
    target:
        Target name (``CAP``, ``LDE3``, ``SA``...) or a :class:`TargetSpec`.
    config:
        Training hyper-parameters.
    """

    def __init__(
        self,
        conv: str = "paragraph",
        target: str | TargetSpec = "CAP",
        config: TrainConfig | None = None,
    ):
        self.conv = conv
        self.spec = target if isinstance(target, TargetSpec) else target_by_name(target)
        self.config = config or TrainConfig()
        self.model: GNNRegressor | None = None
        self.target_scaler: TargetScaler | None = None
        self.history = TrainHistory()
        self._scaler = None  # feature scaler, captured from the bundle at fit
        self._fc_layers: int | None = None  # readout depth resolved at fit

    # ------------------------------------------------------------------
    def fit(
        self,
        bundle: DatasetBundle,
        *,
        runtime: RuntimeConfig | None = None,
        inputs_cache: MergedInputsCache | None = None,
        resume_from: str | os.PathLike | None = None,
    ) -> "TargetPredictor":
        """Deprecated: train via :func:`repro.flows.train` instead.

        Routes through the :class:`~repro.flows.plan.TrainPlan` engine with
        this predictor injected, so the resulting weights, history and
        checkpoints are bit-identical to the historical direct ``fit``.
        Emits a :class:`DeprecationWarning` once per process.
        """
        from repro.api.compat import warn_deprecated

        warn_deprecated(
            "TargetPredictor.fit",
            "repro.flows.train(bundle, TrainPlan(targets=[...], ...))",
        )
        from repro.flows.plan import TrainPlan, _train_with_predictors

        plan = TrainPlan(
            targets=(self.spec.name,),
            conv=self.conv,
            config=self.config,
            runtime=runtime,
            resume_from=os.fspath(resume_from) if resume_from is not None else None,
        )
        _train_with_predictors(
            bundle,
            plan,
            inputs_cache=inputs_cache,
            predictors={self.spec.name: self},
        )
        return self

    def _fit_quiet(
        self,
        bundle: DatasetBundle,
        *,
        runtime: RuntimeConfig | None = None,
        inputs_cache: MergedInputsCache | None = None,
        resume_from: str | os.PathLike | None = None,
        batching: str = "mega",
    ) -> "TargetPredictor":
        """Train on the bundle's train split; returns self.

        The non-deprecated engine entry point — :func:`repro.flows.train`
        lands here for every per-target job.

        Parameters
        ----------
        runtime:
            Instrumentation and robustness knobs (callbacks, divergence
            retries, early stopping, checkpointing).  Defaults preserve the
            historical behaviour: plain full-length training.
        inputs_cache:
            A shared :class:`MergedInputsCache`; when several predictors
            train on the same bundle this avoids re-merging the training
            graphs per target.
        resume_from:
            Path of a checkpoint written by a previous fit of the same
            conv/target; training continues from its epoch counter with the
            exact optimizer state, reproducing the uninterrupted run
            bit-for-bit.
        batching:
            Merged-input construction mode: ``"mega"`` disjoint-unions
            per-graph :class:`GraphInputs` (stitched plans), ``"graph"``
            merges the hetero graphs first.  Bit-identical outputs.
        """
        with obs.span("train.fit", conv=self.conv, target=self.spec.name):
            with precision.compute_dtype(self.config.dtype):
                return self._fit(
                    bundle,
                    runtime=runtime,
                    inputs_cache=inputs_cache,
                    resume_from=resume_from,
                    batching=batching,
                )

    def _fit(
        self,
        bundle: DatasetBundle,
        *,
        runtime: RuntimeConfig | None,
        inputs_cache: MergedInputsCache | None,
        resume_from: str | os.PathLike | None,
        batching: str = "mega",
    ) -> "TargetPredictor":
        cfg = self.config
        rt = runtime or RuntimeConfig()
        callbacks = rt.build_callbacks()
        if cfg.log_every and not any(
            isinstance(cb, ConsoleProgressReporter) for cb in callbacks
        ):
            # legacy knob: route the old ad-hoc print through the reporter
            callbacks.append(ConsoleProgressReporter(every=cfg.log_every))
        emit = CallbackList(callbacks)

        records = bundle.records("train")
        with obs.span("train.inputs", target=self.spec.name):
            if inputs_cache is not None:
                inputs, ids, values = inputs_cache.merged_target(
                    records, bundle.scaler, self.spec, batching
                )
            else:
                inputs, ids, values = _merged_inputs(
                    records, bundle, self.spec, batching
                )
        if len(ids) == 0:
            raise ModelError(f"no training samples for target {self.spec.name}")

        if cfg.max_v is not None:
            keep = values <= cfg.max_v
            if not keep.any():
                raise ModelError(
                    f"max_v={cfg.max_v} removed every training sample"
                )
            # boolean indexing copies, so cached arrays stay untouched
            ids, values = ids[keep], values[keep]

        # An explicit num_fc_layers (including 0 = linear readout) is always
        # honoured; only None falls back to the paper depths.
        self.target_scaler, default_fc = resolve_target_scaler(
            self.spec, values, cfg
        )
        fc_layers = cfg.num_fc_layers if cfg.num_fc_layers is not None else default_fc
        conv_kwargs = cfg.conv_kwargs if cfg.conv_kwargs is not None else {}
        self._fc_layers = fc_layers
        self._scaler = bundle.scaler

        targets = Tensor(self.target_scaler.transform(values).reshape(-1, 1))
        checkpoint = load_checkpoint(resume_from) if resume_from is not None else None
        if checkpoint is not None:
            ck_conv = checkpoint.meta.get("conv")
            ck_target = checkpoint.meta.get("target")
            if ck_conv != self.conv or ck_target != self.spec.name:
                raise ModelError(
                    f"checkpoint was written for {ck_conv}/{ck_target}, "
                    f"cannot resume {self.conv}/{self.spec.name}"
                )

        last_reason = "training diverged"
        for attempt in range(rt.max_retries + 1):
            # Re-seeded retries draw from a fresh named substream so a
            # diverged initialisation is never replayed.
            seed_path = ["model", self.conv, self.spec.name]
            if attempt:
                seed_path += ["retry", attempt]
            rng = stream(cfg.run_seed, *seed_path)
            model = GNNRegressor(
                conv=self.conv,
                feature_dims={t: feature_dim(t) for t in NODE_TYPES},
                rng=rng,
                embed_dim=cfg.embed_dim,
                num_layers=cfg.num_layers,
                num_fc_layers=fc_layers,
                conv_kwargs=conv_kwargs,
            )
            optimizer = Adam(
                model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay
            )
            params = optimizer.params
            history = TrainHistory(attempts=attempt + 1)
            start_epoch = 0
            if checkpoint is not None and attempt == 0:
                model.load_state_dict(checkpoint.params)
                optimizer.load_state_dict(checkpoint.optimizer_state)
                start_epoch = checkpoint.epoch
                history.losses = list(checkpoint.losses)
                history.grad_norms = list(checkpoint.grad_norms)
                history.epoch_seconds = [float("nan")] * start_epoch
                history.resumed_from = start_epoch

            ctx = TrainContext(
                conv=self.conv,
                target=self.spec.name,
                total_epochs=cfg.epochs,
                attempt=attempt,
                run_seed=cfg.run_seed,
                predictor=self,
                model=model,
            )
            emit.on_train_start(ctx)

            diverged = None
            best_loss = min(history.losses) if history.losses else math.inf
            epochs_since_best = 0
            for epoch in range(start_epoch, cfg.epochs):
                tick = time.perf_counter()
                with obs.span(
                    "train.epoch", epoch=epoch + 1, target=self.spec.name
                ):
                    optimizer.zero_grad()
                    pred = model(inputs, ids)
                    loss = mse_loss(pred, targets)
                    loss_value = loss.item()
                    if not math.isfinite(loss_value):
                        diverged = f"non-finite loss {loss_value}"
                    else:
                        loss.backward()
                        grad_norm = global_grad_norm(params)
                        if not math.isfinite(grad_norm):
                            diverged = f"non-finite gradient norm {grad_norm}"
                        else:
                            optimizer.step()
                if diverged is not None:
                    emit.on_divergence(ctx, epoch + 1, diverged)
                    break
                seconds = time.perf_counter() - tick
                history.losses.append(loss_value)
                history.grad_norms.append(grad_norm)
                history.epoch_seconds.append(seconds)
                emit.on_epoch_end(
                    ctx,
                    EpochMetrics(
                        epoch=epoch + 1,
                        loss=loss_value,
                        grad_norm=grad_norm,
                        lr=optimizer.lr,
                        seconds=seconds,
                        attempt=attempt,
                    ),
                )
                if (
                    rt.checkpoint_dir
                    and rt.checkpoint_every
                    and (epoch + 1) % rt.checkpoint_every == 0
                ):
                    with obs.span(
                        "train.checkpoint",
                        epoch=epoch + 1,
                        target=self.spec.name,
                    ):
                        path = save_checkpoint(
                            os.path.join(
                                rt.checkpoint_dir,
                                f"{self.conv}-{self.spec.name}"
                                f"-epoch{epoch + 1:05d}.npz",
                            ),
                            model,
                            optimizer,
                            epoch=epoch + 1,
                            attempt=attempt,
                            losses=history.losses,
                            grad_norms=history.grad_norms,
                            meta={
                                "conv": self.conv,
                                "target": self.spec.name,
                                "run_seed": cfg.run_seed,
                                "epochs": cfg.epochs,
                            },
                        )
                    emit.on_checkpoint(ctx, path)
                if rt.patience:
                    if loss_value < best_loss - rt.min_delta:
                        best_loss = loss_value
                        epochs_since_best = 0
                    else:
                        epochs_since_best += 1
                        if epochs_since_best >= rt.patience:
                            history.stopped_early = True
                            break

            if diverged is None:
                self.model = model
                self.history = history
                emit.on_train_end(ctx, history)
                return self
            last_reason = diverged
            checkpoint = None  # a diverged lineage is not worth resuming

        raise ModelError(
            f"training {self.conv}/{self.spec.name} diverged after "
            f"{rt.max_retries + 1} attempt(s): {last_reason}"
        )

    # ------------------------------------------------------------------
    def _require_fit(self) -> GNNRegressor:
        if self.model is None or self.target_scaler is None:
            raise ModelError("predictor is not fitted; call fit() first")
        return self.model

    def predict_graph(
        self, graph, inputs: GraphInputs | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(node_ids, SI-unit predictions) for a heterogeneous graph.

        Predictions are clamped at zero — capacitances and geometries are
        physical quantities.  ``inputs`` may carry pre-scaled
        :class:`GraphInputs` for *graph* (the serving cache path); when
        omitted they are built here.
        """
        model = self._require_fit()
        if inputs is None:
            inputs = GraphInputs.from_graph(graph, self._scaler)
        ids = self.spec.node_ids(graph)
        with no_grad():
            scaled = model(inputs, ids).numpy().ravel()
        return ids, np.maximum(self.target_scaler.inverse(scaled), 0.0)

    def predict(self, record: CircuitRecord) -> tuple[np.ndarray, np.ndarray]:
        """(node_ids, predictions in SI units) for one dataset record."""
        return self.predict_graph(record.graph)

    def predict_named(self, record: CircuitRecord) -> dict[str, float]:
        """Deprecated: predictions keyed by net/instance name.

        Use :meth:`repro.api.Engine.predict` /
        :meth:`~repro.api.PredictionResult.named` instead.
        """
        from repro.api.compat import named_from_arrays, warn_deprecated

        warn_deprecated(
            "TargetPredictor.predict_named",
            "repro.api.Engine.predict(...).named(target)",
        )
        return named_from_arrays(record.graph, *self.predict(record))

    def predict_circuit(self, circuit) -> dict[str, float]:
        """Deprecated: predict straight from a schematic (no layout).

        Use :meth:`repro.api.Engine.predict` (cached, batchable) or
        :func:`repro.api.predict_one` instead.
        """
        from repro.api.compat import warn_deprecated
        from repro.api.engine import predict_one

        warn_deprecated(
            "TargetPredictor.predict_circuit",
            "repro.api.Engine.predict(circuit).named(target)",
        )
        return predict_one(self, circuit).named(self.spec.name)

    def attention_report(
        self, record: CircuitRecord, layer: int = 0
    ) -> list[tuple[str, str, str, float]]:
        """First-layer attention weights as (edge_type, src, dst, alpha) rows.

        Only available for the ParaGraph model with attention enabled;
        sorted by descending weight for quick inspection.
        """
        model = self._require_fit()
        conv = model.convs[layer]
        if not hasattr(conv, "attention_weights"):
            raise ModelError(f"conv {self.conv!r} does not expose attention")
        inputs = GraphInputs.from_record(record, self._scaler)
        with no_grad():
            h = model.encoder(inputs)
            for earlier in model.convs[:layer]:
                h = earlier(h, inputs)
            weights = conv.attention_weights(h, inputs)
        if not weights:
            return []
        # Array-side assembly: gather edge endpoint names per edge type,
        # concatenate across types, and order everything with one argsort
        # instead of touching each edge from Python.
        names = np.asarray(record.graph.node_name_of, dtype=object)
        type_cols, src_cols, dst_cols, alpha_cols = [], [], [], []
        for edge_type, alpha in weights.items():
            src, dst = inputs.edges[edge_type]
            type_cols.append(np.full(len(src), edge_type, dtype=object))
            src_cols.append(names[src])
            dst_cols.append(names[dst])
            alpha_cols.append(np.asarray(alpha, dtype=np.float64))  # staticcheck: ignore[precision-policy] -- report output, not compute
        types = np.concatenate(type_cols)
        srcs = np.concatenate(src_cols)
        dsts = np.concatenate(dst_cols)
        alphas = np.concatenate(alpha_cols)
        # stable sort keeps the historical tie order (edge-type insertion,
        # then edge index) for equal weights
        order = np.argsort(-alphas, kind="stable")
        return [
            (types[k], srcs[k], dsts[k], float(alphas[k])) for k in order
        ]

    def embed_record(self, record: CircuitRecord) -> tuple[np.ndarray, np.ndarray]:
        """(target node_ids, embedding rows) — used for t-SNE (Fig. 8)."""
        model = self._require_fit()
        inputs = GraphInputs.from_record(record, self._scaler)
        ids = self.spec.node_ids(record.graph)
        with no_grad():
            z = model.embed(inputs).numpy()
        return ids, z[ids]

    def evaluate(
        self, records: list[CircuitRecord], mape_eps: float = 0.0
    ) -> dict[str, float]:
        """Pooled R²/MAE/MAPE over several circuits."""
        truths, preds = [], []
        for record in records:
            _, truth = record.target_arrays(self.spec)
            _, pred = self.predict(record)
            truths.append(truth)
            preds.append(pred)
        return summarize(
            np.concatenate(truths), np.concatenate(preds), mape_eps=mape_eps
        )

    def collect(
        self, records: list[CircuitRecord]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(ground truth, prediction) arrays pooled over records."""
        truths, preds = [], []
        for record in records:
            _, truth = record.target_arrays(self.spec)
            _, pred = self.predict(record)
            truths.append(truth)
            preds.append(pred)
        return np.concatenate(truths), np.concatenate(preds)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write the trained model (weights + both scalers + config) to .npz."""
        model = self._require_fit()
        cfg = self.config
        # weights are stored in float64 regardless of the training dtype so
        # artifacts stay portable across precision policies
        payload: dict[str, np.ndarray] = {
            f"param/{name}": value.astype(np.float64, copy=False)  # staticcheck: ignore[precision-policy]
            for name, value in model.state_dict().items()
        }
        fc_layers = (
            self._fc_layers
            if self._fc_layers is not None
            else len(model.readout.layers)
        )
        meta = {
            "conv": self.conv,
            "target": self.spec.name,
            "target_scale": self.target_scaler.scale,
            "scaler_kind": (
                "log" if isinstance(self.target_scaler, LogTargetScaler) else "linear"
            ),
            "embed_dim": cfg.embed_dim,
            "num_layers": cfg.num_layers,
            "num_fc_layers": fc_layers,
            "conv_kwargs": cfg.conv_kwargs or {},
            # Training provenance that load() must restore: without max_v a
            # reloaded CAP range model loses its ceiling and a saved §IV
            # ensemble cannot be reassembled.
            "max_v": cfg.max_v,
            "weight_decay": cfg.weight_decay,
            "log_device_targets": cfg.log_device_targets,
            "epochs": cfg.epochs,
            "lr": cfg.lr,
            "run_seed": cfg.run_seed,
            "dtype": cfg.dtype,
        }
        if isinstance(self.target_scaler, LogTargetScaler):
            meta["target_scaler_floor"] = self.target_scaler.floor
        payload["meta"] = np.array(json.dumps(meta))
        for type_name, mean in self._scaler.means.items():
            payload[f"fmean/{type_name}"] = mean
            payload[f"fstd/{type_name}"] = self._scaler.stds[type_name]
        np.savez(path, **payload)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "TargetPredictor":
        """Load a predictor saved by :meth:`save`; ready for prediction."""
        with np.load(path) as archive:
            meta = json.loads(str(archive["meta"]))
            base_cfg = TrainConfig()
            predictor = cls(
                conv=meta["conv"],
                target=meta["target"],
                config=TrainConfig(
                    embed_dim=meta["embed_dim"],
                    num_layers=meta["num_layers"],
                    num_fc_layers=meta["num_fc_layers"],
                    conv_kwargs=meta.get("conv_kwargs") or {},
                    max_v=meta.get("max_v"),
                    weight_decay=meta.get("weight_decay", base_cfg.weight_decay),
                    log_device_targets=meta.get(
                        "log_device_targets", base_cfg.log_device_targets
                    ),
                    epochs=meta.get("epochs", base_cfg.epochs),
                    lr=meta.get("lr", base_cfg.lr),
                    run_seed=meta.get("run_seed", base_cfg.run_seed),
                    dtype=meta.get("dtype", base_cfg.dtype),
                ),
            )
            predictor._fc_layers = meta["num_fc_layers"]
            rng = stream(0, "model", predictor.conv, predictor.spec.name)
            predictor.model = GNNRegressor(
                conv=predictor.conv,
                feature_dims={t: feature_dim(t) for t in NODE_TYPES},
                rng=rng,
                embed_dim=meta["embed_dim"],
                num_layers=meta["num_layers"],
                num_fc_layers=meta["num_fc_layers"],
                conv_kwargs=meta.get("conv_kwargs") or {},
            )
            predictor.model.load_state_dict(
                {
                    name[len("param/"):]: archive[name]
                    for name in archive.files
                    if name.startswith("param/")
                }
            )
            if meta.get("scaler_kind") == "log":
                predictor.target_scaler = LogTargetScaler(
                    float(meta["target_scale"]),
                    floor=float(
                        meta.get("target_scaler_floor", LogTargetScaler(1.0).floor)
                    ),
                )
            else:
                predictor.target_scaler = TargetScaler(float(meta["target_scale"]))
            scaler = FeatureScaler()
            for name in archive.files:
                if name.startswith("fmean/"):
                    type_name = name[len("fmean/"):]
                    scaler.means[type_name] = archive[name]
                    scaler.stds[type_name] = archive[f"fstd/{type_name}"]
            predictor._scaler = scaler
        return predictor
