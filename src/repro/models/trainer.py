"""Training driver: one model per target, trained on the merged train split.

Reproduces the paper's §V setup: ADAM at lr 0.01, MSE loss, 300 epochs,
embedding width F=32, depth L=5, readout of 4 FC layers for the CAP model
and 2 for device parameters.  CAP models support the ``max_v`` clamp of §IV
(training samples above ``max_v`` are dropped), which is the building block
of ensemble modeling.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import CircuitRecord, DatasetBundle
from repro.data.normalize import (
    FeatureScaler,
    LogTargetScaler,
    TargetScaler,
    log_scaler_from_values,
    scaler_from_std,
)
from repro.data.targets import TargetSpec, target_by_name
from repro.errors import ModelError
from repro.graph.features import feature_dim
from repro.graph.hetero import merge_graphs
from repro.analysis.metrics import summarize
from repro.circuits.devices import NODE_TYPES
from repro.models.base import GNNRegressor
from repro.models.inputs import GraphInputs
from repro.nn import Adam, Tensor, mse_loss, no_grad
from repro.rng import stream


@dataclass
class TrainConfig:
    """Hyper-parameters (defaults = paper §V)."""

    embed_dim: int = 32
    num_layers: int = 5
    num_fc_layers: int | None = None  # None -> 4 for CAP, 2 for device targets
    epochs: int = 300
    lr: float = 0.01
    run_seed: int = 0
    max_v: float | None = None  # §IV training clamp (CAP only), in farads
    conv_kwargs: dict = field(default_factory=dict)
    log_every: int = 0
    #: The paper trains without L2 ("training sets sufficiently large"); at
    #: this reproduction's much smaller dataset scale a little decay keeps
    #: the high-capacity relational models from memorising layout noise.
    weight_decay: float = 1e-4
    #: Device-parameter values span orders of magnitude (areas scale with
    #: NF x NFIN x MULTI); training them in log space keeps small devices
    #: accurate.  CAP always trains linearly — the §IV ensemble behaviour
    #: (Fig. 5) depends on it.
    log_device_targets: bool = True


@dataclass
class TrainHistory:
    """Per-epoch training losses."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def _merged_inputs(
    records: list[CircuitRecord], bundle: DatasetBundle, spec: TargetSpec
) -> tuple[GraphInputs, np.ndarray, np.ndarray]:
    """Merged GraphInputs + target ids/values with node-id offsets applied."""
    merged = merge_graphs([record.graph for record in records])
    inputs = GraphInputs.from_graph(merged, bundle.scaler)
    ids, values = [], []
    offset = 0
    for record in records:
        node_ids, vals = record.target_arrays(spec)
        ids.append(node_ids + offset)
        values.append(vals)
        offset += record.graph.num_nodes
    return inputs, np.concatenate(ids), np.concatenate(values)


class TargetPredictor:
    """One trained model for one prediction target.

    Parameters
    ----------
    conv:
        GNN flavour (``paragraph``, ``sage``, ``rgcn``, ``gat``, ``gcn``).
    target:
        Target name (``CAP``, ``LDE3``, ``SA``...) or a :class:`TargetSpec`.
    config:
        Training hyper-parameters.
    """

    def __init__(
        self,
        conv: str = "paragraph",
        target: str | TargetSpec = "CAP",
        config: TrainConfig | None = None,
    ):
        self.conv = conv
        self.spec = target if isinstance(target, TargetSpec) else target_by_name(target)
        self.config = config or TrainConfig()
        self.model: GNNRegressor | None = None
        self.target_scaler: TargetScaler | None = None
        self.history = TrainHistory()
        self._scaler = None  # feature scaler, captured from the bundle at fit

    # ------------------------------------------------------------------
    def fit(self, bundle: DatasetBundle) -> "TargetPredictor":
        """Train on the bundle's train split; returns self."""
        cfg = self.config
        records = bundle.records("train")
        inputs, ids, values = _merged_inputs(records, bundle, self.spec)
        if len(ids) == 0:
            raise ModelError(f"no training samples for target {self.spec.name}")

        if cfg.max_v is not None:
            keep = values <= cfg.max_v
            if not keep.any():
                raise ModelError(
                    f"max_v={cfg.max_v} removed every training sample"
                )
            ids, values = ids[keep], values[keep]

        if self.spec.name == "CAP":
            # CAP must train linearly: the SIV ensemble phenomenon (Fig. 5)
            # depends on small values drowning in a full-range model's error.
            scale = cfg.max_v if cfg.max_v is not None else float(values.max())
            self.target_scaler = TargetScaler(scale)
            fc_layers = cfg.num_fc_layers or 4
        elif self.spec.kind == "net":
            # other net targets (RES extension) span decades with no
            # ensemble semantics: log space keeps small nets accurate
            self.target_scaler = log_scaler_from_values(values)
            fc_layers = cfg.num_fc_layers or 4
        elif cfg.log_device_targets:
            self.target_scaler = log_scaler_from_values(values)
            fc_layers = cfg.num_fc_layers or 2
        else:
            self.target_scaler = scaler_from_std(values)
            fc_layers = cfg.num_fc_layers or 2

        rng = stream(cfg.run_seed, "model", self.conv, self.spec.name)
        self.model = GNNRegressor(
            conv=self.conv,
            feature_dims={t: feature_dim(t) for t in NODE_TYPES},
            rng=rng,
            embed_dim=cfg.embed_dim,
            num_layers=cfg.num_layers,
            num_fc_layers=fc_layers,
            conv_kwargs=cfg.conv_kwargs,
        )
        self._scaler = bundle.scaler

        targets = Tensor(self.target_scaler.transform(values).reshape(-1, 1))
        optimizer = Adam(
            self.model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay
        )
        self.history = TrainHistory()
        for epoch in range(cfg.epochs):
            optimizer.zero_grad()
            pred = self.model(inputs, ids)
            loss = mse_loss(pred, targets)
            loss.backward()
            optimizer.step()
            self.history.losses.append(loss.item())
            if cfg.log_every and (epoch + 1) % cfg.log_every == 0:
                print(
                    f"[{self.conv}/{self.spec.name}] epoch {epoch + 1}: "
                    f"loss={loss.item():.5f}"
                )
        return self

    # ------------------------------------------------------------------
    def _require_fit(self) -> GNNRegressor:
        if self.model is None or self.target_scaler is None:
            raise ModelError("predictor is not fitted; call fit() first")
        return self.model

    def predict_graph(self, graph) -> tuple[np.ndarray, np.ndarray]:
        """(node_ids, SI-unit predictions) for a heterogeneous graph.

        Predictions are clamped at zero — capacitances and geometries are
        physical quantities.
        """
        model = self._require_fit()
        inputs = GraphInputs.from_graph(graph, self._scaler)
        ids = self.spec.node_ids(graph)
        with no_grad():
            scaled = model(inputs, ids).numpy().ravel()
        return ids, np.maximum(self.target_scaler.inverse(scaled), 0.0)

    def predict(self, record: CircuitRecord) -> tuple[np.ndarray, np.ndarray]:
        """(node_ids, predictions in SI units) for one dataset record."""
        return self.predict_graph(record.graph)

    def predict_named(self, record: CircuitRecord) -> dict[str, float]:
        """Predictions keyed by net/instance name."""
        ids, preds = self.predict(record)
        return {
            record.graph.node_name_of[node_id]: float(value)
            for node_id, value in zip(ids, preds)
        }

    def predict_circuit(self, circuit) -> dict[str, float]:
        """Predict straight from a schematic (no layout required).

        This is the deployment path: parse a netlist, predict, annotate.
        """
        from repro.graph.builder import build_graph

        graph = build_graph(circuit)
        ids, preds = self.predict_graph(graph)
        return {
            graph.node_name_of[node_id]: float(value)
            for node_id, value in zip(ids, preds)
        }

    def attention_report(
        self, record: CircuitRecord, layer: int = 0
    ) -> list[tuple[str, str, str, float]]:
        """First-layer attention weights as (edge_type, src, dst, alpha) rows.

        Only available for the ParaGraph model with attention enabled;
        sorted by descending weight for quick inspection.
        """
        model = self._require_fit()
        conv = model.convs[layer]
        if not hasattr(conv, "attention_weights"):
            raise ModelError(f"conv {self.conv!r} does not expose attention")
        inputs = GraphInputs.from_record(record, self._scaler)
        with no_grad():
            h = model.encoder(inputs)
            for earlier in model.convs[:layer]:
                h = earlier(h, inputs)
            weights = conv.attention_weights(h, inputs)
        rows: list[tuple[str, str, str, float]] = []
        names = record.graph.node_name_of
        for edge_type, alpha in weights.items():
            src, dst = inputs.edges[edge_type]
            for k in range(len(src)):
                rows.append(
                    (edge_type, names[src[k]], names[dst[k]], float(alpha[k]))
                )
        rows.sort(key=lambda row: -row[3])
        return rows

    def embed_record(self, record: CircuitRecord) -> tuple[np.ndarray, np.ndarray]:
        """(target node_ids, embedding rows) — used for t-SNE (Fig. 8)."""
        model = self._require_fit()
        inputs = GraphInputs.from_record(record, self._scaler)
        ids = self.spec.node_ids(record.graph)
        with no_grad():
            z = model.embed(inputs).numpy()
        return ids, z[ids]

    def evaluate(
        self, records: list[CircuitRecord], mape_eps: float = 0.0
    ) -> dict[str, float]:
        """Pooled R²/MAE/MAPE over several circuits."""
        truths, preds = [], []
        for record in records:
            _, truth = record.target_arrays(self.spec)
            _, pred = self.predict(record)
            truths.append(truth)
            preds.append(pred)
        return summarize(
            np.concatenate(truths), np.concatenate(preds), mape_eps=mape_eps
        )

    def collect(
        self, records: list[CircuitRecord]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(ground truth, prediction) arrays pooled over records."""
        truths, preds = [], []
        for record in records:
            _, truth = record.target_arrays(self.spec)
            _, pred = self.predict(record)
            truths.append(truth)
            preds.append(pred)
        return np.concatenate(truths), np.concatenate(preds)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write the trained model (weights + both scalers + config) to .npz."""
        model = self._require_fit()
        payload: dict[str, np.ndarray] = {
            f"param/{name}": value for name, value in model.state_dict().items()
        }
        fc_layers = len(model.readout.layers)
        meta = {
            "conv": self.conv,
            "target": self.spec.name,
            "target_scale": self.target_scaler.scale,
            "scaler_kind": (
                "log" if isinstance(self.target_scaler, LogTargetScaler) else "linear"
            ),
            "embed_dim": self.config.embed_dim,
            "num_layers": self.config.num_layers,
            "num_fc_layers": fc_layers,
            "conv_kwargs": self.config.conv_kwargs,
        }
        payload["meta"] = np.array(json.dumps(meta))
        for type_name, mean in self._scaler.means.items():
            payload[f"fmean/{type_name}"] = mean
            payload[f"fstd/{type_name}"] = self._scaler.stds[type_name]
        np.savez(path, **payload)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "TargetPredictor":
        """Load a predictor saved by :meth:`save`; ready for prediction."""
        with np.load(path) as archive:
            meta = json.loads(str(archive["meta"]))
            predictor = cls(
                conv=meta["conv"],
                target=meta["target"],
                config=TrainConfig(
                    embed_dim=meta["embed_dim"],
                    num_layers=meta["num_layers"],
                    num_fc_layers=meta["num_fc_layers"],
                    conv_kwargs=meta.get("conv_kwargs", {}),
                ),
            )
            rng = stream(0, "model", predictor.conv, predictor.spec.name)
            predictor.model = GNNRegressor(
                conv=predictor.conv,
                feature_dims={t: feature_dim(t) for t in NODE_TYPES},
                rng=rng,
                embed_dim=meta["embed_dim"],
                num_layers=meta["num_layers"],
                num_fc_layers=meta["num_fc_layers"],
                conv_kwargs=meta.get("conv_kwargs", {}),
            )
            predictor.model.load_state_dict(
                {
                    name[len("param/"):]: archive[name]
                    for name in archive.files
                    if name.startswith("param/")
                }
            )
            if meta.get("scaler_kind") == "log":
                predictor.target_scaler = LogTargetScaler(float(meta["target_scale"]))
            else:
                predictor.target_scaler = TargetScaler(float(meta["target_scale"]))
            scaler = FeatureScaler()
            for name in archive.files:
                if name.startswith("fmean/"):
                    type_name = name[len("fmean/"):]
                    scaler.means[type_name] = archive[name]
                    scaler.stds[type_name] = archive[f"fstd/{type_name}"]
            predictor._scaler = scaler
        return predictor
