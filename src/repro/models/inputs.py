"""Model-ready graph inputs.

:class:`GraphInputs` packages a heterogeneous graph's scaled features and
edge arrays in the exact form the GNN layers consume: per-type feature
matrices for the input transform, per-edge-type COO arrays for relational
layers, and a merged (homogenised) edge list for the baseline GNNs that
ignore edge types.

It is also the home of the *graph compute plan*: every index-derived
artifact the convolution layers need — self-loop-augmented edge lists,
degree vectors, GCN/RGCN normalisers, and the
:class:`~repro.nn.plan.SegmentPlan` reduction schedules for the segment
kernels — is computed lazily once per graph and cached here.  A merged
training split (shared through :class:`repro.flows.runtime.MergedInputsCache`)
therefore pays for each argsort/bincount exactly once across all epochs,
targets and ensemble members.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import CircuitRecord
from repro.data.normalize import FeatureScaler
from repro.graph.hetero import HeteroGraph
from repro.nn.plan import SegmentPlan
from repro.nn import precision


@dataclass
class GraphInputs:
    """Preprocessed tensors for one graph (or a merged split).

    Arrays handed out by the cached accessors (edge lists, degrees,
    normalisers, plans) are shared across callers — treat them as
    read-only.
    """

    num_nodes: int
    features: dict[str, np.ndarray]
    nodes_of_type: dict[str, np.ndarray]
    edges: dict[str, tuple[np.ndarray, np.ndarray]]
    merged_src: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    merged_dst: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: lazy cache of plans/normalisers; never compared or merged
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def from_graph(cls, graph: HeteroGraph, scaler: FeatureScaler) -> "GraphInputs":
        """Build inputs from a graph using a fitted feature scaler."""
        scaled = scaler.transform(graph)
        if graph.edges:
            merged_src = np.concatenate(
                [graph.edges[et][0] for et in graph.edge_types]
            )
            merged_dst = np.concatenate(
                [graph.edges[et][1] for et in graph.edge_types]
            )
        else:
            merged_src = np.empty(0, dtype=np.int64)
            merged_dst = np.empty(0, dtype=np.int64)
        return cls(
            num_nodes=graph.num_nodes,
            features=scaled,
            nodes_of_type=dict(graph.nodes_of_type),
            edges=dict(graph.edges),
            merged_src=merged_src,
            merged_dst=merged_dst,
        )

    @classmethod
    def from_record(cls, record: CircuitRecord, scaler: FeatureScaler) -> "GraphInputs":
        """Convenience: build inputs straight from a dataset record."""
        return cls.from_graph(record.graph, scaler)

    @classmethod
    def merge(
        cls, inputs: "list[GraphInputs]"
    ) -> "tuple[GraphInputs, np.ndarray]":
        """Concatenate several graphs' inputs into one disjoint batch.

        Returns ``(merged, offsets)`` where ``offsets[k]`` is the global
        node-id offset of graph ``k``.  The graphs stay disjoint components,
        so a forward pass over the merged inputs produces bit-identical
        per-node outputs to running each graph alone — this is the batched
        inference path of :class:`repro.api.Engine`.  Thin wrapper over
        :meth:`merge_graphs`, kept for the established call sites.
        """
        batch = cls.merge_graphs(inputs)
        return batch.inputs, batch.offsets

    @classmethod
    def merge_graphs(cls, inputs: "list[GraphInputs]") -> "MegaBatch":
        """Disjoint-union many graphs into one mega-batch.

        Node ids of graph ``k`` are shifted by ``offsets[k]``; per-type
        feature matrices, node-id lists and COO edge arrays are concatenated
        in graph order; the homogenised edge list is rebuilt **type-major**
        (all edges of the lexicographically first type across every graph,
        then the next type, ...), matching exactly what
        :meth:`from_graph` produces for a pre-merged
        :class:`~repro.graph.hetero.HeteroGraph` — so a mega-batch built
        from per-graph inputs is bit-identical, arrays and plans both, to
        one built from a graph-level merge.

        Because the shifted node-id ranges ascend with graph order, every
        per-edge-type and node-type :class:`~repro.nn.plan.SegmentPlan` of
        the union is the :meth:`SegmentPlan.concat` of the per-graph plans:
        the merged cache is pre-seeded from the (memoised) per-graph plans,
        so repeated batching of cached graphs never re-sorts an edge list.
        """
        if not inputs:
            raise ValueError("GraphInputs.merge_graphs needs at least one graph")
        sizes = np.asarray([item.num_nodes for item in inputs], dtype=np.int64)
        if len(inputs) == 1:
            return MegaBatch(
                inputs=inputs[0], offsets=np.zeros(1, dtype=np.int64), sizes=sizes
            )
        offsets = np.cumsum([0] + [item.num_nodes for item in inputs[:-1]])
        num_nodes = int(offsets[-1] + inputs[-1].num_nodes)
        features: dict[str, list[np.ndarray]] = {}
        nodes_of_type: dict[str, list[np.ndarray]] = {}
        edges: dict[str, tuple[list[np.ndarray], list[np.ndarray]]] = {}
        #: per edge/node type: the items contributing arrays, with offsets
        edge_parts: dict[str, list[tuple["GraphInputs", int]]] = {}
        type_parts: dict[str, list[tuple["GraphInputs", int]]] = {}
        for item, offset in zip(inputs, offsets):
            for type_name, feats in item.features.items():
                features.setdefault(type_name, []).append(feats)
                nodes_of_type.setdefault(type_name, []).append(
                    item.nodes_of_type[type_name] + offset
                )
                type_parts.setdefault(type_name, []).append((item, int(offset)))
            for edge_type, (src, dst) in item.edges.items():
                srcs, dsts = edges.setdefault(edge_type, ([], []))
                srcs.append(src + offset)
                dsts.append(dst + offset)
                edge_parts.setdefault(edge_type, []).append((item, int(offset)))
        merged_edges = {
            t: (np.concatenate(s), np.concatenate(d))
            for t, (s, d) in edges.items()
        }
        if merged_edges:
            # type-major, like from_graph over HeteroGraph.edge_types
            merged_src = np.concatenate(
                [merged_edges[et][0] for et in sorted(merged_edges)]
            )
            merged_dst = np.concatenate(
                [merged_edges[et][1] for et in sorted(merged_edges)]
            )
        else:
            merged_src = np.empty(0, dtype=np.int64)
            merged_dst = np.empty(0, dtype=np.int64)
        merged = cls(
            num_nodes=num_nodes,
            features={t: np.concatenate(f, axis=0) for t, f in features.items()},
            nodes_of_type={t: np.concatenate(n) for t, n in nodes_of_type.items()},
            edges=merged_edges,
            merged_src=merged_src,
            merged_dst=merged_dst,
        )
        # Pre-seed the union's plan cache from the per-graph plans.  The
        # per-graph calls memoise on each item, so batch after batch of the
        # same cached graphs pays for each argsort exactly once.
        for edge_type, parts in edge_parts.items():
            merged._cache[("edge_src_plan", edge_type)] = SegmentPlan.concat(
                [item.edge_plans(edge_type)[0] for item, _ in parts],
                np.asarray([offset for _, offset in parts], dtype=np.int64),
                num_nodes,
            )
            merged._cache[("edge_dst_plan", edge_type)] = SegmentPlan.concat(
                [item.edge_plans(edge_type)[1] for item, _ in parts],
                np.asarray([offset for _, offset in parts], dtype=np.int64),
                num_nodes,
            )
        merged._cache["node_type_plans"] = {
            type_name: SegmentPlan.concat(
                [item.node_type_plans()[type_name] for item, _ in parts],
                np.asarray([offset for _, offset in parts], dtype=np.int64),
                num_nodes,
            )
            for type_name, parts in type_parts.items()
        }
        # The homogenised edge list is type-major over the same union, so
        # its plans are the interleave of the per-edge-type plans just
        # stitched above, and the self-loop-augmented plans interleave one
        # identity block on top — no argsort anywhere in a mega-batch.
        if merged_edges:
            type_order = sorted(merged_edges)
            merged_src_plan = SegmentPlan.interleave(
                [merged._cache[("edge_src_plan", t)] for t in type_order],
                num_nodes,
            )
            merged_dst_plan = SegmentPlan.interleave(
                [merged._cache[("edge_dst_plan", t)] for t in type_order],
                num_nodes,
            )
            merged._cache["merged_src_plan"] = merged_src_plan
            merged._cache["merged_dst_plan"] = merged_dst_plan
            loops = SegmentPlan.identity(num_nodes)
            merged._cache["loop_src_plan"] = SegmentPlan.interleave(
                [merged_src_plan, loops], num_nodes
            )
            merged._cache["loop_dst_plan"] = SegmentPlan.interleave(
                [merged_dst_plan, loops], num_nodes
            )
        return MegaBatch(inputs=merged, offsets=offsets, sizes=sizes)

    # ------------------------------------------------------------------
    # Cached graph compute plan
    # ------------------------------------------------------------------
    def _cached(self, key, build):
        value = self._cache.get(key)
        if value is None:
            value = build()
            self._cache[key] = value
        return value

    def with_self_loops(self) -> tuple[np.ndarray, np.ndarray]:
        """Merged edges plus one self-loop per node (GCN/GAT convention)."""

        def build():
            loops = np.arange(self.num_nodes, dtype=np.int64)
            return (
                np.concatenate([self.merged_src, loops]),
                np.concatenate([self.merged_dst, loops]),
            )

        return self._cached("self_loop_edges", build)

    def in_degrees(self, include_self_loops: bool = False) -> np.ndarray:
        """Integral in-degree per node over the merged edge list.

        Counts stay int64; dtype-sensitive consumers cast at their own
        boundary (:meth:`gcn_inv_sqrt_degree` keys its cache by dtype).
        """

        def build():
            deg = np.bincount(self.merged_dst, minlength=self.num_nodes)
            if include_self_loops:
                deg = deg + 1
            return deg

        return self._cached(("in_degrees", bool(include_self_loops)), build)

    # -- SegmentPlan schedules (see repro.nn.plan) ----------------------
    def merged_plans(self) -> tuple[SegmentPlan, SegmentPlan]:
        """(src, dst) reduction plans over the merged edge list."""
        return (
            self._cached(
                "merged_src_plan",
                lambda: SegmentPlan.build(self.merged_src, self.num_nodes),
            ),
            self._cached(
                "merged_dst_plan",
                lambda: SegmentPlan.build(self.merged_dst, self.num_nodes),
            ),
        )

    def loop_plans(self) -> tuple[SegmentPlan, SegmentPlan]:
        """(src, dst) plans over the self-loop-augmented merged edge list."""
        src, dst = self.with_self_loops()
        return (
            self._cached(
                "loop_src_plan", lambda: SegmentPlan.build(src, self.num_nodes)
            ),
            self._cached(
                "loop_dst_plan", lambda: SegmentPlan.build(dst, self.num_nodes)
            ),
        )

    def edge_plans(self, edge_type: str) -> tuple[SegmentPlan, SegmentPlan]:
        """(src, dst) plans for one edge type's COO arrays."""
        src, dst = self.edges[edge_type]
        return (
            self._cached(
                ("edge_src_plan", edge_type),
                lambda: SegmentPlan.build(src, self.num_nodes),
            ),
            self._cached(
                ("edge_dst_plan", edge_type),
                lambda: SegmentPlan.build(dst, self.num_nodes),
            ),
        )

    def node_type_plans(self) -> dict[str, SegmentPlan]:
        """Scatter plans for placing per-type rows into the node matrix."""
        return self._cached(
            "node_type_plans",
            lambda: {
                type_name: SegmentPlan.build(ids, self.num_nodes)
                for type_name, ids in self.nodes_of_type.items()
            },
        )

    # -- Cached layer normalisers (dtype-keyed) -------------------------
    def gcn_inv_sqrt_degree(self, dtype: "np.dtype | None" = None) -> np.ndarray:
        """``1/sqrt(max(deg, 1))`` column over self-loop-augmented degrees."""
        dtype = np.dtype(dtype) if dtype is not None else precision.get_compute_dtype()

        def build():
            degree = self.in_degrees(include_self_loops=True)
            return (1.0 / np.sqrt(np.maximum(degree, 1.0))).astype(dtype).reshape(-1, 1)

        return self._cached(("gcn_inv_sqrt", dtype), build)

    def edge_inv_counts(
        self, edge_type: str, dtype: "np.dtype | None" = None
    ) -> np.ndarray:
        """``1/max(in_count, 1)`` column for one edge type (RGCN mean norm)."""
        dtype = np.dtype(dtype) if dtype is not None else precision.get_compute_dtype()

        def build():
            _, dst_plan = self.edge_plans(edge_type)
            return dst_plan.inverse_counts(dtype)

        return self._cached(("edge_inv_counts", edge_type, dtype), build)


@dataclass
class MegaBatch:
    """A disjoint union of many graphs, ready for one shared forward pass.

    Produced by :meth:`GraphInputs.merge_graphs`.  ``inputs`` is the merged
    :class:`GraphInputs` (plan cache pre-seeded); ``offsets[k]`` /
    ``sizes[k]`` give graph ``k``'s global node-id offset and node count.
    """

    inputs: GraphInputs
    offsets: np.ndarray  #: (G,) int64 node-id offset per graph
    sizes: np.ndarray  #: (G,) int64 node count per graph
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def num_graphs(self) -> int:
        return len(self.offsets)

    def graph_of_node(self) -> np.ndarray:
        """Per-graph readout segments: merged node id -> graph index."""
        segments = self._cache.get("graph_of_node")
        if segments is None:
            segments = np.repeat(
                np.arange(self.num_graphs, dtype=np.int64), self.sizes
            )
            self._cache["graph_of_node"] = segments
        return segments

    def global_ids(self, graph_index: int, node_ids: np.ndarray) -> np.ndarray:
        """Shift one graph's local node ids into the merged id space."""
        return np.asarray(node_ids, dtype=np.int64) + int(
            self.offsets[graph_index]
        )
