"""Prediction models: ParaGraph, GNN baselines, XGBoost/linear baselines."""

from repro.models.base import GNNRegressor
from repro.models.baselines import BaselinePredictor, baseline_features
from repro.models.convs import (
    GATConv,
    GCNConv,
    GNN_MODEL_NAMES,
    ParaGraphConv,
    RGCNConv,
    SageConv,
    make_conv,
)
from repro.models.encoder import NodeTypeEncoder
from repro.models.gbdt import GradientBoostedTrees, RegressionTree
from repro.models.inputs import GraphInputs, MegaBatch
from repro.models.linreg import RidgeRegression
from repro.models.multitask import (
    MultiTaskModel,
    MultiTaskPredictor,
    ReadoutHead,
    SharedTrunk,
)
from repro.models.trainer import TargetPredictor, TrainConfig, TrainHistory
from repro.models.uncertainty import SeedEnsemblePredictor, UncertainPrediction

__all__ = [
    "GNNRegressor",
    "BaselinePredictor",
    "baseline_features",
    "GATConv",
    "GCNConv",
    "GNN_MODEL_NAMES",
    "ParaGraphConv",
    "RGCNConv",
    "SageConv",
    "make_conv",
    "NodeTypeEncoder",
    "GradientBoostedTrees",
    "RegressionTree",
    "GraphInputs",
    "MegaBatch",
    "MultiTaskModel",
    "MultiTaskPredictor",
    "ReadoutHead",
    "SharedTrunk",
    "RidgeRegression",
    "TargetPredictor",
    "TrainConfig",
    "TrainHistory",
    "SeedEnsemblePredictor",
    "UncertainPrediction",
]
