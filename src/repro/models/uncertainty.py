"""Prediction uncertainty from seed ensembles.

Training the same model with several initialisation seeds and reading the
spread of their predictions gives a cheap epistemic-uncertainty estimate:
nets where members disagree are nets the model does not trust (typically
large floorplan-dominated parasitics, paper §V's hardest cases).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import CircuitRecord, DatasetBundle
from repro.errors import ModelError
from repro.models.trainer import TargetPredictor, TrainConfig


@dataclass
class UncertainPrediction:
    """Per-node prediction mean and member spread."""

    node_ids: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    names: list[str] = field(default_factory=list)

    def relative_std(self) -> np.ndarray:
        """std / mean (coefficient of variation), guarded for zero means."""
        return self.std / np.maximum(self.mean, 1e-30)


class SeedEnsemblePredictor:
    """N same-configuration models trained with different seeds."""

    def __init__(
        self,
        conv: str = "paragraph",
        target: str = "CAP",
        config: TrainConfig | None = None,
        n_members: int = 5,
    ):
        if n_members < 2:
            raise ModelError("a seed ensemble needs at least 2 members")
        self.conv = conv
        self.target = target
        self.config = config or TrainConfig()
        self.n_members = n_members
        self.members: list[TargetPredictor] = []

    def fit(self, bundle: DatasetBundle) -> "SeedEnsemblePredictor":
        """Train every member (seeds = config.run_seed + member index)."""
        self.members = []
        for index in range(self.n_members):
            cfg = TrainConfig(
                **{**self.config.__dict__, "run_seed": self.config.run_seed + index}
            )
            member = TargetPredictor(self.conv, self.target, cfg)
            member._fit_quiet(bundle)
            self.members.append(member)
        return self

    def predict_with_uncertainty(self, record: CircuitRecord) -> UncertainPrediction:
        """Mean and member-spread (std) per node."""
        if not self.members:
            raise ModelError("seed ensemble is not fitted")
        ids_ref = None
        stacked = []
        for member in self.members:
            ids, pred = member.predict(record)
            if ids_ref is None:
                ids_ref = ids
            stacked.append(pred)
        matrix = np.vstack(stacked)
        return UncertainPrediction(
            node_ids=ids_ref,
            mean=matrix.mean(axis=0),
            std=matrix.std(axis=0),
            names=[record.graph.node_name_of[i] for i in ids_ref],
        )
