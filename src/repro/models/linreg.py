"""Ridge linear regression (the paper's Linear Regression baseline)."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class RidgeRegression:
    """Closed-form ridge regression with an intercept.

    Parameters
    ----------
    alpha:
        L2 penalty on the weights (the intercept is unpenalised).
    """

    def __init__(self, alpha: float = 1e-6):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise ModelError(f"bad ridge inputs: X{X.shape}, y{y.shape}")
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        xc = X - x_mean
        yc = y - y_mean
        gram = xc.T @ xc + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise ModelError("RidgeRegression is not fitted")
        return np.asarray(X, dtype=np.float64) @ self.coef_ + self.intercept_
