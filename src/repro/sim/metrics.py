"""Circuit-metric computation on testbenches (paper Table V's 67 metrics).

A :class:`Testbench` names a circuit, its driven input net, observed output
net, and the metrics to extract.  :func:`compute_metrics` assembles the MNA
system (with a chosen parasitic annotation), runs AC and/or transient
analysis, and returns the metric values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.circuits.netlist import Circuit
from repro.errors import SimulationError
from repro.sim.ac import AcSweep, ac_analysis
from repro.sim.mna import Annotations, MnaSystem, build_mna
from repro.sim.transient import TransientResult, transient_step

#: Metrics computed from the AC sweep.
AC_METRICS = ("dc_gain", "bandwidth", "unity_gain_freq")
#: Metrics computed from the transient step response.
TRAN_METRICS = ("delay", "rise_time", "slew_rate")
#: Metrics computed directly from the assembled matrices.
STATIC_METRICS = ("cap_total",)

ALL_METRIC_NAMES = (*AC_METRICS, *TRAN_METRICS, *STATIC_METRICS)


@dataclass
class Testbench:
    """A metric-extraction setup for one circuit."""

    __test__ = False  # not a pytest test class, despite the name

    name: str
    circuit: Circuit
    input_net: str
    output_net: str
    metrics: tuple[str, ...]

    def __post_init__(self):
        unknown = [m for m in self.metrics if m not in ALL_METRIC_NAMES]
        if unknown:
            raise SimulationError(f"unknown metrics {unknown} in {self.name!r}")


def _ac_value(sweep: AcSweep, metric: str) -> float:
    if metric == "dc_gain":
        return sweep.dc_gain()
    if metric == "bandwidth":
        return sweep.bandwidth_3db()
    return sweep.unity_gain_frequency()


def _tran_value(result: TransientResult, metric: str) -> float:
    if metric == "delay":
        return result.delay_50()
    if metric == "rise_time":
        return result.rise_time()
    return result.slew_rate()


def _cap_total(system: MnaSystem) -> float:
    """Total node capacitance (dynamic-power proxy: P = f V^2 C_total)."""
    return float(np.trace(system.C[: system.num_nodes, : system.num_nodes])) / 2.0


def compute_metrics(
    bench: Testbench,
    annotations: Annotations | None = None,
    transient_resolution: int = 2000,
) -> dict[str, float]:
    """Run the analyses a testbench needs and return its metric values.

    The transient window adapts to the circuit's 3 dB bandwidth so fast and
    slow circuits are both resolved with *transient_resolution* steps.
    """
    with obs.span("sim.bench", bench=bench.name):
        system = build_mna(bench.circuit, bench.input_net, annotations)
        values: dict[str, float] = {}

        needs_ac = any(m in AC_METRICS for m in bench.metrics)
        needs_tran = any(m in TRAN_METRICS for m in bench.metrics)
        sweep = None
        if needs_ac or needs_tran:
            sweep = ac_analysis(system, bench.output_net)
        for metric in bench.metrics:
            if metric in AC_METRICS:
                values[metric] = _ac_value(sweep, metric)
        if needs_tran:
            bandwidth = max(sweep.bandwidth_3db(), 1e6)
            t_stop = float(np.clip(3.0 / bandwidth, 50e-12, 100e-9))
            result = transient_step(
                system,
                bench.output_net,
                t_stop=t_stop,
                dt=t_stop / transient_resolution,
            )
            for metric in bench.metrics:
                if metric in TRAN_METRICS:
                    values[metric] = _tran_value(result, metric)
        if "cap_total" in bench.metrics:
            values["cap_total"] = _cap_total(system)
    obs.inc("sim.benches_total")
    obs.inc("sim.metrics_computed_total", len(values))
    return values


@dataclass
class MetricComparison:
    """Relative errors of one annotation mode against the reference."""

    mode: str
    errors: dict[str, float] = field(default_factory=dict)  # "bench/metric" -> err

    def error_list(self) -> list[float]:
        return list(self.errors.values())


def relative_metric_errors(
    benches: list[Testbench],
    reference: dict[str, dict[str, float]],
    annotations_by_bench: dict[str, Annotations],
    mode: str,
) -> MetricComparison:
    """Relative |error| of every bench/metric under one annotation mode."""
    comparison = MetricComparison(mode=mode)
    for bench in benches:
        values = compute_metrics(bench, annotations_by_bench[bench.name])
        for metric, value in values.items():
            ref = reference[bench.name][metric]
            if ref == 0:
                continue
            comparison.errors[f"{bench.name}/{metric}"] = abs(value - ref) / abs(ref)
    return comparison
