"""AC small-signal analysis: transfer functions over a frequency sweep."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.sim.mna import MnaSystem


@dataclass
class AcSweep:
    """Frequency response of one output net."""

    frequencies: np.ndarray  # Hz
    response: np.ndarray  # complex transfer function

    @property
    def magnitude(self) -> np.ndarray:
        return np.abs(self.response)

    def dc_gain(self) -> float:
        """|H| at the lowest swept frequency."""
        return float(self.magnitude[0])

    def bandwidth_3db(self) -> float:
        """First frequency where |H| drops 3 dB below the DC value.

        Returns the highest swept frequency if no crossing occurs.
        """
        mag = self.magnitude
        threshold = mag[0] / np.sqrt(2.0)
        below = np.nonzero(mag < threshold)[0]
        if len(below) == 0:
            return float(self.frequencies[-1])
        k = below[0]
        if k == 0:
            return float(self.frequencies[0])
        # log-linear interpolation between the two bracketing points
        f0, f1 = self.frequencies[k - 1], self.frequencies[k]
        m0, m1 = mag[k - 1], mag[k]
        t = (m0 - threshold) / max(m0 - m1, 1e-30)
        return float(f0 * (f1 / f0) ** t)

    def unity_gain_frequency(self) -> float:
        """First frequency where |H| falls below 1 (or the last swept)."""
        below = np.nonzero(self.magnitude < 1.0)[0]
        if len(below) == 0 or below[0] == 0:
            return float(self.frequencies[-1 if len(below) == 0 else 0])
        k = below[0]
        f0, f1 = self.frequencies[k - 1], self.frequencies[k]
        m0, m1 = self.magnitude[k - 1], self.magnitude[k]
        t = (m0 - 1.0) / max(m0 - m1, 1e-30)
        return float(f0 * (f1 / f0) ** t)


def ac_analysis(
    system: MnaSystem,
    output_net: str,
    f_start: float = 1e3,
    f_stop: float = 100e9,
    points_per_decade: int = 10,
) -> AcSweep:
    """Sweep ``(G + j w C) x = b`` and return the response at *output_net*.

    Raises
    ------
    SimulationError
        If the system matrix is singular at any frequency.
    """
    out = system.node(output_net)
    decades = np.log10(f_stop / f_start)
    n_points = max(2, int(round(decades * points_per_decade)) + 1)
    freqs = np.logspace(np.log10(f_start), np.log10(f_stop), n_points)
    response = np.empty(n_points, dtype=np.complex128)
    rhs = system.b.astype(np.complex128)
    with obs.span("sim.ac", output=output_net, points=n_points):
        for i, f in enumerate(freqs):
            omega = 2 * np.pi * f
            matrix = system.G + 1j * omega * system.C
            # MNA matrices are badly scaled by construction (fF vs S vs the
            # source row); LU still solves them fine, so use the quiet solver.
            try:
                x = np.linalg.solve(matrix, rhs)
            except np.linalg.LinAlgError as exc:
                raise SimulationError(
                    f"singular MNA matrix at {f:.3g} Hz"
                ) from exc
            response[i] = x[out]
    obs.inc("sim.ac_sweeps_total")
    obs.inc("sim.ac_points_total", n_points)
    return AcSweep(frequencies=freqs, response=response)
