"""Small-signal device models for the linearized MNA simulator.

Every device is reduced to conductances, capacitances and controlled
sources around a nominal operating point (all MOSFETs assumed saturated at
a fixed overdrive).  The models are deliberately simple — Table V only
needs metric *differences* between parasitic-annotation choices on the same
netlist — but they do depend on the predicted quantities: junction
capacitance scales with drain/source diffusion area, so device-parameter
predictions (SA/DA) influence simulation results alongside net CAP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits import devices as dev
from repro.circuits.netlist import Instance

#: Transconductance per fin at nominal overdrive, thin-gate, L = Lmin.
GM_PER_FIN = 40e-6  # siemens
#: Channel-length modulation: gds = LAMBDA * gm.
LAMBDA = 0.08
#: Thick-gate devices are slower per fin.
THICK_GM_SCALE = 0.5
#: Gate-source / gate-drain capacitance per fin per finger.  Kept small
#: relative to routed-net parasitics so that circuit metrics are dominated
#: by the annotated CAP values (the paper's premise).
CGS_PER_FIN = 0.010e-15
CGD_PER_FIN = 0.004e-15
#: Junction capacitance per diffusion area, in F/m^2 (0.02 F/m^2 =
#: 20 fF/um^2, an effective 3D-FinFET value).  A typical drain junction
#: lands near 0.1 fF — noticeable but small against net parasitics, so
#: Table V is dominated by CAP annotation quality as in the paper.
CJ_PER_AREA = 0.02
#: Diode small-signal conductance and junction capacitance per finger.
DIODE_GD = 1e-6
DIODE_CJ = 0.25e-15
#: BJT transconductance and base resistance scale.
BJT_GM = 2e-3
BJT_BETA = 100.0
#: Nominal gate length used as the reference for 1/L scaling.
L_REF = 16e-9


@dataclass(frozen=True)
class MosSmallSignal:
    """Linearized MOSFET: VCCS gm*(vgs) d->s, gds, and terminal caps."""

    gm: float
    gds: float
    cgs: float
    cgd: float
    cdb: float  # drain junction cap (depends on DA)
    csb: float  # source junction cap (depends on SA)


def mos_small_signal(
    inst: Instance,
    drain_area: float | None = None,
    source_area: float | None = None,
) -> MosSmallSignal:
    """Small-signal model from schematic params plus optional SA/DA values.

    When *drain_area*/*source_area* are omitted, nominal unshared-diffusion
    areas are assumed (what a pre-layout netlist would use).
    """
    nf = max(1, int(inst.param("NF")))
    nfin = max(1, int(inst.param("NFIN")))
    multi = max(1, int(inst.param("MULTI")))
    length = inst.param("L")
    strength = nfin * nf * multi * (L_REF / max(length, L_REF))
    gm = GM_PER_FIN * strength
    if inst.device_type == dev.TRANSISTOR_THICKGATE:
        gm *= THICK_GM_SCALE
    if drain_area is None:
        drain_area = 90e-9 * nfin * 30e-9 * ((nf + 1) // 2) * multi
    if source_area is None:
        source_area = 90e-9 * nfin * 30e-9 * ((nf + 2) // 2) * multi
    return MosSmallSignal(
        gm=gm,
        gds=max(LAMBDA * gm, 1e-9),
        cgs=CGS_PER_FIN * nfin * nf * multi,
        cgd=CGD_PER_FIN * nfin * nf * multi,
        cdb=CJ_PER_AREA * drain_area,
        csb=CJ_PER_AREA * source_area,
    )


def resistor_conductance(inst: Instance) -> float:
    """Resistor conductance (defaults to 1 kOhm when unsized)."""
    return 1.0 / max(inst.param("R", 1e3), 1e-3)


def capacitor_value(inst: Instance) -> float:
    """Explicit capacitor value (defaults derived from MULTI)."""
    multi = max(1, int(inst.param("MULTI")))
    return inst.param("C", 25e-15 * multi)


def diode_small_signal(inst: Instance) -> tuple[float, float]:
    """(conductance, junction capacitance) for a diode."""
    nf = max(1, int(inst.param("NF")))
    return DIODE_GD * nf, DIODE_CJ * nf


def bjt_small_signal(inst: Instance) -> tuple[float, float]:
    """(gm, g_pi) for a BJT in forward active."""
    gm = BJT_GM
    return gm, gm / BJT_BETA
